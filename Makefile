# Convenience targets for the reproduction.

.PHONY: install test check bench bench-paper perf examples demo clean

install:
	pip install -e .

test:
	pytest tests/

# The pre-merge gate: tier-1 tests plus the perf regression guard
# (wall-time within tolerance of BENCH_perf.json, determinism checksums
# unchanged).  Does not rewrite the committed baseline — use `make perf`
# for that.
check:
	pytest tests/
	PYTHONPATH=src python benchmarks/perf_harness.py --repeats 3 --output /tmp/BENCH_perf.check.json
	PYTHONPATH=src python benchmarks/check_regression.py BENCH_perf.json /tmp/BENCH_perf.check.json

bench:
	pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_PAPER_SCALE=1 pytest benchmarks/ --benchmark-only

# Regenerate the tracked perf report, guarding against wall-time
# regressions (>20% by default; override with PERF_TOLERANCE=0.3 etc.)
# relative to the committed BENCH_perf.json baseline.
perf:
	PYTHONPATH=src python benchmarks/perf_harness.py --output BENCH_perf.new.json
	PYTHONPATH=src python benchmarks/check_regression.py BENCH_perf.json BENCH_perf.new.json
	mv BENCH_perf.new.json BENCH_perf.json

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f; echo; done

demo:
	python -m repro demo

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache benchmarks/results .hypothesis
