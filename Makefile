# Convenience targets for the reproduction.

.PHONY: install test lint sanitize race static effects obs objprof pdes frontier check bench bench-paper perf examples demo clean

install:
	pip install -e .

test:
	PYTHONPATH=src python -m pytest tests/

# Static analysis: ruff (when installed — the CI image has it, minimal
# dev containers may not) plus the repo's own simlint AST pass.  The
# if/else keeps a genuine ruff failure fatal instead of masked.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping (simlint still runs)"; \
	fi
	PYTHONPATH=src python -m repro.checks lint

# Protocol sanitizer: run the tracked bench workloads at test scale with
# DJVM(sanitize=True); any invariant violation fails the target.
sanitize:
	PYTHONPATH=src python -m repro.checks sanitize

# Happens-before race gate: tracked workloads must report zero races,
# the seeded racy synthetic must be caught, its locked twin must stay
# silent.
race:
	PYTHONPATH=src python -m repro.checks race

# Whole-program static analysis gate: IR verification, sharing/escape
# classification, and the static may-race set — which must contain every
# dynamic FastTrack report on the same run matrix (soundness).
static:
	PYTHONPATH=src python -m repro.checks static

# Interprocedural effect/purity gate: observer purity (EFF1xx), clock
# separation (EFF2xx) and partition safety (EFF3xx) over the
# simulator's own source, checked against the committed effects.json.
effects:
	PYTHONPATH=src python -m repro.checks effects

# Telemetry gate: a bench-scale workload with metrics + span tracing,
# asserting byte-identity against the untraced run, Chrome-trace JSON
# schema validity, and telemetry wall overhead under 15%.
obs:
	PYTHONPATH=src python -m repro.obs gate

# Object-centric inefficiency profiler gate: SOR / Barnes-Hut /
# Water-Spatial report smoke, byte-identity of the run with the
# profiler on vs off, deterministic report ordering, and >= 3 distinct
# patterns with file:line attribution on Water-Spatial.
objprof:
	PYTHONPATH=src python -m repro.obs objprof

# The pre-merge gate: lint, tier-1 tests, sanitizer-enabled workloads,
# the happens-before race gate, the static-analysis soundness gate,
# the interprocedural effect/purity gate,
# the telemetry and object-profiler gates, plus the perf
# regression guard (wall-time within tolerance of BENCH_perf.json,
# determinism checksums unchanged).  Does not rewrite the committed
# baseline — use `make perf` for that.
check: lint
	PYTHONPATH=src python -m pytest tests/
	PYTHONPATH=src python -m repro.checks sanitize
	PYTHONPATH=src python -m repro.checks race
	PYTHONPATH=src python -m repro.checks static
	PYTHONPATH=src python -m repro.checks effects
	PYTHONPATH=src python -m repro.obs gate
	PYTHONPATH=src python -m repro.obs objprof
	$(MAKE) pdes
	PYTHONPATH=src python benchmarks/perf_harness.py --repeats 3 --scale smoke --frontier smoke --output /tmp/BENCH_perf.check.json
	PYTHONPATH=src python benchmarks/check_regression.py BENCH_perf.json /tmp/BENCH_perf.check.json

# Sampling-backend frontier: accuracy (E_ABS vs full sampling), cold
# per-decision cost, and end-to-end wall overhead per backend x
# workload, plus the dead-zone probe.  Exits non-zero when a frontier
# gate fails (prime-gap identity, 2x-accuracy-at-lower-cost, probe).
frontier:
	PYTHONPATH=src python benchmarks/frontier.py --mode full

# Partitioned-kernel gate: byte-identity of the conservative parallel
# kernel (2 and 4 partitions) and the vectorized replay engine against
# the serial scalar oracle on the paper workloads and randomized
# programs.  The scale smoke in `check`'s perf step re-asserts identity
# at bench scale.
pdes:
	PYTHONPATH=src python -m pytest tests/sim/test_partition_kernel.py tests/runtime/test_vector_replay.py -q

bench:
	pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_PAPER_SCALE=1 pytest benchmarks/ --benchmark-only

# Regenerate the tracked perf report, guarding against wall-time
# regressions (>20% by default; override with PERF_TOLERANCE=0.3 etc.)
# relative to the committed BENCH_perf.json baseline.
perf:
	PYTHONPATH=src python benchmarks/perf_harness.py --output BENCH_perf.new.json
	PYTHONPATH=src python benchmarks/check_regression.py BENCH_perf.json BENCH_perf.new.json
	mv BENCH_perf.new.json BENCH_perf.json

examples:
	for f in examples/*.py; do echo "== $$f =="; PYTHONPATH=src python $$f || exit 1; echo; done

demo:
	python -m repro demo

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache benchmarks/results .hypothesis
