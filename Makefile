# Convenience targets for the reproduction.

.PHONY: install test bench bench-paper examples demo clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_PAPER_SCALE=1 pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f =="; python $$f; echo; done

demo:
	python -m repro demo

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache benchmarks/results .hypothesis
