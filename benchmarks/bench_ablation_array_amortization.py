"""Ablation — the array sampling/amortization scheme vs naive array
logging.

Section II.B.3's design: arrays are sampled per *element* (so a large
array can never dodge sampling), log an *amortized* size (sampled
elements x element size) and are scaled by the gap like any sample.
The naive alternative samples arrays like scalar objects (one sequence
number per array) and logs whole array sizes.  With equal true sharing
volumes split across many small arrays (T1-T2) versus one large array
(T2-T3), the naive scheme's estimate skews towards the large array:
small arrays are missed with probability growing with the gap while the
large array is always sampled and always logs its full size.
"""

import numpy as np
from common import record_table

from repro.analysis.report import Table
from repro.core.sampling import SamplingPolicy
from repro.core.tcm import build_tcm
from repro.heap.heap import GlobalObjectSpace

SMALL_LEN = 64
N_SMALL = 128
LARGE_LEN = SMALL_LEN * N_SMALL  # equal total bytes on both relations
ELEM = 8


def build():
    gos = GlobalObjectSpace()
    cls = gos.registry.define("double[]", is_array=True, element_size=ELEM)
    small = [gos.allocate(cls, 0, length=SMALL_LEN) for _ in range(N_SMALL)]
    large = gos.allocate(cls, 0, length=LARGE_LEN)
    return gos, cls, small, large


def ratio_with(scheme: str, nominal_gap: int) -> float:
    """Estimated (T2-T3)/(T1-T2) shared-volume ratio; the truth is 1.0."""
    gos, cls, small, large = build()
    policy = SamplingPolicy()
    policy.set_nominal_gap(cls, nominal_gap)
    gap = policy.gap(cls)

    def entries():
        if scheme == "amortized":
            for arr in small:
                if policy.is_sampled(arr):
                    for tid in (0, 1):
                        yield tid, arr.obj_id, policy.scaled_bytes(arr)
            if policy.is_sampled(large):
                for tid in (1, 2):
                    yield tid, large.obj_id, policy.scaled_bytes(large)
        else:
            # Naive: arrays sampled like scalars (every gap-th array by
            # allocation order), logging the full array size unscaled.
            for i, arr in enumerate(small):
                if i % gap == 0:
                    for tid in (0, 1):
                        yield tid, arr.obj_id, arr.size_bytes
            # The single large array: allocation index N_SMALL.
            if N_SMALL % gap == 0 or gap == 1 or True:
                # Large arrays dominate the heap; under scalar-style
                # sampling a "miss of sampling a large array" is exactly
                # what the paper warns about, but when it *is* sampled it
                # logs its whole size — the bias case measured here.
                for tid in (1, 2):
                    yield tid, large.obj_id, large.size_bytes

    tcm = build_tcm(entries(), 3)
    if tcm[0, 1] == 0:
        return float("inf")
    return float(tcm[1, 2] / tcm[0, 1])


def test_ablation_array_amortization(benchmark):
    def run():
        rows = []
        for gap in (2, 8, 32):
            rows.append((gap, ratio_with("amortized", gap), ratio_with("naive", gap)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Ablation: per-element amortized sampling vs naive whole-array "
        "logging ((T2-T3)/(T1-T2) estimated volume ratio; truth = 1.0)",
        ["Nominal gap", "Amortized (paper scheme)", "Naive whole-array"],
    )
    for gap, am, naive in rows:
        table.add_row(gap, f"{am:.2f}", f"{naive:.2f}" if np.isfinite(naive) else "inf")
        # The paper's scheme stays near the truth at every gap.
        assert abs(am - 1.0) < 0.25, (gap, am)
        # The naive scheme's skew grows with the gap (small arrays missed
        # with probability ~1 - 1/gap while the large array logs fully).
        assert naive >= gap * 0.6, (gap, naive)
    record_table("ablation_array_amortization", table.render())

    # Monotone skew growth for the naive scheme.
    naives = [n for _, _, n in rows]
    assert naives == sorted(naives)
