"""Ablation — ABS vs EUC as the adaptive controller's convergence signal.

The paper picks the absolute-distance metric (formula 2) after observing
it is "more stable and consistently outperforms Euclidean distance".
This bench quantifies that choice two ways:

* **stability** — the variance of the relative-error signal along the
  rate ladder (a jittery signal causes spurious rate climbs);
* **decision quality** — the rate the offline search settles on under
  each metric, and the true (absolute) error of the settled rate.
"""

import numpy as np
from common import record_table, workload_factories

from repro.analysis import experiments as E
from repro.analysis.report import Table
from repro.core.accuracy import absolute_error
from repro.core.adaptive import OfflineRateSearch

LADDER = (1, 2, 4, 8, 16, 32, 64, 128)


def run_experiment():
    rows = []
    for name, factory in workload_factories(n_threads=16):
        batches, gos, n, _ = E.collect_full_batches(factory, n_nodes=8)
        full = E.tcm_at_rate(batches, gos, n, "full")
        tcm_at = lambda r: E.tcm_at_rate(batches, gos, n, r)
        per_metric = {}
        for metric in ("abs", "euc"):
            search = OfflineRateSearch(threshold=0.05, metric=metric, ladder=LADDER)
            chosen = search.run(tcm_at)
            errors = [d.relative_error for d in search.history if d.relative_error is not None]
            jitter = float(np.std(np.diff(errors))) if len(errors) > 1 else 0.0
            settled_err = absolute_error(tcm_at(chosen), full)
            per_metric[metric] = (chosen, settled_err, jitter)
        rows.append((name, per_metric))
    return rows


def test_ablation_distance_metric(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = Table(
        "Ablation: ABS vs EUC convergence signal for the adaptive controller",
        ["Benchmark", "Metric", "Settled rate", "True error at settled rate", "Signal jitter"],
    )
    for name, per_metric in rows:
        for metric, (chosen, err, jitter) in per_metric.items():
            table.add_row(name, metric.upper(), f"{chosen:g}X", f"{err * 100:.2f}%", f"{jitter:.4f}")
    record_table("ablation_distance_metric", table.render())

    for name, per_metric in rows:
        abs_choice, abs_err, _ = per_metric["abs"]
        euc_choice, euc_err, _ = per_metric["euc"]
        # Both metrics settle on rates whose maps are within ~2x the 5%
        # threshold of the full-sampling truth — the controller works
        # under either, with ABS never materially worse (the paper's
        # conclusion is that ABS is the safer default).
        assert abs_err < 0.12, (name, abs_err)
        assert abs_err <= euc_err + 0.05, (name, abs_err, euc_err)
