"""Ablation — landmark guidance in sticky-set resolution vs plain BFS.

The resolution algorithm stops tracing a path after ``tolerance x gap``
objects of a class pass without a sampled landmark (Section III.A.3).
This bench builds a heap where a thread's stack invariant reaches both
its genuine sticky set and a large cold region (reachable but never
accessed).  With landmarks the trace stays inside the warm region; the
plain connectivity walk (landmarks off) drags cold objects into the
prefetch set, inflating the migration bundle.
"""

from common import record_table

from repro.analysis.report import Table
from repro.core.resolution import resolve_sticky_set
from repro.core.sampling import SamplingPolicy
from repro.heap.heap import GlobalObjectSpace

WARM = 300
COLD = 3000
OBJ = 64


def build_heap():
    """entry -> warm chain (sticky, sampled normally) and, branching off
    early, a cold chain (never accessed).  Sampling tags: the policy
    samples by sequence number as usual, but footprinting only ever saw
    warm objects, so cold objects are 'unsampled territory' in the sense
    that no landmark credit accrues there.

    To model 'sampled = seen by the footprinting pass', warm objects are
    allocated densely (every gap-th is sampled); cold objects get their
    own class so their budget is simply absent from the footprint."""
    gos = GlobalObjectSpace()
    warm_cls = gos.registry.define("Warm", OBJ)
    cold_cls = gos.registry.define("Cold", OBJ)
    warm = [gos.allocate(warm_cls, 0) for _ in range(WARM)]
    cold = [gos.allocate(cold_cls, 0) for _ in range(COLD)]
    for a, b in zip(warm, warm[1:]):
        a.add_ref(b.obj_id)
    for a, b in zip(cold, cold[1:]):
        a.add_ref(b.obj_id)
    # The cold region hangs off an early warm object (e.g. a global
    # registry reachable from the data structure's root).
    warm[1].add_ref(cold[0].obj_id)
    return gos, warm_cls, cold_cls, warm, cold


def run_once(use_landmarks: bool):
    gos, warm_cls, cold_cls, warm, cold = build_heap()
    policy = SamplingPolicy()
    policy.set_nominal_gap(warm_cls, 8)
    policy.set_nominal_gap(cold_cls, 8)
    # A mildly overestimated footprint (estimates routinely overshoot a
    # little) keeps the budget unmet after the warm chain, so an unguided
    # walk keeps hunting — into the cold region.
    footprint = {"Warm": WARM * OBJ * 1.3}
    # Landmarks = sampled objects the footprinting pass tracked, i.e.
    # sampled *warm* objects only (the thread never touched the cold
    # region, so no cold object can testify the trace is on course).
    landmark_ids = {o.obj_id for o in warm if policy.is_sampled(o)}
    stats = resolve_sticky_set(
        gos,
        policy,
        [warm[0].obj_id],
        footprint,
        tolerance=2.0,
        use_landmarks=use_landmarks,
        landmark_ids=landmark_ids,
    )
    warm_ids = {o.obj_id for o in warm}
    selected = set(stats.selected)
    return {
        "visited": stats.visited,
        "warm_selected": len(selected & warm_ids),
        "stats": stats,
    }


def test_ablation_landmarks(benchmark):
    def run():
        return run_once(True), run_once(False)

    with_lm, without_lm = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Ablation: landmark-guided resolution vs plain connectivity walk",
        ["Config", "Objects visited", "Warm selected", "Landmark stops"],
    )
    table.add_row(
        "landmarks on",
        with_lm["visited"],
        with_lm["warm_selected"],
        with_lm["stats"].landmark_stops,
    )
    table.add_row(
        "landmarks off",
        without_lm["visited"],
        without_lm["warm_selected"],
        without_lm["stats"].landmark_stops,
    )
    record_table("ablation_landmarks", table.render())

    # Both find the warm sticky set...
    assert with_lm["warm_selected"] >= 0.8 * WARM
    assert without_lm["warm_selected"] >= 0.8 * WARM
    # ...but the unguided walk wades deep into the cold region, while the
    # landmark guard caps the detour at ~tolerance x gap objects.
    assert without_lm["visited"] >= WARM + COLD * 0.9
    assert with_lm["visited"] <= WARM + 40
    assert with_lm["stats"].landmark_stops >= 1
