"""Ablation — prime vs non-prime sampling gaps under cyclic allocation.

The paper mandates prime sampling gaps (Section II.B.1) so cyclic
allocation patterns cannot alias with the gap.  This bench constructs
the adversarial case directly: objects allocated in a strict cycle of
``k`` roles where only one role is ever shared between threads.  A
composite gap sharing a factor with ``k`` samples a biased subset of
roles and mis-estimates the shared volume; the nearest prime gap keeps
the estimate honest.
"""

import numpy as np
from common import record_table

from repro.analysis.report import Table
from repro.core.accuracy import accuracy
from repro.core.sampling import SamplingPolicy
from repro.core.tcm import build_tcm
from repro.heap.heap import GlobalObjectSpace

CYCLE = 4  # allocation cycle: roles 0..3, role 0 shared, others private
N_GROUPS = 256
OBJ_SIZE = 64


def build_population():
    gos = GlobalObjectSpace()
    cls = gos.registry.define("Cyclic", OBJ_SIZE)
    shared, private = [], []
    for _ in range(N_GROUPS):
        shared.append(gos.allocate(cls, 0))          # role 0: shared
        for _ in range(CYCLE - 1):
            private.append(gos.allocate(cls, 0))     # roles 1..3: private
    return gos, cls, shared, private


def measure(nominal_gap: int, use_prime: bool) -> float:
    """Accuracy of the estimated two-thread TCM vs truth, when both
    threads access all shared objects and thread 0 additionally touches
    the private ones."""
    gos, cls, shared, private = build_population()
    policy = SamplingPolicy(use_prime_gaps=use_prime)
    policy.set_nominal_gap(cls, nominal_gap)

    def entries():
        for o in shared:
            if policy.is_sampled(o):
                yield 0, o.obj_id, policy.scaled_bytes(o)
                yield 1, o.obj_id, policy.scaled_bytes(o)
        for o in private:
            if policy.is_sampled(o):
                yield 0, o.obj_id, policy.scaled_bytes(o)

    estimated = build_tcm(entries(), 2)
    truth = np.zeros((2, 2))
    truth[0, 1] = truth[1, 0] = N_GROUPS * OBJ_SIZE
    return accuracy(estimated, truth, "abs")


def test_ablation_prime_gaps(benchmark):
    def run():
        rows = []
        for nominal in (4, 8, 16, 32):
            composite = measure(nominal, use_prime=False)
            prime = measure(nominal, use_prime=True)
            rows.append((nominal, composite, prime))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        "Ablation: prime vs composite sampling gaps under a 4-cycle "
        "allocation pattern (shared-volume estimation accuracy)",
        ["Nominal gap", "Composite gap accuracy", "Prime gap accuracy"],
    )
    worst_composite = 1.0
    for nominal, composite, prime in rows:
        table.add_row(nominal, f"{composite * 100:.1f}%", f"{prime * 100:.1f}%")
        worst_composite = min(worst_composite, composite)
        # Prime gaps stay accurate at every nominal.
        assert prime > 0.85, (nominal, prime)
    record_table("ablation_prime_gaps", table.render())

    # The composite gap must exhibit the aliasing pathology somewhere
    # (gap 4 on a 4-cycle samples exactly one role: estimate off by the
    # role imbalance), while primes never collapse.
    assert worst_composite < 0.7, rows
