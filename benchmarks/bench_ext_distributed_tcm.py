"""Extension — distributed TCM computation (Section VI future work).

Compares the centralized correlation daemon (Table III's dominant cost)
against the object-partitioned distributed scheme on the Barnes-Hut
profile: identical maps, critical-path compute reduced by roughly the
node count (minus imbalance and the reduce step).
"""

import numpy as np
from common import PAPER_SCALE, record_table, scaled

from repro.analysis import experiments as E
from repro.analysis.report import Table
from repro.core.collector import CorrelationCollector
from repro.core.distributed import DistributedCorrelationCollector
from repro.sim.cluster import Cluster
from repro.workloads import BarnesHutWorkload


def factory():
    return BarnesHutWorkload(
        n_bodies=scaled(4096, 2048), rounds=scaled(5, 3), n_threads=16
    )


def run_experiment():
    batches, gos, n_threads, _ = E.collect_full_batches(factory, n_nodes=8)
    rows = []
    central = CorrelationCollector(n_threads, Cluster(8), gos)
    for b in batches:
        central.deliver(b)
    central_tcm = central.tcm()
    central_ms = central.tcm_compute_ms

    for n_nodes in (2, 4, 8, 16):
        dist = DistributedCorrelationCollector(n_threads, Cluster(n_nodes), gos)
        for b in batches:
            dist.deliver(b)
        dist_tcm = dist.tcm()
        assert np.allclose(dist_tcm, central_tcm)
        rows.append(
            (
                n_nodes,
                central_ms,
                dist.tcm_compute_wall_ms,
                central_ms / dist.tcm_compute_wall_ms,
            )
        )
    return rows


def test_ext_distributed_tcm(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = Table(
        "Extension: distributed TCM computation (Barnes-Hut full-sampling "
        "profile; identical maps verified)"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        ["Owner nodes", "Centralized daemon (ms)", "Distributed wall (ms)", "Speedup"],
    )
    for n_nodes, central_ms, wall_ms, speedup in rows:
        table.add_row(n_nodes, f"{central_ms:.0f}", f"{wall_ms:.0f}", f"{speedup:.1f}x")
    record_table("ext_distributed_tcm", table.render())

    speedups = {n: s for n, _, _, s in rows}
    # Near-linear scaling for small node counts; still improving at 16.
    assert speedups[2] > 1.5
    assert speedups[8] > 4.0
    assert speedups[16] >= speedups[4]
    # Monotone non-degrading wall time.
    walls = [w for _, _, w, _ in rows]
    assert walls == sorted(walls, reverse=True)
