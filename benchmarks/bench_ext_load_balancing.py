"""Extension — the end-to-end load-balancing loop (Section VI realized),
including the "home effect" caveat the paper flags.

From a scrambled placement of a producer/consumer workload, compare:

* baseline (no optimization),
* online rebalancing alone (TCM-driven thread migrations), and
* rebalancing combined with dominant-writer home migration.

The paper warns that thread migration decisions ignoring the home
effect can misfire ("objects shared by a pair of threads are homed at
neither node of the threads").  Measured here: rebalancing alone moves
both partners away from their data and *fails to cut traffic*; adding
home migration lets the data follow and the combination wins.
"""

from common import record_table

from repro.analysis.report import Table
from repro.core.costmodel import MigrationCostModel
from repro.core.profiler import ProfilerSuite
from repro.dsm.homemigration import DominantWriterPolicy, HomeMigrationEngine
from repro.placement.balancer import CorrelationAwareBalancer
from repro.placement.runtime_balancer import OnlineRebalancer
from repro.runtime.djvm import DJVM
from repro.workloads import GroupSharingWorkload

ROUNDS = 16


def run(*, rebalance: bool, home_migration: bool):
    wl = GroupSharingWorkload(
        n_threads=16,
        group_size=2,
        objects_per_group=192,
        private_per_thread=24,
        object_size=256,
        rounds=ROUNDS,
        group_writes=True,
        seed=6,
    )
    djvm = DJVM(n_nodes=8)
    wl.build(djvm, placement=[t % 8 for t in range(16)])
    suite = ProfilerSuite(djvm, correlation=True, send_oals=False)
    suite.set_rate_all(4)
    if rebalance:
        balancer = CorrelationAwareBalancer(
            MigrationCostModel(djvm.cluster.network, djvm.costs),
            horizon_intervals=2 * ROUNDS,
        )
        djvm.add_timer(
            OnlineRebalancer(suite, balancer, djvm.migration, warmup_intervals=3)
        )
    engine = None
    if home_migration:
        engine = HomeMigrationEngine(djvm.hlrc)
        djvm.add_hook(
            DominantWriterPolicy(engine, threshold=0.6, min_writes=3, cooldown_writes=4)
        )
    result = djvm.run(wl.programs())
    return result, engine


def test_ext_load_balancing(benchmark):
    def experiment():
        base, _ = run(rebalance=False, home_migration=False)
        moved, _ = run(rebalance=True, home_migration=False)
        combined, engine = run(rebalance=True, home_migration=True)
        return base, moved, combined, engine

    base, moved, combined, engine = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        "Extension: online load balancing with and without home migration "
        "(producer/consumer groups, scrambled start)",
        ["Config", "Exec (ms)", "Faults", "Remote traffic (KB)"],
    )
    for label, res in (
        ("baseline", base),
        ("rebalance only", moved),
        ("rebalance + home migration", combined),
    ):
        table.add_row(
            label,
            f"{res.execution_time_ms:.0f}",
            res.counters["faults"],
            f"{res.traffic.gos_bytes / 1024:.0f}",
        )
    table.add_row(
        "(objects re-homed)",
        "-",
        "-",
        f"{engine.stats.migrations} objects / {engine.stats.bytes_shipped / 1024:.0f} KB",
    )
    record_table("ext_load_balancing", table.render())

    # The home-effect caveat: migration alone does not cut traffic...
    assert moved.traffic.gos_bytes > 0.8 * base.traffic.gos_bytes
    # ...the combination cuts it decisively.
    assert combined.traffic.gos_bytes < 0.75 * base.traffic.gos_bytes
    assert combined.traffic.gos_bytes < moved.traffic.gos_bytes
    assert engine.stats.migrations > 0
    # And execution time improves with the combination.
    assert combined.execution_time_ms <= base.execution_time_ms
