"""Extension — inter-object affinity prefetching (the paper's type-3
affinity, delegated to its companion paper on access-path analysis).

Barnes-Hut's force phase faults remote partner bodies and then reads
their position vectors — a perfectly learnable access path (Body.pos).
The connectivity prefetcher learns the field heat online and bundles the
vector into the body's fault reply; measured here: fault-count and
execution-time reduction against the same run without prefetching, with
the bandwidth cost of mispredictions reported.
"""

from common import PAPER_SCALE, record_table, scaled

from repro.analysis.report import Table
from repro.core.prefetch import ConnectivityPrefetcher
from repro.runtime.djvm import DJVM
from repro.workloads import BarnesHutWorkload


def run(enable: bool):
    wl = BarnesHutWorkload(
        n_bodies=scaled(4096, 1024), rounds=scaled(5, 3), n_threads=16, seed=2
    )
    djvm = DJVM(n_nodes=8)
    wl.build(djvm)
    prefetcher = None
    if enable:
        prefetcher = ConnectivityPrefetcher(
            djvm.gos, threshold=0.6, min_faults=3, max_depth=1
        )
        djvm.hlrc.prefetcher = prefetcher
        djvm.add_hook(prefetcher)
    result = djvm.run(wl.programs())
    return result, prefetcher


def test_ext_prefetch(benchmark):
    def experiment():
        base, _ = run(False)
        opt, prefetcher = run(True)
        return base, opt, prefetcher

    base, opt, prefetcher = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = Table(
        "Extension: access-path connectivity prefetching on Barnes-Hut"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        ["Config", "Faults", "Exec (ms)", "Fetch traffic (KB)"],
    )
    from repro.sim.network import MessageKind

    def fetch_kb(res):
        return res.traffic.bytes_by_kind.get(MessageKind.OBJECT_FETCH_DATA, 0) / 1024

    table.add_row("no prefetch", base.counters["faults"],
                  f"{base.execution_time_ms:.0f}", f"{fetch_kb(base):.0f}")
    table.add_row("path prefetch", opt.counters["faults"],
                  f"{opt.execution_time_ms:.0f}", f"{fetch_kb(opt):.0f}")
    table.add_row(
        "(bundled)",
        prefetcher.bundled_objects,
        "-",
        f"{prefetcher.bundled_bytes / 1024:.0f}",
    )
    record_table("ext_prefetch", table.render())

    # Prefetching removes a meaningful share of faults...
    assert opt.counters["faults"] < 0.85 * base.counters["faults"]
    # ...without inflating the fetched byte volume unreasonably
    # (mispredictions cost bytes; a correct predictor stays near parity).
    assert fetch_kb(opt) < 1.3 * fetch_kb(base)
    # And the saved round trips show up as time.
    assert opt.execution_time_ms <= base.execution_time_ms
