"""Extension — scale-out and the looming TCM cost.

Quantifies the paper's Section IV.A remark: "for the same dataset size,
if the DJVM scales out with more nodes, each iteration will finish
sooner making the TCM construction time apparent.  Adaptive sampling is
useful in this case to lower such overhead by tuning down the sampling
rate on demand."

Barnes-Hut at a fixed problem size across 2/4/8/16 nodes, full-sampling
correlation tracking: execution time falls with node count while the
centralized daemon's cost stays flat — so its *relative* weight grows —
and sampling at 4X collapses it again.
"""

from common import PAPER_SCALE, record_table, scaled

from repro.analysis import experiments as E
from repro.analysis.report import Table
from repro.workloads import BarnesHutWorkload

NODE_COUNTS = (2, 4, 8, 16)


def factory(n_nodes):
    # Threads match nodes x2 so every configuration is fully loaded.
    return lambda: BarnesHutWorkload(
        n_bodies=scaled(4096, 1024),
        rounds=scaled(5, 3),
        n_threads=2 * n_nodes,
        seed=1,
    )


def run_experiment():
    rows = []
    for n_nodes in NODE_COUNTS:
        full = E.run_with_correlation(factory(n_nodes), n_nodes, rate="full")
        full.suite.collector.tcm()
        sampled = E.run_with_correlation(factory(n_nodes), n_nodes, rate=4)
        sampled.suite.collector.tcm()
        exec_ms = full.result.execution_time_ms
        tcm_full = full.suite.collector.tcm_compute_ms
        tcm_sampled = sampled.suite.collector.tcm_compute_ms
        rows.append(
            (
                n_nodes,
                exec_ms,
                tcm_full,
                tcm_full / exec_ms,
                tcm_sampled,
                tcm_sampled / sampled.result.execution_time_ms,
            )
        )
    return rows


def test_ext_scalability(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = Table(
        "Extension: scale-out makes the TCM daemon 'apparent' "
        "(Barnes-Hut, fixed size, threads = 2 x nodes)"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        ["Nodes", "Exec (ms)", "TCM full (ms)", "TCM/exec full",
         "TCM 4X (ms)", "TCM/exec 4X"],
    )
    for n, exec_ms, tf, rf, ts, rs in rows:
        table.add_row(
            n, f"{exec_ms:.0f}", f"{tf:.0f}", f"{rf * 100:.1f}%",
            f"{ts:.0f}", f"{rs * 100:.1f}%",
        )
    record_table("ext_scalability", table.render())

    execs = [r[1] for r in rows]
    ratios_full = [r[3] for r in rows]
    ratios_sampled = [r[5] for r in rows]
    # Scale-out shortens execution (sublinearly: more threads on the same
    # dataset also means more cross-thread sharing and faults)...
    assert execs[-1] < 0.7 * execs[0]
    # ...so the (flat-ish) daemon cost looms larger relative to it...
    assert ratios_full[-1] > 2 * ratios_full[0]
    # ...and sampling at 4X is the remedy, everywhere.
    for rf, rs in zip(ratios_full, ratios_sampled):
        assert rs < 0.4 * rf
