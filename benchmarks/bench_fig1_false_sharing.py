"""Fig. 1 — inherent vs induced (page-grain) correlation maps.

Runs Barnes-Hut (32 threads, two galaxies) once, observing the same
execution at object grain (the reproduction's profiler, full sampling)
and at 4 KB page grain (the D-CVM-style baseline).  The paper's claim:
the inherent map shows the two-galaxy block structure with intra-galaxy
locality gradients; the induced map drowns those clues in false sharing.
"""

import numpy as np
from common import PAPER_SCALE, record_table, scaled

from repro.analysis import experiments as E
from repro.analysis.heatmap import block_contrast, render_heatmap
from repro.workloads import BarnesHutWorkload


def factory():
    return BarnesHutWorkload(
        n_bodies=scaled(4096, 2048),
        rounds=scaled(5, 3),
        n_threads=32,
        galaxy_distance=7.0,
        seed=0,
    )


def intra_galaxy_structure(tcm: np.ndarray, group: list[int]) -> float:
    """Coefficient of variation of intra-galaxy off-diagonal cells — the
    'locality gradient' signal false sharing erases."""
    cells = [
        tcm[i, j]
        for i in range(len(group))
        for j in range(len(group))
        if i != j and group[i] == group[j]
    ]
    cells = np.asarray(cells)
    return float(cells.std() / cells.mean()) if cells.mean() > 0 else 0.0


def test_fig1_false_sharing(benchmark):
    def run():
        return E.false_sharing_maps(factory, n_nodes=8)

    maps = benchmark.pedantic(run, rounds=1, iterations=1)
    groups = [0] * 16 + [1] * 16

    inherent_contrast = block_contrast(maps.inherent, groups)
    induced_contrast = block_contrast(maps.induced, groups)
    inherent_structure = intra_galaxy_structure(maps.inherent, groups)
    induced_structure = intra_galaxy_structure(maps.induced, groups)

    # --- the paper's qualitative claims, asserted --------------------------
    # (1) the inherent map exposes the two-galaxy blocks far more sharply;
    assert inherent_contrast > 2 * induced_contrast
    # (2) intra-galaxy locality structure (variation between neighbour and
    #     distant same-galaxy threads) is largely erased at page grain;
    assert inherent_structure > 2 * induced_structure
    # (3) page grain sees heavy (false) sharing per page.
    assert maps.false_sharing_degree > 4.0

    # Emit the actual figure pair as SVG alongside the text rendition.
    from pathlib import Path

    from repro.analysis.svgplot import heatmap as svg_heatmap
    from repro.analysis.svgplot import save_svg

    results_dir = Path(__file__).parent / "results"
    save_svg(
        svg_heatmap(maps.inherent, title="(a) inherent pattern"),
        results_dir / "fig1_inherent.svg",
    )
    save_svg(
        svg_heatmap(maps.induced, title="(b) induced pattern"),
        results_dir / "fig1_induced.svg",
    )

    lines = [
        f"Fig. 1: false-sharing effect on correlation tracking preciseness"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        f"  galaxy block contrast: inherent {inherent_contrast:.2f}  "
        f"induced {induced_contrast:.2f}",
        f"  intra-galaxy structure (cv): inherent {inherent_structure:.2f}  "
        f"induced {induced_structure:.2f}",
        f"  threads per touched page (false-sharing degree): "
        f"{maps.false_sharing_degree:.1f}",
        "",
        render_heatmap(maps.inherent, width=32, title="(a) inherent pattern"),
        "",
        render_heatmap(maps.induced, width=32, title="(b) induced pattern"),
    ]
    record_table("fig1_false_sharing", "\n".join(lines))
