"""Fig. 9 — accuracy of correlation tracking with adaptive object
sampling, for SOR / Barnes-Hut / Water-Spatial.

Per the paper: 16 threads per application, rates halving from 512X down
to 1X; four curves per panel — absolute accuracy (vs the full-sampling
map) and relative accuracy (vs the next finer rate), each under both the
ABS (formula 2) and EUC (formula 1) distance metrics.

Shape expectations (paper): accuracy at least ~95% at nearly all rates,
ABS more stable than (or comparable to) EUC, and relative accuracy
tracking absolute accuracy closely enough to drive rate adaptation.
"""

from common import PAPER_SCALE, record_table, workload_factories

from repro.analysis import experiments as E
from repro.analysis.paper import FIG9_MIN_ACCURACY_AT_4X
from repro.analysis.report import Table

RATES = (512, 256, 128, 64, 32, 16, 8, 4, 2, 1)


def run_experiment():
    results = {}
    for name, factory in workload_factories(n_threads=16):
        results[name] = E.accuracy_curves(factory, n_nodes=8, rates=RATES)
    return results


def render(results) -> str:
    blocks = []
    for name, curves in results.items():
        table = Table(
            f"Fig. 9 ({name}): correlation tracking accuracy vs sampling rate"
            + ("" if PAPER_SCALE else "  [reduced scale]"),
            ["Rate", "Absolute/ABS", "Relative/ABS", "Absolute/EUC", "Relative/EUC"],
        )
        for i, rate in enumerate(curves.rates):
            table.add_row(
                f"{rate:g}X",
                f"{curves.absolute_abs[i] * 100:.1f}%",
                f"{curves.relative_abs[i] * 100:.1f}%",
                f"{curves.absolute_euc[i] * 100:.1f}%",
                f"{curves.relative_euc[i] * 100:.1f}%",
            )
        blocks.append(table.render())
    return "\n\n".join(blocks)


def emit_figures(results) -> None:
    """Write one SVG panel per workload (the actual Fig. 9 curves)."""
    from pathlib import Path

    from repro.analysis.svgplot import line_chart, save_svg

    for name, curves in results.items():
        svg = line_chart(
            {
                "Absolute/ABS": curves.absolute_abs,
                "Relative/ABS": curves.relative_abs,
                "Absolute/EUC": curves.absolute_euc,
                "Relative/EUC": curves.relative_euc,
            },
            [f"{r:g}X" for r in curves.rates],
            title=f"Fig. 9: correlation tracking accuracy — {name}",
            y_label="accuracy",
            y_range=(0.5, 1.0),  # the paper's 50-100% axis
        )
        slug = name.lower().replace("-", "_")
        save_svg(svg, Path(__file__).parent / "results" / f"fig9_{slug}.svg")


def test_fig9_accuracy(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_table("fig9_accuracy", render(results))
    emit_figures(results)

    for name, curves in results.items():
        by_rate = dict(zip(curves.rates, curves.absolute_abs))
        # The paper's headline: >= ~95% accuracy at 4X and finer.
        for rate in (512, 256, 128, 64, 32, 16, 8, 4):
            assert by_rate[rate] >= FIG9_MIN_ACCURACY_AT_4X - 0.03, (
                name,
                rate,
                by_rate[rate],
            )
        # Accuracy does not collapse even at 1X (paper floor ~85-95%).
        assert by_rate[1] > 0.75, (name, by_rate[1])
        # Finer rates are at least as accurate as the coarsest (trend).
        assert by_rate[256] >= by_rate[1] - 0.02, name
        # Relative accuracy is a usable proxy for absolute accuracy.
        for rel, ab in zip(curves.relative_abs, curves.absolute_abs):
            assert abs(rel - ab) < 0.2, name
