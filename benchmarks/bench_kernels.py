"""Micro-benchmarks of the reproduction's hot kernels.

Unlike the table/figure benches (one-shot experiments), these measure
steady-state throughput of the code paths that dominate real runs, so
regressions in the simulator itself are visible: TCM construction,
sampling decisions, the stack sampler, and the HLRC access fast path.
"""

import numpy as np

from repro.core.sampling import SamplingPolicy
from repro.core.stack_sampler import StackSampler
from repro.core.tcm import build_tcm
from repro.heap.heap import GlobalObjectSpace
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.runtime.stack import Frame
from repro.runtime.thread import SimThread
from repro.sim.costs import CostModel
from repro.sim.network import Network, RackTopology


def test_kernel_tcm_build(benchmark):
    """Vectorized TCM construction over 50k OAL entries."""
    rng = np.random.default_rng(0)
    entries = [
        (int(t), int(o), 64.0)
        for t, o in zip(rng.integers(0, 16, 50_000), rng.integers(0, 4_000, 50_000))
    ]
    tcm = benchmark(build_tcm, entries, 16)
    assert tcm.shape == (16, 16)
    assert tcm.sum() > 0


def test_kernel_sampling_decision(benchmark):
    """Per-object sampling decisions (the profiler's per-trap check)."""
    gos = GlobalObjectSpace()
    cls = gos.registry.define("Obj", 96)
    arr_cls = gos.registry.define("Arr", is_array=True, element_size=8)
    objs = [gos.allocate(cls, 0) for _ in range(2_000)]
    objs += [gos.allocate(arr_cls, 0, length=100) for _ in range(500)]
    policy = SamplingPolicy()
    policy.set_rate(cls, 4)
    policy.set_rate(arr_cls, 4)

    def run():
        return sum(1 for o in objs if policy.is_sampled(o))

    count = benchmark(run)
    assert 0 < count < len(objs)


def test_kernel_stack_sample(benchmark):
    """One SAMPLE-STACK pass over a 12-frame stack with churn."""
    thread = SimThread(0, 0)
    for depth in range(12):
        thread.stack.push(Frame(f"m{depth}", 8, refs={0: depth}))
    sampler = StackSampler(CostModel.gideon300())
    sampler.sample_stack(thread)  # prime: everything raw+visited

    def run():
        # Replace the top frame each round (temporary-frame churn).
        thread.stack.pop()
        thread.stack.push(Frame("temp", 8, refs={0: 99}))
        sampler.sample_stack(thread)

    benchmark(run)
    assert sampler.samples_taken > 0


def test_kernel_hlrc_access_fast_path(benchmark):
    """The simulator's hottest loop: local reads through the protocol."""
    djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
    cls = djvm.define_class("Obj", 64)
    obj = djvm.allocate(cls, 0)
    thread = djvm.spawn_thread(0)
    djvm.hlrc.open_interval(thread)

    def run():
        djvm.hlrc.access(thread, obj.obj_id, is_write=False, n_elems=1, repeat=1)

    benchmark(run)


def test_kernel_network_construction(benchmark):
    """Fabric construction + latency probes at high fan-out.

    Per-pair latency is an O(1) formula (never an O(n²) table), so
    building a 256-node rack fabric and probing 16 x 255 pairs must stay
    microsecond-cheap regardless of cluster size."""
    def run():
        net = Network(topology=RackTopology(rack_size=8))
        total = 0
        for src in range(0, 256, 17):
            for dst in range(256):
                if dst != src:
                    total += net.latency_between_ns(src, dst)
        return net, total

    net, total = benchmark(run)
    assert net.min_latency_ns == 60_000
    assert total > 0


def test_kernel_interpreter_throughput(benchmark):
    """End-to-end op throughput of the interpreter on a read-heavy loop."""
    def run():
        djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
        cls = djvm.define_class("Obj", 64)
        objs = [djvm.allocate(cls, 0) for _ in range(64)]
        djvm.spawn_thread(0)
        ops = [P.call("main", 2)]
        for _ in range(50):
            ops.extend(P.read(o.obj_id) for o in objs)
        ops.append(P.ret())
        return djvm.run({0: ops}).ops_executed

    ops = benchmark.pedantic(run, rounds=3, iterations=1)
    assert ops == 50 * 64 + 2
