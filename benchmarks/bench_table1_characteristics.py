"""Table I — application benchmark characteristics.

Regenerates the descriptive table from the workload implementations and
checks each row against the paper's characterization.
"""

from common import PAPER_SCALE, record_table, workload_factories

from repro.analysis.paper import TABLE1
from repro.analysis.report import Table
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel


def build_table() -> Table:
    table = Table(
        "Table I: application benchmark characteristics"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        ["Benchmark", "Data set", "Rounds", "Granularity", "Object size", "Paper object size"],
    )
    for name, factory in workload_factories(n_threads=8):
        wl = factory()
        spec = wl.spec()
        table.add_row(
            spec.name,
            spec.data_set,
            spec.rounds,
            spec.granularity,
            spec.object_size,
            TABLE1[name]["object_size"],
        )
    return table


def test_table1_characteristics(benchmark):
    def run():
        table = build_table()
        # Shape checks: granularity labels match the paper's.
        for name, factory in workload_factories(8):
            assert factory().spec().granularity == TABLE1[name]["granularity"]
        # Object-size regimes: verify against actual allocations.
        djvm = DJVM(8, costs=CostModel.fast_test())
        from repro.workloads import BarnesHutWorkload

        bh = BarnesHutWorkload(n_bodies=64, rounds=1, n_threads=8)
        bh.build(djvm)
        body = djvm.gos.get(bh.body_ids[0])
        assert body.size_bytes < 100  # "each body less than 100 bytes"
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table("table1_characteristics", table.render())
