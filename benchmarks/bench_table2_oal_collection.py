"""Table II — CPU overhead of OAL collection (overhead class O1).

Paper methodology, reproduced: a single thread per application, OAL
transfer over the network disabled, execution time measured at sampling
rates 1X / 4X / 16X / full against a no-tracking baseline.

Shape expectations (paper): the overhead is minimal — ~1% at full
sampling for the most fine-grained application (Barnes-Hut), fractions
of a percent elsewhere; SOR's rows exceed the page size so every row is
sampled at any rate and the sampled columns are reported N/A.
"""

from common import PAPER_SCALE, record_table, workload_factories

from repro.analysis import experiments as E
from repro.analysis.paper import TABLE2
from repro.analysis.report import Table, format_overhead

RATES: list[object] = [1, 4, 16, "full"]


def sor_rates_applicable(name: str, rate: object) -> bool:
    """SOR's multi-KB rows are always sampled, so sampled rates are
    indistinguishable from full — the paper prints N/A for them."""
    return not (name == "SOR" and rate != "full")


def run_experiment() -> tuple[Table, dict]:
    table = Table(
        "Table II: overhead of OAL collection (1 thread, no OAL transfer)"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        ["Benchmark", "No tracking (ms)", "1X", "4X", "16X", "Full", "Paper full"],
    )
    measured: dict[str, dict] = {}
    for name, factory in workload_factories(n_threads=1):
        base = E.run_baseline(factory, n_nodes=1).result.execution_time_ms
        cells = []
        overheads = {}
        for rate in RATES:
            if not sor_rates_applicable(name, rate):
                cells.append("N/A")
                continue
            run = E.run_with_correlation(factory, n_nodes=1, rate=rate, send_oals=False)
            t = run.result.execution_time_ms
            overheads[rate] = (t - base) / base
            cells.append(format_overhead(base, t))
        paper_full = TABLE2[name]["overhead_pct"].get("full")
        table.add_row(name, f"{base:.0f}", *cells, f"({paper_full:.2f}%)")
        measured[name] = {"base": base, "overheads": overheads}
    return table, measured


def test_table2_oal_collection(benchmark):
    table, measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_table("table2_oal_collection", table.render())

    # --- shape assertions ---------------------------------------------------
    for name, data in measured.items():
        # O1 is minimal: bounded by a few percent at every rate.
        for rate, ovh in data["overheads"].items():
            assert ovh < 0.05, (name, rate, ovh)
        # Full sampling costs at least as much as 1X (within noise).
        if 1 in data["overheads"]:
            assert data["overheads"]["full"] >= data["overheads"][1] - 0.005
    # Barnes-Hut (finest grained) has the largest full-sampling overhead.
    bh = measured["Barnes-Hut"]["overheads"]["full"]
    ws = measured["Water-Spatial"]["overheads"]["full"]
    assert bh >= ws - 0.002
