"""Table III — end-to-end correlation tracking overheads (O1+O2+O3).

Paper methodology, reproduced: 8 nodes with one thread each (avoiding
per-node multithreading effects), comparing against a no-tracking
baseline at rates 1X / 4X / 16X / full:

* execution time with OALs collected **and sent**,
* OAL message volume versus base GOS protocol volume,
* the master daemon's TCM computing time.

Shape expectations (paper): send overhead noticeable but tolerable below
full sampling; OAL volume a few percent of GOS traffic under 16X, rising
steeply at full sampling (SOR worst — its large fully-sampled arrays);
TCM computation is the most severe overhead and shrinks with sampling.
"""

from common import PAPER_SCALE, record_table, workload_factories

from repro.analysis import experiments as E
from repro.analysis.paper import TABLE3
from repro.analysis.report import Table, format_overhead
from repro.obs.overhead import overhead_frac

RATES: list[object] = [1, 4, 16, "full"]


def applicable(name: str, rate: object) -> bool:
    return not (name == "SOR" and rate != "full")


def run_experiment():
    exec_table = Table(
        "Table III-a: execution time with tracking (collect + send OALs)"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        ["Benchmark", "Baseline (ms)", "1X", "4X", "16X", "Full", "Paper full"],
    )
    vol_table = Table(
        "Table III-b: OAL message volume (KB, % of GOS volume)",
        ["Benchmark", "GOS vol (KB)", "1X", "4X", "16X", "Full", "Paper full %"],
    )
    tcm_table = Table(
        "Table III-c: TCM computing time (ms)",
        ["Benchmark", "1X", "4X", "16X", "Full", "Paper full"],
    )
    measured = {}
    for name, factory in workload_factories(n_threads=8):
        base_run = E.run_baseline(factory, n_nodes=8)
        base = base_run.result.execution_time_ms
        exec_cells, vol_cells, tcm_cells = [], [], []
        data = {"base": base, "exec": {}, "vol_pct": {}, "tcm_ms": {}}
        gos_kb = None
        for rate in RATES:
            if not applicable(name, rate):
                exec_cells.append("N/A")
                vol_cells.append("N/A")
                tcm_cells.append("N/A")
                continue
            run = E.run_with_correlation(
                factory, n_nodes=8, rate=rate, send_oals=True, telemetry=True
            )
            run.suite.collector.tcm()  # force window processing / O3 charge
            t = run.result.execution_time_ms
            # Traffic volumes and the daemon's computing time come out of
            # the telemetry snapshot — the registry is the single source
            # for every statistic this table reports.
            snap = run.djvm.telemetry.snapshot()
            gos_kb = snap["network_gos_bytes"] / 1024
            oal_kb = snap["network_oal_bytes"] / 1024
            pct = snap["network_oal_bytes"] / snap["network_gos_bytes"]
            tcm_ms = snap["profiler_tcm_compute_ns"] / 1e6
            data["exec"][rate] = overhead_frac(base, t)
            data["vol_pct"][rate] = pct
            data["tcm_ms"][rate] = tcm_ms
            exec_cells.append(format_overhead(base, t))
            vol_cells.append(f"{oal_kb:.0f} ({pct * 100:.2f}%)")
            tcm_cells.append(f"{tcm_ms:.0f}")
        paper = TABLE3[name]
        exec_table.add_row(
            name, f"{base:.0f}", *exec_cells, f"({paper['exec_overhead_pct']['full']:.2f}%)"
        )
        vol_table.add_row(
            name,
            f"{gos_kb:.0f}",
            *vol_cells,
            f"({paper['oal_volume_pct']['full']:.2f}%)",
        )
        tcm_table.add_row(name, *tcm_cells, f"{paper['tcm_ms']['full']}")
        measured[name] = data
    text = "\n\n".join(t.render() for t in (exec_table, vol_table, tcm_table))
    return text, measured


def test_table3_tracking_overheads(benchmark):
    text, measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_table("table3_tracking_overheads", text)

    bh = measured["Barnes-Hut"]
    ws = measured["Water-Spatial"]
    sor = measured["SOR"]

    # Execution overhead tolerable below full sampling, larger at full.
    assert bh["exec"][1] < bh["exec"]["full"]
    assert bh["exec"]["full"] < 0.15
    # OAL volume: a few percent under 16X, rising steeply at full.
    assert bh["vol_pct"][4] < 0.06
    assert bh["vol_pct"]["full"] > 2 * bh["vol_pct"][4]
    # SOR uses proportionally the most OAL bandwidth at full sampling
    # (large arrays fully sampled while threads touch disjoint portions).
    assert sor["vol_pct"]["full"] > ws["vol_pct"]["full"]
    # TCM computation shrinks with coarser sampling (the adaptive knob).
    assert bh["tcm_ms"][1] < bh["tcm_ms"]["full"]
    assert ws["tcm_ms"][1] < ws["tcm_ms"]["full"]
    # TCM computing cost ranks with sharing volume: BH >> WS (paper 4609
    # vs 749 ms).
    assert bh["tcm_ms"]["full"] > ws["tcm_ms"]["full"]
