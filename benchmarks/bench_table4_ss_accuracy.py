"""Table IV — accuracy of the sticky-set footprint estimate.

Paper methodology, reproduced: 8 threads per application, the sticky-set
footprint profiled via object sampling at 4X, compared per class against
the footprint obtained at full sampling (itself still an estimate — the
paper notes absolute truth would require actually migrating threads).

Shape expectations (paper): SOR perfect (its rows are effectively always
fully sampled), Barnes-Hut and Water-Spatial classes all above ~92%.
"""

from common import PAPER_SCALE, record_table, workload_factories

from repro.analysis import experiments as E
from repro.analysis.paper import TABLE4
from repro.analysis.report import Table


def average_footprints(run) -> dict[str, float]:
    """Per-class footprint averaged over all threads' intervals."""
    out: dict[str, list[float]] = {}
    fp_profiler = run.suite.footprinter
    for t in range(len(run.djvm.threads)):
        for cname, value in fp_profiler.average_footprint(t).items():
            out.setdefault(cname, []).append(value)
    return {c: sum(v) / len(v) for c, v in out.items()}


def run_experiment():
    rows = []
    measured = {}
    for name, factory in workload_factories(n_threads=8):
        full = average_footprints(
            E.run_with_sticky_profiling(factory, 8, rate="full", stack=False)
        )
        sampled = average_footprints(
            E.run_with_sticky_profiling(factory, 8, rate=4, stack=False)
        )
        per_class = {}
        for cname, full_bytes in sorted(full.items()):
            if full_bytes <= 0:
                continue
            diff = abs(sampled.get(cname, 0.0) - full_bytes)
            acc = max(0.0, 1 - diff / full_bytes)
            per_class[cname] = (full_bytes, diff, acc)
            paper_acc = TABLE4.get(name, {}).get(cname, {}).get("accuracy_pct")
            rows.append(
                (
                    name,
                    cname,
                    f"{full_bytes:.0f}",
                    f"{diff:.0f}",
                    f"{acc * 100:.2f}%",
                    f"{paper_acc:.2f}%" if paper_acc is not None else "-",
                )
            )
        measured[name] = per_class
    table = Table(
        "Table IV: accuracy of sticky-set footprint (4X vs full sampling)"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        ["Benchmark", "Class", "Full-sampling SS (bytes)", "Diff @4X", "Accuracy", "Paper"],
    )
    for row in rows:
        table.add_row(*row)
    return table, measured


def test_table4_ss_accuracy(benchmark):
    table, measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_table("table4_ss_accuracy", table.render())

    # SOR: rows exceed the page size, hence effectively full sampling at
    # 4X — the footprint must be (near-)perfect.
    sor = measured["SOR"]["double[]"]
    assert sor[2] > 0.99, sor

    # The classes the paper reports stay above ~85% (its floor is 92.76%;
    # we allow a margin for the reduced problem sizes, whose smaller
    # sticky populations carry more estimator variance).  Classes the
    # paper omits (e.g. Water-Spatial's tiny WSCell population, where a
    # 4X gap leaves a single-digit sample count) are reported unasserted.
    for app in ("Barnes-Hut", "Water-Spatial"):
        assert measured[app], f"{app} produced no footprint classes"
        for cname in TABLE4.get(app, {}):
            if cname not in measured[app]:
                continue
            full_bytes, diff, acc = measured[app][cname]
            assert acc > 0.85, (app, cname, acc)

    # The BH footprint must cover the paper's classes.
    assert {"Body", "Vect3"} <= set(measured["Barnes-Hut"])
