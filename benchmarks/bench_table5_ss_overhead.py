"""Table V — overhead of sticky-set footprint profiling.

Paper methodology, reproduced (single thread per application, the two
cost components isolated exactly as in Section IV.B.1):

* **C1, stack sampling** — object sampling and correlation tracking
  disabled; the stack sampling gap varied 4 ms / 16 ms, comparing
  immediate against lazy frame extraction.
* **C2, footprinting** — stack sampling and correlation tracking
  disabled; nonstop tracking vs a 100 ms timer, at 4X and full sampling.
* **SS resolution** — invoked eagerly at the end of each HLRC interval
  (the paper's ad-hoc methodology) to expose its cost, which normally
  vanishes outside migrations.

Shape expectations (paper): stack sampling overhead well under ~1.5%
with lazy extraction beating immediate in almost all cases; footprinting
the most expensive component (up to ~9%), trimmed by the 4X gap and the
timer; resolution a few percent at worst.
"""

from common import PAPER_SCALE, record_table, workload_factories

from repro.analysis import experiments as E
from repro.analysis.paper import TABLE5
from repro.analysis.report import Table, format_pct
from repro.obs.overhead import overhead_frac


def stack_overheads(factory, base_ms):
    cells = {}
    for lazy in (False, True):
        for gap_ms in (4, 16):
            run = E.run_with_sticky_profiling(
                factory,
                n_nodes=1,
                stack=True,
                footprint=False,
                stack_gap_ms=gap_ms,
                lazy_extraction=lazy,
            )
            t = run.result.execution_time_ms
            cells[("lazy" if lazy else "immediate", gap_ms)] = overhead_frac(base_ms, t)
    return cells


def footprint_overheads(factory, base_ms):
    cells = {}
    for timer in (None, 100.0):
        for rate in (4, "full"):
            run = E.run_with_sticky_profiling(
                factory,
                n_nodes=1,
                stack=False,
                footprint=True,
                rate=rate,
                footprint_timer_ms=timer,
            )
            t = run.result.execution_time_ms
            cells[("nonstop" if timer is None else "timer", rate)] = overhead_frac(base_ms, t)
    return cells


def resolution_overhead(factory, base_ms):
    """Eager resolution at every interval close (the paper's ad-hoc
    measurement methodology)."""
    workload = factory()
    djvm = E.build_djvm(workload, 1)
    from repro.core.profiler import ProfilerSuite

    suite = ProfilerSuite(djvm, correlation=False, stack=True, footprint=True)
    suite.set_rate_all(4)

    class EagerResolver:
        def on_interval_open(self, thread):
            pass

        def on_access(self, thread, obj, **kw):
            pass

        def on_interval_close(self, thread, interval, sync_dst):
            suite.resolve_sticky_set(thread, charge_cost=True)

    djvm.add_hook(EagerResolver())
    t = djvm.run(workload.programs()).execution_time_ms
    return overhead_frac(base_ms, t)


def run_experiment():
    stack_table = Table(
        "Table V-a: stack sampling overhead (1 thread)"
        + ("" if PAPER_SCALE else "  [reduced scale]"),
        ["Benchmark", "Baseline (ms)", "Imm 4ms", "Imm 16ms", "Lazy 4ms", "Lazy 16ms",
         "Paper lazy 16ms"],
    )
    fp_table = Table(
        "Table V-b: sticky-set footprinting overhead",
        ["Benchmark", "Nonstop 4X", "Nonstop full", "Timer 4X", "Timer full",
         "Paper nonstop full"],
    )
    res_table = Table(
        "Table V-c: sticky-set resolution overhead (eager, per interval)",
        ["Benchmark", "Overhead", "Paper"],
    )
    measured = {}
    for name, factory in workload_factories(n_threads=1):
        base = E.run_baseline(factory, n_nodes=1).result.execution_time_ms
        stack = stack_overheads(factory, base)
        fp = footprint_overheads(factory, base)
        res = resolution_overhead(factory, base)
        measured[name] = {"base": base, "stack": stack, "fp": fp, "res": res}
        paper = TABLE5[name]
        stack_table.add_row(
            name,
            f"{base:.0f}",
            format_pct(stack[("immediate", 4)]),
            format_pct(stack[("immediate", 16)]),
            format_pct(stack[("lazy", 4)]),
            format_pct(stack[("lazy", 16)]),
            f"({paper['stack_pct'][('lazy', 16)]:.2f}%)",
        )
        fp_table.add_row(
            name,
            format_pct(fp[("nonstop", 4)]),
            format_pct(fp[("nonstop", "full")]),
            format_pct(fp[("timer", 4)]),
            format_pct(fp[("timer", "full")]),
            f"({paper['footprint_pct'][('nonstop', 'full')]:.2f}%)",
        )
        res_table.add_row(name, format_pct(res), f"({paper['resolution_pct']:.2f}%)")
    text = "\n\n".join(t.render() for t in (stack_table, fp_table, res_table))
    return text, measured


def test_table5_ss_overhead(benchmark):
    text, measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    record_table("table5_ss_overhead", text)

    for name, data in measured.items():
        stack, fp = data["stack"], data["fp"]
        # Stack sampling is cheap: bounded by ~2.5% everywhere.
        for key, ovh in stack.items():
            assert ovh < 0.025, (name, key, ovh)
        # Lazy extraction beats immediate at the same gap (paper: "in
        # almost all cases"; we allow sub-0.1% noise).
        for gap in (4, 16):
            assert stack[("lazy", gap)] <= stack[("immediate", gap)] + 0.001, (name, gap)
        # Sampling more often (4 ms) costs at least as much as 16 ms.
        assert stack[("immediate", 4)] >= stack[("immediate", 16)] - 0.001
        # Footprinting is the expensive component but bounded (~10%).
        assert fp[("nonstop", "full")] < 0.12, (name, fp)
        # The timer trims cost; the 4X gap trims it for fine-grained apps.
        assert fp[("timer", 4)] <= fp[("nonstop", 4)] + 0.002, name
        assert fp[("timer", "full")] <= fp[("nonstop", "full")] + 0.002, name
        # Resolution, even eagerly invoked per interval, stays small.
        assert data["res"] < 0.08, (name, data["res"])

    # Barnes-Hut pays the highest stack-sampling cost (recursive
    # traversal => deepest stacks), as in the paper.
    assert (
        measured["Barnes-Hut"][("stack")][("immediate", 4)]
        >= measured["Water-Spatial"]["stack"][("immediate", 4)] - 0.001
    )
