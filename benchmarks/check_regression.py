"""Fail when the current perf report regresses against the baseline.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json

Compares every wall-time in the two ``BENCH_perf.json``-shaped reports
(workload phases and kernels).  Exits non-zero when any wall-time in
CURRENT is more than ``PERF_TOLERANCE`` (default 0.20 = 20%) slower than
BASELINE, after an absolute slack of ``PERF_ABS_SLACK_S`` (default
0.02 s) that keeps millisecond-scale measurements — whose run-to-run
scheduler noise easily exceeds 20% — from flaking the guard.
Determinism checksums are compared too: a mismatch means the simulation
itself changed, which a perf-only PR must not do, and is reported as a
hard failure regardless of tolerance.  The same rule applies to the
telemetry metrics snapshots recorded in each workload's ``telemetry``
phase: every sample is simulated state, so any drift between baseline
and current is a silent behavior change and fails hard (wall times in
that phase get the normal tolerance).

The ``scale`` phase (serial oracle vs partitioned+vectorized kernel on
the SOR node ladder) is judged on correctness, not speed: its wall times
are printed as advisory, but the serial and parallel checksums must be
identical within CURRENT and unchanged against BASELINE.

The ``frontier`` phase (sampling-backend accuracy vs overhead) follows
the same split: per-backend E_ABS / decision-cost / wall-overhead rows
are advisory prints, while the phase's recorded gate booleans — prime
gap reproducing the default policy's TCM byte-for-byte, a stateless
backend within 2x E_ABS at lower decision cost, the small-working-set
dead-zone probe flagged — are hard failures when false.
"""

from __future__ import annotations

import json
import os
import sys

DEFAULT_TOLERANCE = 0.20
DEFAULT_ABS_SLACK_S = 0.02


def iter_wall_times(report: dict):
    """Yield (label, wall_s) for every measurement in a report."""
    for wl, phases in sorted(report.get("workloads", {}).items()):
        for phase, rec in sorted(phases.items()):
            if isinstance(rec, dict) and "wall_s" in rec:
                yield f"workload:{wl}/{phase}", rec["wall_s"]
    for kernel, rec in sorted(report.get("kernels", {}).items()):
        if isinstance(rec, dict) and "wall_s" in rec:
            yield f"kernel:{kernel}", rec["wall_s"]


def checksums(report: dict) -> dict:
    return {
        wl: phases.get("checksum")
        for wl, phases in sorted(report.get("workloads", {}).items())
        if isinstance(phases, dict) and phases.get("checksum") is not None
    }


def telemetry_snapshots(report: dict) -> dict:
    out = {}
    for wl, phases in sorted(report.get("workloads", {}).items()):
        snap = phases.get("telemetry", {}).get("snapshot") if isinstance(phases, dict) else None
        if snap is not None:
            out[wl] = snap
    return out


def diff_snapshot(expect: dict, got: dict) -> list[str]:
    """Per-sample drift lines between two telemetry snapshots."""
    lines = []
    for key in sorted(set(expect) | set(got)):
        a, b = expect.get(key), got.get(key)
        if a != b:
            lines.append(f"{key}: {a} -> {b}")
    return lines


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    baseline_path, current_path = argv
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
        with open(current_path) as f:
            current = json.load(f)
    except OSError as exc:
        print(f"error: cannot read report: {exc}")
        return 2
    tolerance = float(os.environ.get("PERF_TOLERANCE", DEFAULT_TOLERANCE))
    abs_slack = float(os.environ.get("PERF_ABS_SLACK_S", DEFAULT_ABS_SLACK_S))

    base_walls = dict(iter_wall_times(baseline))
    failures = []
    for label, wall in iter_wall_times(current):
        base = base_walls.get(label)
        if base is None:
            print(f"  NEW   {label:40s} {wall:.4f}s (no baseline)")
            continue
        ratio = wall / base if base > 0 else float("inf")
        status = "ok"
        if wall > base * (1.0 + tolerance) + abs_slack:
            status = "REGRESSION"
            failures.append(
                f"{label}: {base:.4f}s -> {wall:.4f}s "
                f"(+{(ratio - 1) * 100:.0f}%, tolerance {tolerance * 100:.0f}%)"
            )
        print(f"  {status:10s} {label:40s} {base:.4f}s -> {wall:.4f}s ({ratio:.2f}x)")

    base_sums = checksums(baseline)
    for wl, summ in checksums(current).items():
        expect = base_sums.get(wl)
        if expect is not None and summ != expect:
            failures.append(f"{wl}: determinism checksum changed (simulated results differ)")

    # Scale phase: wall times are advisory (multi-second runs on shared
    # hardware are too noisy to gate on), but the result checksums are
    # hard requirements — the partitioned/vectorized kernel must match
    # the serial oracle byte for byte, and neither may drift from the
    # committed baseline.
    base_scale = baseline.get("scale", {})
    for rung, point in sorted(current.get("scale", {}).items()):
        if not isinstance(point, dict):
            continue
        serial = point.get("serial", {}).get("wall_s")
        par = point.get("parallel", {}).get("wall_s")
        if serial is not None and par is not None:
            print(
                f"  scale      {rung:40s} serial {serial:.4f}s -> "
                f"parallel {par:.4f}s ({point.get('speedup', 0):.2f}x, advisory)"
            )
        if not point.get("identical", False):
            failures.append(
                f"scale:{rung}: parallel kernel checksum diverged from the "
                f"serial oracle"
            )
        expect = base_scale.get(rung)
        if expect is not None:
            for key in ("checksum_serial", "checksum_parallel"):
                if expect.get(key) != point.get(key):
                    failures.append(
                        f"scale:{rung}: {key} changed vs baseline "
                        f"(simulated results differ)"
                    )

    # Frontier phase: accuracy/cost rows are advisory (decision cost and
    # wall overhead are machine-dependent), the gate booleans are hard.
    frontier = current.get("frontier", {})
    for wl, rec in sorted(frontier.get("workloads", {}).items()):
        for backend, row in sorted(rec.get("backends", {}).items()):
            print(
                f"  frontier   {wl}/{backend:30s} e_abs {row.get('e_abs', 0):.4f}  "
                f"decide {row.get('decide_ns', 0):8.1f} ns  "
                f"overhead {row.get('overhead_frac', 0) * 100:+.1f}% (advisory)"
            )
    for gate, ok in sorted(frontier.get("gates", {}).items()):
        if not ok:
            failures.append(f"frontier:{gate}: gate failed")

    base_snaps = telemetry_snapshots(baseline)
    for wl, snap in telemetry_snapshots(current).items():
        expect = base_snaps.get(wl)
        if expect is None:
            continue
        drift = diff_snapshot(expect, snap)
        if drift:
            for line in drift[:10]:
                print(f"  telemetry drift {wl}: {line}")
            failures.append(
                f"{wl}: telemetry snapshot drifted ({len(drift)} sample(s)) — "
                f"simulated results differ"
            )

    if failures:
        print("\nFAIL:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nOK: no wall-time regression beyond tolerance, checksums stable")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
