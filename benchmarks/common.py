"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, records a
paper-style text rendition via :func:`record_table` (written to
``benchmarks/results/`` and echoed into the pytest terminal summary by
``conftest.py``), and asserts the *shape* properties the paper reports
(who wins, by roughly what factor) rather than absolute milliseconds.

Scale: the default configurations are trimmed so the whole suite runs in
minutes on a laptop.  Set ``REPRO_PAPER_SCALE=1`` to run every experiment
at the paper's full problem sizes.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: tables recorded during this pytest session, echoed at summary time.
RECORDED: list[tuple[str, str]] = []

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "") not in ("", "0", "false")


def record_table(name: str, text: str) -> None:
    """Persist one rendered experiment table and queue it for display."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    RECORDED.append((name, text))


def scaled(paper_value: int, reduced_value: int) -> int:
    """Pick a problem-size parameter by scale mode."""
    return paper_value if PAPER_SCALE else reduced_value


# ---------------------------------------------------------------------------
# workload configurations per scale mode
# ---------------------------------------------------------------------------


def sor_config(n_threads: int) -> dict:
    return {
        "n": scaled(2048, 1024),
        "rounds": scaled(10, 4),
        "n_threads": n_threads,
    }


def bh_config(n_threads: int) -> dict:
    return {
        "n_bodies": scaled(4096, 2048),
        "rounds": scaled(5, 3),
        "n_threads": n_threads,
    }


def ws_config(n_threads: int) -> dict:
    return {
        "n_molecules": scaled(512, 384),
        "rounds": scaled(5, 3),
        "n_threads": n_threads,
    }


def workload_factories(n_threads: int):
    """(name, factory) for the three paper benchmarks at bench scale."""
    from repro.workloads import BarnesHutWorkload, SORWorkload, WaterSpatialWorkload

    return [
        ("SOR", lambda: SORWorkload(**sor_config(n_threads))),
        ("Barnes-Hut", lambda: BarnesHutWorkload(**bh_config(n_threads))),
        ("Water-Spatial", lambda: WaterSpatialWorkload(**ws_config(n_threads))),
    ]
