"""Benchmark-session plumbing: echo every recorded experiment table into
the terminal summary (so ``pytest benchmarks/ --benchmark-only | tee``
captures the paper-style tables alongside pytest-benchmark's timings)."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import RECORDED  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RECORDED:
        return
    terminalreporter.section("reproduced paper tables & figures")
    for name, text in RECORDED:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {name} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)
