"""Accuracy-vs-overhead frontier across sampling backends.

One full-sampling profiled run per workload yields the reference TCM;
because every backend's decision is a pure function of immutable object
identity, the TCM each backend would have produced at rate 4 is computed
by *filtering* that same OAL stream (``tcm_at_rate(..., backend=...)``)
— exactly what a re-run under that backend would log.  Against the
reference we publish, per backend x workload:

* ``e_abs`` / ``e_euc`` — the paper's formulas (2)/(1) of the rate-4
  map against the full-sampling map (``core/accuracy.error_summary``),
* ``decide_ns`` — cold per-decision cost through the backend's batch
  lane (fresh policy, so the memoized backend pays its cold computes),
* ``wall_s`` / ``overhead_frac`` — end-to-end wall of a correlation-
  tracking run under the backend vs the unprofiled baseline.

Plus the stateless-bias diagnostics: ``dead_zone_report`` over each
workload's live heap, and a synthetic small-working-set probe (a class
whose population x inclusion probability is < 1) that the hash backend
MUST flag — the PAGE_HASH failure mode.

Hard gates (``main`` exit code, also re-checked by check_regression):

* the prime-gap backend's replayed TCM is byte-identical to the default
  policy's (the refactor moved code, not behavior),
* at least one stateless backend reaches E_ABS within 2x of prime-gap
  while deciding cheaper per access,
* the dead-zone probe is flagged.

Usage::

    PYTHONPATH=src python benchmarks/frontier.py [--mode smoke|full]
        [--repeats N] [--output PATH]
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from common import workload_factories
from repro.analysis import experiments as E
from repro.core.accuracy import error_summary
from repro.core.sampling import SamplingPolicy, resolve_backend
from repro.heap.heap import GlobalObjectSpace

N_THREADS = 8
N_NODES = 8
RATE = 4

FULL_BACKENDS = ("prime_gap", "poisson", "hash", "hybrid")
SMOKE_BACKENDS = ("prime_gap", "hash")

#: absolute slack on the 2x E_ABS gate — workloads whose arrays are
#: always sampled put prime-gap at e_abs ~ 0, where a pure ratio test
#: is degenerate.
EABS_SLACK = 0.01


def best_of(fn, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            result = out
    return best, result


def _decide_cost_ns(backend_name: str, gos, repeats: int) -> float:
    """Cold per-decision cost through the batch lane: a fresh policy per
    timed run, so the memoized backend pays its cold computes and the
    stateless backends their kernel — what a first-touch access costs."""
    objs = list(gos)[:4096]
    if not objs:
        return 0.0

    def run():
        policy = SamplingPolicy(backend=resolve_backend(backend_name))
        for jclass in gos.registry:
            policy.set_rate(jclass, RATE)
        return policy.decide_batch(objs)

    wall, out = best_of(run, repeats)
    assert len(out) == len(objs)
    return wall * 1e9 / len(objs)


def _dead_zone_probe(backend_name: str) -> dict:
    """Synthetic small-working-set heap: 30 objects of a 96-byte class
    at rate 1 (gap ~41) give an expected sample count under 1 — any
    stateless backend must flag the class as structurally biased."""
    gos = GlobalObjectSpace()
    rare = gos.registry.define("Probe", 96)
    policy = SamplingPolicy(backend=resolve_backend(backend_name))
    policy.set_rate(rare, 1)
    for _ in range(30):
        gos.allocate("Probe", home_node=0)
    report = policy.backend.dead_zone_report(gos)
    return {
        "population": 30,
        "gap": policy.gap(rare),
        "flagged": any(r["class"] == "Probe" for r in report),
        "report": report,
    }


def measure_frontier(repeats: int, mode: str = "full") -> dict:
    """The frontier phase: accuracy, decision cost, wall overhead and
    dead-zone diagnostics per backend x workload, plus the hard-gate
    booleans.  ``smoke`` restricts to SOR under prime_gap + hash with
    one repeat — the make-check / CI configuration."""
    factories = workload_factories(N_THREADS)
    backends = FULL_BACKENDS
    if mode == "smoke":
        factories = factories[:1]
        backends = SMOKE_BACKENDS
        repeats = 1

    out: dict[str, object] = {"rate": RATE, "mode": mode, "workloads": {}}
    gate_2x = {}
    for name, factory in factories:
        batches, gos, n_threads, _run = E.collect_full_batches(factory, N_NODES)
        full = E.tcm_at_rate(batches, gos, n_threads, "full")
        default_r4 = E.tcm_at_rate(batches, gos, n_threads, RATE)
        default_sha = hashlib.sha256(default_r4.tobytes()).hexdigest()

        base_wall, _ = best_of(lambda: E.run_baseline(factory, n_nodes=N_NODES), repeats)

        rows: dict[str, dict] = {}
        for backend_name in backends:
            tcm = E.tcm_at_rate(
                batches, gos, n_threads, RATE, backend=resolve_backend(backend_name)
            )
            row = dict(error_summary(tcm, full))
            row["tcm_sha256"] = hashlib.sha256(tcm.tobytes()).hexdigest()
            row["decide_ns"] = round(_decide_cost_ns(backend_name, gos, repeats), 1)

            def run_backend(bn=backend_name):
                run = E.run_with_correlation(
                    factory,
                    n_nodes=N_NODES,
                    rate=RATE,
                    send_oals=True,
                    sampling_backend=bn,
                )
                run.suite.collector.tcm()
                return run

            wall, run = best_of(run_backend, repeats)
            row["wall_s"] = round(wall, 6)
            row["overhead_frac"] = round((wall - base_wall) / base_wall, 4)
            for key in ("e_abs", "e_euc", "accuracy_abs", "accuracy_euc"):
                row[key] = round(row[key], 6)

            replay_backend = resolve_backend(backend_name)
            if hasattr(replay_backend, "dead_zone_report"):
                policy = SamplingPolicy(backend=replay_backend)
                for jclass in gos.registry:
                    policy.set_rate(jclass, RATE)
                row["dead_zones"] = policy.backend.dead_zone_report(gos)
            rows[backend_name] = row
            print(
                f"frontier {name:14s} {backend_name:10s} "
                f"e_abs {row['e_abs']:.4f}  decide {row['decide_ns']:8.1f} ns  "
                f"wall {row['wall_s']:.4f}s (+{row['overhead_frac'] * 100:.1f}%)",
                flush=True,
            )

        prime = rows["prime_gap"]
        gate_2x[name] = any(
            rows[b]["e_abs"] <= 2.0 * prime["e_abs"] + EABS_SLACK
            and rows[b]["decide_ns"] < prime["decide_ns"]
            for b in backends
            if b != "prime_gap"
        )
        out["workloads"][name] = {
            "base_wall_s": round(base_wall, 6),
            "backends": rows,
            "prime_gap_matches_default": prime["tcm_sha256"] == default_sha,
        }

    probe = _dead_zone_probe("hash")
    out["dead_zone_probe"] = probe
    out["gates"] = {
        "prime_gap_matches_default": all(
            wl["prime_gap_matches_default"] for wl in out["workloads"].values()
        ),
        "stateless_within_2x_and_cheaper": all(gate_2x.values()),
        "dead_zone_probe_flagged": probe["flagged"],
    }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="full")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=None, help="optional JSON output path")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = measure_frontier(args.repeats, args.mode)
    if args.output:
        with open(args.output, "w") as f:
            json.dump(report, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.output}")

    failures = [gate for gate, ok in sorted(report["gates"].items()) if not ok]
    if failures:
        for gate in failures:
            print(f"frontier gate FAIL: {gate}", file=sys.stderr)
        return 1
    print("frontier gates: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
