"""Tracked performance harness: workloads end to end, plus hot kernels.

Runs the three paper workloads (SOR, Barnes-Hut, Water-Spatial) at bench
scale through four phases each — ``base`` (no profiling), ``r4``
(correlation tracking at rate 1/4, including TCM construction), ``full``
(full sampling) and ``telemetry`` (r4 with metrics + span tracing
attached, plus the deterministic metrics snapshot) — and the simulator's
hot kernels, then writes ``BENCH_perf.json``.  A separate ``scale``
phase runs the SOR weak-scaling ladder (8 → 128 simulated nodes, one
thread per node) under both the serial oracle kernel and the
partitioned + vectorized kernel, recording wall/ops-per-second for each
mode plus a byte-level checksum of the simulated results — the two
kernels must produce identical checksums at every rung.  This file is the perf trajectory every later PR is
measured against: ``make perf`` regenerates it and
``benchmarks/check_regression.py`` fails the build when wall-time
regresses against the committed baseline.

Methodology: every wall-time is the best of ``--repeats`` runs (default
3) with ``gc.collect()`` before each, so one-off allocator/GC noise does
not pollute the trajectory.  Simulated outputs are summarized into
determinism checksums (TCM digest, final thread clocks, protocol
counters) so a perf change that silently alters simulation results is
caught here too.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py [--output PATH]
        [--repeats N]
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from common import PAPER_SCALE, workload_factories
from repro.analysis import experiments as E
from repro.core.sampling import SamplingPolicy
from repro.core.tcm import build_tcm
from repro.heap.heap import GlobalObjectSpace
from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.sim.costs import CostModel
from repro.sim.network import Network, RackTopology
from repro.workloads.sor import SORWorkload

N_THREADS = 8
N_NODES = 8

#: weak-scaling ladder for the ``scale`` phase: one SOR thread per node,
#: 256 grid rows per thread, rounds shrinking to keep each point a few
#: seconds.  (nodes, grid n, rounds).
SCALE_CONFIGS = [
    (8, 2_048, 8),
    (32, 8_192, 4),
    (64, 16_384, 2),
    (128, 32_768, 2),
]
SCALE_PARTITIONS = 4


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Best wall time over ``repeats`` calls (gc-collected before each)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
            result = out
    return best, result


def median_of(fn, repeats: int, warmups: int = 2) -> tuple[float, object]:
    """Median wall time over ``repeats`` calls after ``warmups`` discarded
    runs, with the collector paused around each timed region.  The scale
    phase uses medians (not best-of): its multi-second runs drift with
    allocator state, and the median is the honest central tendency the
    serial-vs-parallel speedups are computed from."""
    walls = []
    result = None
    for i in range(warmups + repeats):
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - t0
        finally:
            gc.enable()
        if i >= warmups:
            walls.append(elapsed)
    walls.sort()
    mid = len(walls) // 2
    if len(walls) % 2:
        median = walls[mid]
    else:
        median = (walls[mid - 1] + walls[mid]) / 2.0
    return median, result


# ---------------------------------------------------------------------------
# end-to-end workload phases
# ---------------------------------------------------------------------------


def measure_workloads(repeats: int) -> dict:
    out: dict[str, dict] = {}
    for name, factory in workload_factories(N_THREADS):
        phases: dict[str, dict] = {}

        def run_base():
            return E.run_baseline(factory, n_nodes=N_NODES)

        def run_rate(rate):
            run = E.run_with_correlation(
                factory, n_nodes=N_NODES, rate=rate, send_oals=True
            )
            tcm = run.suite.collector.tcm()
            return run, tcm

        wall, base = best_of(run_base, repeats)
        phases["base"] = {
            "wall_s": round(wall, 6),
            "ops": base.result.ops_executed,
            "ops_per_s": round(base.result.ops_executed / wall, 1),
        }

        wall, (run4, tcm4) = best_of(lambda: run_rate(4), repeats)
        phases["r4"] = {
            "wall_s": round(wall, 6),
            "ops": run4.result.ops_executed,
            "ops_per_s": round(run4.result.ops_executed / wall, 1),
        }

        wall, (runf, tcmf) = best_of(lambda: run_rate("full"), repeats)
        phases["full"] = {
            "wall_s": round(wall, 6),
            "ops": runf.result.ops_executed,
            "ops_per_s": round(runf.result.ops_executed / wall, 1),
        }

        def run_telemetry():
            run = E.run_with_correlation(
                factory, n_nodes=N_NODES, rate=4, send_oals=True, telemetry="full"
            )
            run.suite.collector.tcm()
            return run

        # The r4 phase again but with metrics + span tracing attached:
        # the wall delta against r4 tracks what observation costs, and
        # the snapshot (all simulated state) must be bit-stable — any
        # drift is a silent behavior change check_regression rejects.
        wall, runt = best_of(run_telemetry, repeats)
        phases["telemetry"] = {
            "wall_s": round(wall, 6),
            "ops": runt.result.ops_executed,
            "ops_per_s": round(runt.result.ops_executed / wall, 1),
            "snapshot": runt.djvm.telemetry.snapshot(),
        }

        # Determinism checksums: any hot-path change that alters the
        # simulation (not just its speed) shows up here.
        phases["checksum"] = {
            "base_final_clocks_ms": {
                str(k): v for k, v in sorted(base.result.thread_finish_ms.items())
            },
            "base_counters": dict(sorted(base.result.counters.items())),
            "r4_tcm_sha256": hashlib.sha256(tcm4.tobytes()).hexdigest(),
            "r4_logged": run4.suite.access_profiler.total_logged,
            "full_tcm_sha256": hashlib.sha256(tcmf.tobytes()).hexdigest(),
            "full_logged": runf.suite.access_profiler.total_logged,
        }
        out[name] = phases
        print(
            f"{name:14s} base {phases['base']['wall_s']:.4f}s  "
            f"r4 {phases['r4']['wall_s']:.4f}s  "
            f"full {phases['full']['wall_s']:.4f}s  "
            f"telemetry {phases['telemetry']['wall_s']:.4f}s",
            flush=True,
        )
    return out


# ---------------------------------------------------------------------------
# scale phase: serial oracle vs partitioned+vectorized kernel
# ---------------------------------------------------------------------------


def result_checksum(res) -> str:
    """Digest of everything the simulation produced: protocol counters,
    final thread clocks, op count, and per-kind network traffic.  The
    partitioned/vectorized kernel must reproduce the serial oracle's
    digest byte for byte — check_regression fails hard otherwise."""
    h = hashlib.sha256()
    h.update(repr(sorted(res.counters.items())).encode())
    h.update(repr(sorted(res.thread_finish_ms.items())).encode())
    h.update(repr(res.ops_executed).encode())
    by_kind = sorted(res.traffic._by_kind.items(), key=lambda kv: str(kv[0]))
    h.update(repr([(str(k), v) for k, v in by_kind]).encode())
    h.update(repr(res.traffic.messages).encode())
    return h.hexdigest()


def _scale_point(nodes: int, n: int, rounds: int, repeats: int) -> dict:
    """One ladder rung: SOR at ``nodes`` simulated nodes, serial-scalar
    vs partitioned-vectorized, sharing one compiled program set (object
    allocation is deterministic, so ids stay valid across rebuilds)."""
    scratch = DJVM(nodes)
    workload = SORWorkload(n=n, rounds=rounds, n_threads=nodes, seed=0)
    workload.build(scratch)
    compiled = {
        tid: P.compile_program(ops) for tid, ops in workload.programs().items()
    }

    def run_mode(kernel_kwargs: dict):
        djvm = DJVM(nodes, **kernel_kwargs)
        SORWorkload(n=n, rounds=rounds, n_threads=nodes, seed=0).build(djvm)
        return djvm.run(compiled)

    point: dict[str, object] = {"nodes": nodes, "n": n, "rounds": rounds}
    sums = {}
    for mode, kwargs in (
        ("serial", {"kernel": "serial", "replay": "scalar"}),
        (
            "parallel",
            {
                "kernel": "partitioned",
                "partitions": SCALE_PARTITIONS,
                "replay": "vector",
            },
        ),
    ):
        wall, res = median_of(lambda kw=kwargs: run_mode(kw), repeats)
        point[mode] = {
            "wall_s": round(wall, 6),
            "ops": res.ops_executed,
            "ops_per_s": round(res.ops_executed / wall, 1),
        }
        sums[mode] = result_checksum(res)
    point["speedup"] = round(point["serial"]["wall_s"] / point["parallel"]["wall_s"], 3)
    point["checksum_serial"] = sums["serial"]
    point["checksum_parallel"] = sums["parallel"]
    point["identical"] = sums["serial"] == sums["parallel"]
    return point


def measure_scale(repeats: int, mode: str = "full") -> dict:
    """``full``: the whole ladder.  ``smoke`` (make check / CI): the two
    smallest rungs with one timed run each — still enough to hard-check
    serial↔parallel byte-identity, and config-compatible with the full
    baseline so checksum comparison stays exact."""
    configs = SCALE_CONFIGS if mode == "full" else SCALE_CONFIGS[:2]
    if mode == "smoke":
        repeats = 1
    out = {}
    for nodes, n, rounds in configs:
        point = _scale_point(nodes, n, rounds, repeats)
        out[f"sor_{nodes}"] = point
        print(
            f"scale sor nodes={nodes:3d}  serial {point['serial']['wall_s']:.4f}s  "
            f"parallel {point['parallel']['wall_s']:.4f}s  "
            f"speedup {point['speedup']:.2f}x  identical={point['identical']}",
            flush=True,
        )
    return out


# ---------------------------------------------------------------------------
# hot kernels (mirrors bench_kernels.py without the pytest-benchmark dep)
# ---------------------------------------------------------------------------


def kernel_tcm_build(repeats: int) -> dict:
    rng = np.random.default_rng(0)
    entries = [
        (int(t), int(o), 64.0)
        for t, o in zip(rng.integers(0, 16, 50_000), rng.integers(0, 4_000, 50_000))
    ]
    wall, tcm = best_of(lambda: build_tcm(entries, 16), repeats)
    assert tcm.shape == (16, 16) and tcm.sum() > 0
    return {"wall_s": round(wall, 6), "entries_per_s": round(len(entries) / wall, 1)}


def kernel_sampling_decision(repeats: int) -> dict:
    gos = GlobalObjectSpace()
    cls = gos.registry.define("Obj", 96)
    arr_cls = gos.registry.define("Arr", is_array=True, element_size=8)
    objs = [gos.allocate(cls, 0) for _ in range(2_000)]
    objs += [gos.allocate(arr_cls, 0, length=100) for _ in range(500)]
    policy = SamplingPolicy()
    policy.set_rate(cls, 4)
    policy.set_rate(arr_cls, 4)
    wall, count = best_of(
        lambda: sum(1 for o in objs if policy.is_sampled(o)), repeats
    )
    assert 0 < count < len(objs)
    return {"wall_s": round(wall, 6), "decisions_per_s": round(len(objs) / wall, 1)}


def kernel_hlrc_access(repeats: int) -> dict:
    n = 20_000
    djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
    cls = djvm.define_class("Obj", 64)
    obj = djvm.allocate(cls, 0)
    thread = djvm.spawn_thread(0)
    djvm.hlrc.open_interval(thread)
    access = djvm.hlrc.access
    obj_id = obj.obj_id

    def run():
        for _ in range(n):
            access(thread, obj_id)

    wall, _ = best_of(run, repeats)
    return {"wall_s": round(wall, 6), "accesses_per_s": round(n / wall, 1)}


def kernel_interpreter_throughput(repeats: int) -> dict:
    def run():
        djvm = DJVM(n_nodes=1, costs=CostModel.fast_test())
        cls = djvm.define_class("Obj", 64)
        objs = [djvm.allocate(cls, 0) for _ in range(64)]
        djvm.spawn_thread(0)
        ops = [P.call("main", 2)]
        for _ in range(50):
            ops.extend(P.read(o.obj_id) for o in objs)
        ops.append(P.ret())
        return djvm.run({0: ops}).ops_executed

    wall, ops = best_of(run, repeats)
    assert ops == 50 * 64 + 2
    return {"wall_s": round(wall, 6), "ops_per_s": round(ops / wall, 1)}


def kernel_network_topology(repeats: int) -> dict:
    """Network construction plus latency probes at high fan-out: per-pair
    latency is an O(1) formula, so a 256-node fabric must cost the same
    to build as an 8-node one (16 sources x 255 destinations probed)."""
    def run():
        net = Network(topology=RackTopology(rack_size=8))
        total = 0
        for src in range(0, 256, 17):
            for dst in range(256):
                if dst != src:
                    total += net.latency_between_ns(src, dst)
        return net, total

    wall, (net, total) = best_of(run, repeats)
    assert net.min_latency_ns == 60_000 and total > 0
    probes = 16 * 255
    return {"wall_s": round(wall, 6), "probes_per_s": round(probes / wall, 1)}


def measure_kernels(repeats: int) -> dict:
    kernels = {
        "tcm_build_50k": kernel_tcm_build,
        "sampling_decision_2500": kernel_sampling_decision,
        "hlrc_access_20k": kernel_hlrc_access,
        "interpreter_3202_ops": kernel_interpreter_throughput,
        "network_topology_256n": kernel_network_topology,
    }
    out = {}
    for name, fn in kernels.items():
        out[name] = fn(repeats)
        print(f"kernel {name:24s} {out[name]['wall_s']:.4f}s", flush=True)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(Path(__file__).parent.parent / "BENCH_perf.json"),
        help="where to write the JSON report (default: repo-root BENCH_perf.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="runs per measurement (best-of)"
    )
    parser.add_argument(
        "--scale",
        choices=("off", "smoke", "full"),
        default="full",
        help="scale-phase depth: full ladder, smoke (2 rungs, 1 repeat), or off",
    )
    parser.add_argument(
        "--frontier",
        choices=("off", "smoke", "full"),
        default="full",
        help=(
            "sampling-backend frontier depth: all backends x workloads, "
            "smoke (SOR, prime_gap + hash, 1 repeat), or off"
        ),
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    report = {
        "schema": "repro-perf/1",
        "config": {
            "n_threads": N_THREADS,
            "n_nodes": N_NODES,
            "repeats": args.repeats,
            "paper_scale": PAPER_SCALE,
            "python": sys.version.split()[0],
        },
        "workloads": measure_workloads(args.repeats),
        "kernels": measure_kernels(args.repeats),
    }
    if args.scale != "off":
        report["scale"] = measure_scale(max(1, args.repeats - 2), args.scale)
    if args.frontier != "off":
        from frontier import measure_frontier

        report["frontier"] = measure_frontier(max(1, args.repeats - 2), args.frontier)
    with open(args.output, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
