#!/usr/bin/env python3
"""Adaptive sampling-rate control: paying only for the accuracy you need.

The correlation profiler's dominant cost (master-side TCM computation,
paper Table III) scales with the number of sampled objects.  The
adaptive controller starts coarse, refines the rate while successive
correlation maps disagree, and settles once they converge — without ever
consulting the (unaffordable) full-sampling reference.

This example runs Water-Spatial with the online controller attached,
prints the rate trajectory, and then grades the settled rate against
full sampling after the fact.

Run:  python examples/adaptive_profiling.py
"""

from repro import DJVM, AdaptiveRateController, ProfilerSuite
from repro.analysis import experiments as E
from repro.core.accuracy import absolute_error
from repro.workloads import WaterSpatialWorkload


def make_workload() -> WaterSpatialWorkload:
    return WaterSpatialWorkload(n_molecules=512, rounds=8, n_threads=8, seed=3)


def main() -> None:
    workload = make_workload()
    djvm = DJVM(n_nodes=8)
    workload.build(djvm)

    suite = ProfilerSuite(djvm, correlation=True, window_batches=32)
    suite.set_rate_all(1)  # start coarse: 1 object per page
    controller = AdaptiveRateController(threshold=0.05, metric="abs",
                                        ladder=(1, 2, 4, 8, 16, 32))
    suite.attach_controller(controller)

    print(f"running {workload.spec().name} with the adaptive controller "
          "(threshold 5%, ABS metric)...")
    result = djvm.run(workload.programs())
    print(result.summary())

    print("\nrate trajectory (one row per processed TCM window):")
    for i, d in enumerate(controller.decisions):
        err = "-" if d.relative_error is None else f"{d.relative_error * 100:5.2f}%"
        mark = "  <- settled" if d.converged else ""
        print(f"  window {i}: rate {d.rate:>4g}X   relative error {err}{mark}")
    state = "settled" if controller.settled else "in force when the run ended"
    print(f"\nrate {state}: {controller.rate:g}X "
          f"(after {suite.policy.rate_changes} cluster-wide resampling passes)")

    # --- grade the choice against full sampling (offline, for the demo) ----
    batches, gos, n, _ = E.collect_full_batches(make_workload, 8)
    full = E.tcm_at_rate(batches, gos, n, "full")
    settled = E.tcm_at_rate(batches, gos, n, controller.rate)
    err = absolute_error(settled, full)
    print(f"true error of the settled rate vs full sampling: {err * 100:.2f}%")

    full_entries = sum(len(b) for b in batches)
    settled_entries = suite.collector.entries_received
    print(f"OAL entries processed: {settled_entries} "
          f"(full sampling would have been {full_entries}; "
          f"{(1 - settled_entries / full_entries) * 100:.0f}% of the TCM "
          "pipeline cost avoided)")


if __name__ == "__main__":
    main()
