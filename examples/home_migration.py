#!/usr/bin/env python3
"""The home effect, and why thread placement needs home migration.

The paper's conclusion (Section VI) flags a tricky case for migration
policies: "objects shared by a pair of threads are homed at neither node
of the threads".  This example constructs exactly that situation with a
producer/consumer workload and shows the three-way comparison:

* baseline          — partners scrambled across nodes;
* rebalance only    — the online balancer co-locates them, but their
                      data's homes stay behind: traffic gets WORSE;
* rebalance + home migration — the dominant-writer policy re-homes the
                      data to the new node: the combination wins big.

Run:  python examples/home_migration.py
"""

from repro import DJVM, ProfilerSuite
from repro.core.costmodel import MigrationCostModel
from repro.dsm import DominantWriterPolicy, HomeMigrationEngine
from repro.placement import CorrelationAwareBalancer, OnlineRebalancer
from repro.workloads import GroupSharingWorkload

ROUNDS = 16
N_NODES = 8
N_THREADS = 16


def run(*, rebalance: bool, home_migration: bool):
    workload = GroupSharingWorkload(
        n_threads=N_THREADS,
        group_size=2,
        objects_per_group=192,
        private_per_thread=24,
        object_size=256,
        rounds=ROUNDS,
        group_writes=True,  # each group's first thread produces every round
        seed=6,
    )
    djvm = DJVM(n_nodes=N_NODES)
    # Scrambled start: partners t and t+1 land on different nodes.
    workload.build(djvm, placement=[t % N_NODES for t in range(N_THREADS)])
    suite = ProfilerSuite(djvm, correlation=True, send_oals=False)
    suite.set_rate_all(4)
    if rebalance:
        balancer = CorrelationAwareBalancer(
            MigrationCostModel(djvm.cluster.network, djvm.costs),
            horizon_intervals=2 * ROUNDS,
        )
        djvm.add_timer(OnlineRebalancer(suite, balancer, djvm.migration,
                                        warmup_intervals=3))
    engine = None
    if home_migration:
        engine = HomeMigrationEngine(djvm.hlrc)
        djvm.add_hook(DominantWriterPolicy(engine, threshold=0.6,
                                           min_writes=3, cooldown_writes=4))
    result = djvm.run(workload.programs())
    return result, engine


def main() -> None:
    print("producer/consumer groups, partners scrambled across 8 nodes\n")
    configs = [
        ("baseline", dict(rebalance=False, home_migration=False)),
        ("rebalance only", dict(rebalance=True, home_migration=False)),
        ("rebalance + home migration", dict(rebalance=True, home_migration=True)),
    ]
    print(f"{'config':<28} {'exec (ms)':>10} {'faults':>8} {'remote KB':>10}")
    results = {}
    for label, kw in configs:
        result, engine = run(**kw)
        results[label] = result
        print(f"{label:<28} {result.execution_time_ms:>10.0f} "
              f"{result.counters['faults']:>8} "
              f"{result.traffic.gos_bytes / 1024:>10.0f}")
        if engine is not None:
            print(f"{'':<28} ({engine.stats.migrations} objects re-homed, "
                  f"{engine.stats.bytes_shipped / 1024:.0f} KB shipped)")

    base = results["baseline"]
    moved = results["rebalance only"]
    both = results["rebalance + home migration"]
    print(f"\nthe home effect: thread migration alone changed remote traffic by "
          f"{(moved.traffic.gos_bytes / base.traffic.gos_bytes - 1) * 100:+.0f}% "
          "(the co-located pair now *both* talk to a third node)")
    print(f"with home migration the data follows the threads: "
          f"{(1 - both.traffic.gos_bytes / base.traffic.gos_bytes) * 100:.0f}% less "
          f"traffic and {base.execution_time_ms / both.execution_time_ms:.1f}x "
          "faster than baseline")


if __name__ == "__main__":
    main()
