#!/usr/bin/env python3
"""Sticky sets and the real cost of thread migration.

A thread's migration costs far more than shipping its stack: the objects
it keeps using ("sticky set", Section III) fault back one round trip at
a time.  This example runs Barnes-Hut with sticky-set profiling (stack
sampling + footprinting) enabled, migrates one thread mid-computation
three ways, and compares:

* no prefetch           — pay every post-migration fault;
* sticky-set prefetch   — resolution from stack invariants, bundled
                          along with the migration;
* oracle prefetch       — ground truth (accessed before and after the
                          migration instant), the unreachable ideal.

Run:  python examples/migration_cost_model.py
"""

from repro import DJVM, MigrationPlan, ProfilerSuite
from repro.workloads import BarnesHutWorkload

MIGRATE_AT_PC = 5200
TARGET_NODE = 7


def run(mode: str):
    workload = BarnesHutWorkload(n_bodies=1024, rounds=3, n_threads=8, seed=11)
    djvm = DJVM(n_nodes=8)
    workload.build(djvm)
    djvm.hlrc.keep_interval_history = True
    suite = ProfilerSuite(djvm, correlation=False, stack=True, footprint=True)
    suite.set_rate_all(4)
    info = {}

    def provider(thread):
        if mode == "none":
            return []
        if mode == "sticky":
            stats = suite.resolve_sticky_set(thread, charge_cost=True)
            info["resolution"] = stats
            return stats.selected
        # oracle: peek at the future access stream (impossible in a real
        # system; run once to know the interval's ground truth).
        return info["oracle_ids"]

    if mode == "oracle":
        # First run without migrating to learn the ground truth.
        probe = run("none")
        info["oracle_ids"] = probe["truth_ids"]

    djvm.migration.schedule(
        MigrationPlan(thread_id=0, target_node=TARGET_NODE, at_pc=MIGRATE_AT_PC,
                      prefetch_provider=provider)
    )
    result = djvm.run(workload.programs())

    interval = next(
        iv for iv in djvm.hlrc.interval_history[0]
        if iv.start_pc < MIGRATE_AT_PC <= iv.end_pc
    )
    mid = (interval.start_ns + interval.end_ns) // 2
    truth = {o for o, s in interval.accesses.items() if s.first_ns < mid <= s.last_ns}
    mig = djvm.migration.results[0]
    info.update(
        result=result,
        truth_ids=sorted(truth),
        faults=result.counters["faults"],
        finish_ms=result.thread_finish_ms[0],
        prefetched=mig.prefetched_objects,
        prefetch_kb=mig.prefetched_bytes / 1024,
    )
    return info


def main() -> None:
    print("migrating thread 0 mid-force-phase, three ways...\n")
    runs = {mode: run(mode) for mode in ("none", "sticky", "oracle")}

    print(f"{'strategy':<12} {'prefetched':>10} {'bundle KB':>10} "
          f"{'total faults':>13} {'thread-0 finish (ms)':>21}")
    for mode, info in runs.items():
        print(f"{mode:<12} {info['prefetched']:>10} {info['prefetch_kb']:>10.1f} "
              f"{info['faults']:>13} {info['finish_ms']:>21.1f}")

    sticky = runs["sticky"]
    stats = sticky["resolution"]
    truth = set(runs["none"]["truth_ids"])
    est = set(stats.selected)
    precision = len(truth & est) / max(len(est), 1)
    print(f"\nsticky-set resolution: {len(est)} objects selected from "
          f"{stats.visited} visited ({stats.landmark_stops} landmark stops), "
          f"precision vs ground truth {precision * 100:.0f}%")
    saved = runs["none"]["faults"] - sticky["faults"]
    print(f"prefetching the resolved set avoided {saved} remote faults "
          f"({saved / (runs['none']['faults'] - runs['oracle']['faults'] + 1e-9) * 100:.0f}% "
          "of what the oracle avoids)")


if __name__ == "__main__":
    main()
