#!/usr/bin/env python3
"""Offline trace analysis: record once, re-analyze forever.

A production profiler separates cheap online collection from offline
analysis.  This example records a full-sampling profile trace of
Water-Spatial to disk, then — without re-running the simulation —

* replays the trace at several sampling rates and grades each against
  the full map (an offline Fig. 9),
* runs the offline rate search to pick the economical rate,
* records a second run with a different sharing pattern and measures
  the drift between the two traces (the signal that would re-open the
  adaptive controller's search in production).

Run:  python examples/offline_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis.trace import ProfileTrace, record_trace
from repro.core.accuracy import accuracy
from repro.core.adaptive import OfflineRateSearch
from repro.workloads import GroupSharingWorkload, WaterSpatialWorkload


def main() -> None:
    # --- record ------------------------------------------------------------
    print("recording a full-sampling profile trace of Water-Spatial...")
    trace = record_trace(
        lambda: WaterSpatialWorkload(n_molecules=384, rounds=3, n_threads=8),
        n_nodes=8,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "water.trace.gz"
        trace.save(path)
        print(f"  {len(trace.batches)} OAL batches, "
              f"{len(trace.objects)} objects -> {path.stat().st_size / 1024:.1f} KB on disk")

        # --- replay at different rates, offline -----------------------------
        loaded = ProfileTrace.load(path)
    full = loaded.full_tcm()
    print("\noffline rate sweep (no re-simulation):")
    for rate in (64, 16, 4, 1):
        tcm = loaded.tcm_at_rate(rate)
        print(f"  {rate:>3}X: accuracy vs full = {accuracy(tcm, full) * 100:6.2f}%")

    # --- offline rate search -------------------------------------------------
    search = OfflineRateSearch(threshold=0.05, ladder=(1, 2, 4, 8, 16, 32))
    chosen = search.run(loaded.tcm_at_rate)
    print(f"\noffline rate search settles at {chosen:g}X "
          f"(threshold 5%, ABS metric, {len(search.history)} probes)")

    # --- drift detection -------------------------------------------------------
    print("\ndrift check against a run with a different sharing pattern:")
    same = record_trace(
        lambda: WaterSpatialWorkload(n_molecules=384, rounds=3, n_threads=8),
        n_nodes=8,
    )
    different = record_trace(
        lambda: GroupSharingWorkload(n_threads=8, group_size=2, rounds=3),
        n_nodes=8,
    )
    print(f"  vs identical rerun:     drift = {trace.drift_from(same) * 100:6.2f}%")
    print(f"  vs different workload:  drift = {trace.drift_from(different) * 100:6.2f}%")
    print("a production deployment alarms on the second and re-opens the "
          "adaptive search.")


if __name__ == "__main__":
    main()
