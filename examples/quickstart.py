#!/usr/bin/env python3
"""Quickstart: profile a workload's inter-thread sharing on the
simulated distributed JVM.

Boots an 8-node DJVM, runs the Barnes-Hut N-body benchmark (two
galaxies, 16 threads) with the adaptive-sampling correlation profiler at
rate 4X, and prints the thread correlation map (TCM) — the paper's core
output — as a heatmap, along with the run's cost breakdown.

Run:  python examples/quickstart.py
"""

from repro import DJVM, ProfilerSuite
from repro.analysis.heatmap import block_contrast, render_heatmap
from repro.workloads import BarnesHutWorkload


def main() -> None:
    workload = BarnesHutWorkload(n_bodies=1024, rounds=3, n_threads=16, seed=0)

    djvm = DJVM(n_nodes=8)
    workload.build(djvm)

    suite = ProfilerSuite(djvm, correlation=True)
    suite.set_rate_all(4)  # sample 4 objects per 4 KB page, per class

    print(f"running {workload.spec().name} ({workload.spec().data_set}, "
          f"{workload.n_threads} threads on {len(djvm.cluster)} nodes)...")
    result = djvm.run(workload.programs())
    print(result.summary())
    print()

    tcm = suite.tcm()
    print(render_heatmap(tcm, title="thread correlation map (darker = more shared bytes):"))
    print()

    galaxies = [int(workload.galaxy_of[list(workload.bodies_of(t))[0]])
                for t in range(workload.n_threads)]
    contrast = block_contrast(tcm, galaxies)
    print(f"intra-galaxy vs cross-galaxy sharing contrast: {contrast:.1f}x")
    print("threads in the same galaxy share heavily — exactly the structure")
    print("a correlation-aware scheduler exploits (see thread_placement.py).")

    profiling_ms = result.total_cpu.profiling_ns / 1e6
    total_ms = result.execution_time_ms
    print(f"\nprofiling cost: {profiling_ms:.1f} ms of CPU across all threads "
          f"({profiling_ms / total_ms * 100:.2f}% of the {total_ms:.0f} ms run)")
    print(f"OAL traffic: {result.traffic.oal_bytes / 1024:.0f} KB "
          f"({result.traffic.oal_bytes / result.traffic.gos_bytes * 100:.1f}% "
          f"of GOS protocol traffic)")


if __name__ == "__main__":
    main()
