#!/usr/bin/env python3
"""Correlation-aware thread placement: the profile-to-scheduler pipeline.

The paper's motivation for cheap, accurate correlation maps is thread
placement: co-locating highly correlated threads removes remote object
traffic.  This example closes that loop end to end:

1. run Barnes-Hut with threads placed round-robin (galaxy-blind — each
   node hosts threads of both galaxies);
2. profile the TCM at 4X sampling during that run;
3. partition the TCM (greedy seed + Kernighan-Lin refinement) into a
   thread->node assignment;
4. re-run with the optimized placement and compare faults, remote
   traffic and execution time.

Run:  python examples/thread_placement.py
"""

from repro import DJVM, ProfilerSuite
from repro.placement import greedy_partition, partition_quality, refine_partition
from repro.workloads import BarnesHutWorkload

N_NODES = 8
N_THREADS = 16


def make_workload() -> BarnesHutWorkload:
    return BarnesHutWorkload(n_bodies=1024, rounds=3, n_threads=N_THREADS, seed=7)


def run_with(placement, profile: bool):
    workload = make_workload()
    djvm = DJVM(n_nodes=N_NODES)
    workload.build(djvm, placement=placement)
    suite = None
    if profile:
        suite = ProfilerSuite(djvm, correlation=True)
        suite.set_rate_all(4)
    result = djvm.run(workload.programs())
    return workload, djvm, result, suite


def main() -> None:
    # --- 1+2: profile under a galaxy-blind placement -----------------------
    print("phase 1: profiling run (round-robin placement, 4X sampling)")
    workload, djvm, before, suite = run_with("round_robin", profile=True)
    tcm = suite.tcm()
    print(f"  {before.summary()}")

    # --- 3: derive a placement from the TCM ---------------------------------
    assignment = refine_partition(tcm, greedy_partition(tcm, N_NODES))
    quality = partition_quality(tcm, assignment)
    print("\nphase 2: partitioning the correlation map")
    print(f"  derived assignment: {assignment}")
    print(f"  predicted local sharing fraction: {quality['local_fraction'] * 100:.1f}%")

    baseline_quality = partition_quality(
        tcm, [t % N_NODES for t in range(N_THREADS)]
    )
    print(f"  (round-robin was {baseline_quality['local_fraction'] * 100:.1f}%)")

    # --- 4: rerun with the optimized placement ------------------------------
    print("\nphase 3: re-running with the optimized placement (no profiling)")
    _, _, after, _ = run_with(assignment, profile=False)
    _, _, blind, _ = run_with("round_robin", profile=False)

    def row(label, res):
        print(
            f"  {label:<22} exec {res.execution_time_ms:9.1f} ms | "
            f"faults {res.counters['faults']:6d} | "
            f"remote traffic {res.traffic.gos_bytes / 1024:8.0f} KB"
        )

    row("round-robin (blind):", blind)
    row("correlation-aware:", after)
    saved = 1 - after.traffic.gos_bytes / blind.traffic.gos_bytes
    speedup = blind.execution_time_ms / after.execution_time_ms
    print(f"\n  remote traffic cut by {saved * 100:.1f}%, "
          f"execution {speedup:.2f}x faster — from a profile that cost "
          f"{before.total_cpu.profiling_ns / 1e6:.1f} ms of CPU.")


if __name__ == "__main__":
    main()
