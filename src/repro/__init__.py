"""repro — reproduction of *Adaptive Sampling-Based Profiling Techniques
for Optimizing the Distributed JVM Runtime* (Lam, Luo & Wang, IPDPS 2010).

The package simulates a JESSICA2-style distributed JVM — cluster, global
object space under home-based lazy release consistency, Java threads
with stacks, thread migration — and implements the paper's two adaptive
sampling-based profilers on top:

* fine-grained active **correlation tracking** via adaptive class-level
  object sampling (thread correlation maps), and
* **sticky-set profiling** via repeated object sampling plus adaptive
  stack sampling (migration cost modeling and prefetch resolution).

Quickstart::

    from repro import DJVM, ProfilerSuite
    from repro.workloads import SORWorkload

    wl = SORWorkload(n=256, rounds=4, n_threads=8)
    djvm = DJVM(n_nodes=8)
    wl.build(djvm)
    suite = ProfilerSuite(djvm)
    suite.set_rate_all(4)
    result = djvm.run(wl.programs())
    print(result.summary())
    tcm = suite.tcm()
"""

from repro._version import __version__
from repro.sim import Cluster, CostModel, Network
from repro.heap import GlobalObjectSpace, JClass
from repro.dsm import HomeBasedLRC
from repro.runtime import DJVM, MigrationEngine, MigrationPlan, ProgramBuilder, RunResult, SimThread
from repro.core import (
    AccessProfiler,
    AdaptiveRateController,
    CorrelationCollector,
    MigrationCostModel,
    OfflineRateSearch,
    ProfilerSuite,
    SamplingPolicy,
    StackSampler,
    StickySetFootprinter,
    absolute_error,
    accuracy,
    build_tcm,
    euclidean_error,
    resolve_sticky_set,
)

__all__ = [
    "__version__",
    "Cluster",
    "CostModel",
    "Network",
    "GlobalObjectSpace",
    "JClass",
    "HomeBasedLRC",
    "DJVM",
    "MigrationEngine",
    "MigrationPlan",
    "ProgramBuilder",
    "RunResult",
    "SimThread",
    "AccessProfiler",
    "AdaptiveRateController",
    "CorrelationCollector",
    "MigrationCostModel",
    "OfflineRateSearch",
    "ProfilerSuite",
    "SamplingPolicy",
    "StackSampler",
    "StickySetFootprinter",
    "absolute_error",
    "accuracy",
    "build_tcm",
    "euclidean_error",
    "resolve_sticky_set",
]
