"""Command-line interface: ``python -m repro``.

Subcommands:

* ``demo`` — the quickstart in one command: run a workload with the
  correlation profiler and print the TCM heatmap and cost summary.
* ``run`` — run one of the paper's workloads with chosen profilers and
  print the paper-style summary.
* ``experiments`` — list the reproduced tables/figures and the pytest
  commands that regenerate them.
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__

WORKLOADS = ("sor", "barnes-hut", "water-spatial", "fft", "group-sharing")


def make_workload(name: str, n_threads: int, seed: int):
    """Construct a CLI workload by name at demo scale."""
    from repro.workloads import (
        BarnesHutWorkload,
        FFTWorkload,
        GroupSharingWorkload,
        SORWorkload,
        WaterSpatialWorkload,
    )

    if name == "sor":
        return SORWorkload(n=1024, rounds=4, n_threads=n_threads, seed=seed)
    if name == "barnes-hut":
        return BarnesHutWorkload(n_bodies=1024, rounds=3, n_threads=n_threads, seed=seed)
    if name == "water-spatial":
        return WaterSpatialWorkload(n_molecules=384, rounds=3, n_threads=n_threads, seed=seed)
    if name == "fft":
        return FFTWorkload(n_points=16384, rounds=3, n_threads=n_threads, seed=seed)
    if name == "group-sharing":
        return GroupSharingWorkload(n_threads=n_threads, group_size=2, rounds=4, seed=seed)
    raise ValueError(f"unknown workload {name!r}; pick one of {WORKLOADS}")


def cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: execute one workload with chosen profilers."""
    from repro import DJVM, ProfilerSuite
    from repro.analysis.heatmap import render_heatmap

    workload = make_workload(args.workload, args.threads, args.seed)
    djvm = DJVM(n_nodes=args.nodes)
    workload.build(djvm)
    suite = ProfilerSuite(
        djvm,
        correlation=not args.no_correlation,
        stack=args.sticky,
        footprint=args.sticky,
    )
    rate: float | str = "full" if args.rate == "full" else float(args.rate)
    suite.set_rate_all(rate)
    spec = workload.spec()
    print(
        f"{spec.name} ({spec.data_set}, {spec.rounds} rounds) on "
        f"{args.nodes} nodes / {args.threads} threads, sampling {args.rate}X"
    )
    result = djvm.run(workload.programs())
    print(result.summary())
    if not args.no_correlation:
        print()
        print(render_heatmap(suite.tcm(), width=min(args.threads, 32),
                             title="thread correlation map:"))
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: the Barnes-Hut quickstart in one command."""
    args.workload = "barnes-hut"
    args.no_correlation = False
    args.sticky = False
    args.rate = "4"
    return cmd_run(args)


def cmd_experiments(_args: argparse.Namespace) -> int:
    """``repro experiments``: list the reproduced tables/figures."""
    rows = [
        ("Fig. 1", "inherent vs induced correlation maps", "bench_fig1_false_sharing.py"),
        ("Table I", "benchmark characteristics", "bench_table1_characteristics.py"),
        ("Table II", "OAL collection overhead", "bench_table2_oal_collection.py"),
        ("Table III", "tracking overheads (exec/volume/TCM)", "bench_table3_tracking_overheads.py"),
        ("Fig. 9", "sampling accuracy curves", "bench_fig9_accuracy.py"),
        ("Table IV", "sticky-set footprint accuracy", "bench_table4_ss_accuracy.py"),
        ("Table V", "sticky-set profiling overhead", "bench_table5_ss_overhead.py"),
        ("ablation", "prime vs composite gaps", "bench_ablation_prime_gaps.py"),
        ("ablation", "array amortization vs naive", "bench_ablation_array_amortization.py"),
        ("ablation", "ABS vs EUC controller signal", "bench_ablation_distance_metric.py"),
        ("ablation", "landmark-guided resolution", "bench_ablation_landmarks.py"),
        ("extension", "distributed TCM computation", "bench_ext_distributed_tcm.py"),
        ("extension", "online load balancing + home migration", "bench_ext_load_balancing.py"),
    ]
    width = max(len(r[0]) for r in rows)
    for exp, desc, bench in rows:
        print(f"{exp:<{width}}  {desc:<42} pytest benchmarks/{bench} --benchmark-only")
    print("\nall at once:  pytest benchmarks/ --benchmark-only")
    print("paper scale:  REPRO_PAPER_SCALE=1 pytest benchmarks/ --benchmark-only")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Adaptive Sampling-Based Profiling "
        "Techniques for Optimizing the Distributed JVM Runtime' (IPDPS 2010).",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="one-command Barnes-Hut profiling demo")
    demo.add_argument("--nodes", type=int, default=8)
    demo.add_argument("--threads", type=int, default=16)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_demo)

    run = sub.add_parser("run", help="run a workload with chosen profilers")
    run.add_argument("workload", choices=WORKLOADS)
    run.add_argument("--nodes", type=int, default=8)
    run.add_argument("--threads", type=int, default=16)
    run.add_argument("--rate", default="4", help="sampling rate nX, or 'full'")
    run.add_argument("--sticky", action="store_true",
                     help="enable stack sampling + sticky-set footprinting")
    run.add_argument("--no-correlation", action="store_true",
                     help="disable correlation tracking")
    run.add_argument("--seed", type=int, default=0)
    run.set_defaults(func=cmd_run)

    exp = sub.add_parser("experiments", help="list reproduced tables/figures")
    exp.set_defaults(func=cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
