"""Reporting and experiment drivers: paper-style table rendering, text
correlation-map heatmaps (Fig. 1 style), and the reusable experiment
harnesses the benchmark suite calls into."""

from repro.analysis.heatmap import render_heatmap
from repro.analysis.report import Table, format_overhead, format_pct
from repro.analysis.trace import ProfileTrace, record_trace
from repro.analysis import experiments, svgplot

__all__ = [
    "render_heatmap",
    "Table",
    "format_overhead",
    "format_pct",
    "ProfileTrace",
    "record_trace",
    "experiments",
    "svgplot",
]
