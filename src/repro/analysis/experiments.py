"""Reusable experiment drivers shared by the benchmark suite, examples
and integration tests.

The accuracy experiments exploit a determinism the real system also has:
whether an object is sampled at a given rate depends only on its
immutable identity (sequence number and class for the prime-gap scheme,
object id for the stateless backends) — not on timing — so the OAL
stream at any rate *under any backend* is a filter of the full-sampling
OAL stream.  One profiled run at full sampling therefore yields the TCM
at every rate and backend (:func:`tcm_at_rate`), exactly as a re-run at
that configuration would produce, at a fraction of the cost.  Overhead experiments, whose point is the
cost accounting itself, re-run per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.accuracy import accuracy
from repro.core.oal import OALBatch
from repro.core.profiler import ProfilerSuite
from repro.core.sampling import SamplingPolicy
from repro.core.tcm import build_tcm
from repro.dsm.pagedsm import PageGrainTracker
from repro.heap.heap import GlobalObjectSpace
from repro.heap.pages import PageMap
from repro.runtime.djvm import DJVM, RunResult
from repro.sim.costs import CostModel
from repro.workloads.base import Workload

#: the Fig. 9 rate ladder, finest to coarsest as plotted.
FIG9_RATES: tuple[float, ...] = (512, 256, 128, 64, 32, 16, 8, 4, 2, 1)


@dataclass
class ProfiledRun:
    """One simulated execution plus its attached profiling machinery."""

    workload: Workload
    djvm: DJVM
    result: RunResult
    suite: ProfilerSuite | None = None
    page_tracker: PageGrainTracker | None = None


def build_djvm(
    workload: Workload,
    n_nodes: int,
    *,
    costs: CostModel | None = None,
    placement: str = "block",
    telemetry=None,
    objprof: bool = False,
) -> DJVM:
    """Boot a DJVM and build the workload on it."""
    djvm = DJVM(n_nodes=n_nodes, costs=costs, telemetry=telemetry, objprof=objprof)
    workload.build(djvm, placement=placement)
    return djvm


def run_baseline(
    workload_factory: Callable[[], Workload],
    n_nodes: int,
    *,
    costs: CostModel | None = None,
    telemetry=None,
) -> ProfiledRun:
    """Run a workload with every profiler disabled ("No Correl. Tracking")."""
    workload = workload_factory()
    djvm = build_djvm(workload, n_nodes, costs=costs, telemetry=telemetry)
    result = djvm.run(workload.programs())
    return ProfiledRun(workload=workload, djvm=djvm, result=result)


def run_with_correlation(
    workload_factory: Callable[[], Workload],
    n_nodes: int,
    rate: float | str,
    *,
    send_oals: bool = True,
    piggyback: bool = True,
    costs: CostModel | None = None,
    telemetry=None,
    sampling_backend=None,
    objprof: bool = False,
) -> ProfiledRun:
    """Run with correlation tracking at one sampling rate (optionally
    under a non-default sampling backend, optionally with the
    object-centric inefficiency profiler attached)."""
    workload = workload_factory()
    djvm = build_djvm(workload, n_nodes, costs=costs, telemetry=telemetry, objprof=objprof)
    suite = ProfilerSuite(
        djvm,
        correlation=True,
        send_oals=send_oals,
        piggyback=piggyback,
        sampling_backend=sampling_backend,
    )
    suite.set_rate_all(rate)
    result = djvm.run(workload.programs())
    return ProfiledRun(workload=workload, djvm=djvm, result=result, suite=suite)


def run_with_sticky_profiling(
    workload_factory: Callable[[], Workload],
    n_nodes: int,
    *,
    rate: float | str = 4,
    stack: bool = True,
    footprint: bool = True,
    stack_gap_ms: float = 16.0,
    lazy_extraction: bool = True,
    footprint_timer_ms: float | None = None,
    costs: CostModel | None = None,
    telemetry=None,
) -> ProfiledRun:
    """Run with sticky-set profiling (stack sampling and/or footprinting)
    and correlation tracking disabled — the paper's isolation methodology
    for the Table V overhead columns."""
    workload = workload_factory()
    djvm = build_djvm(workload, n_nodes, costs=costs, telemetry=telemetry)
    suite = ProfilerSuite(
        djvm,
        correlation=False,
        stack=stack,
        footprint=footprint,
        stack_gap_ms=stack_gap_ms,
        lazy_extraction=lazy_extraction,
        footprint_timer_ms=footprint_timer_ms,
    )
    suite.set_rate_all(rate)
    result = djvm.run(workload.programs())
    return ProfiledRun(workload=workload, djvm=djvm, result=result, suite=suite)


# ---------------------------------------------------------------------------
# offline per-rate TCMs from one full-sampling run
# ---------------------------------------------------------------------------


def collect_full_batches(
    workload_factory: Callable[[], Workload],
    n_nodes: int,
    *,
    costs: CostModel | None = None,
) -> tuple[list[OALBatch], GlobalObjectSpace, int, ProfiledRun]:
    """One profiled run at full sampling; returns its OAL batches."""
    workload = workload_factory()
    djvm = build_djvm(workload, n_nodes, costs=costs)
    suite = ProfilerSuite(djvm, correlation=True, send_oals=False)
    suite.set_full_sampling()
    batches: list[OALBatch] = []
    original = suite.collector

    class _Recorder:
        """Tees delivered batches into a list while still feeding the
        suite's real collector (so ``suite.tcm()`` keeps working)."""

        gos = djvm.gos

        @staticmethod
        def deliver(batch: OALBatch, *, now_ns: int | None = None) -> None:
            batches.append(batch)
            original.deliver(batch, now_ns=now_ns)

    assert suite.access_profiler is not None
    suite.access_profiler.collector = _Recorder()
    result = djvm.run(workload.programs())
    run = ProfiledRun(workload=workload, djvm=djvm, result=result, suite=suite)
    return batches, djvm.gos, len(djvm.threads), run


def tcm_at_rate(
    batches: Sequence[OALBatch],
    gos: GlobalObjectSpace,
    n_threads: int,
    rate: float | str,
    *,
    page_size: int = 4096,
    use_prime_gaps: bool = True,
    backend=None,
) -> np.ndarray:
    """The TCM a run at ``rate`` would produce, computed by filtering the
    full-sampling OAL stream through that rate's sampling policy (under
    any decision ``backend`` — decisions are pure functions of object
    identity for every backend, so the filter is exact)."""
    policy = SamplingPolicy(
        page_size=page_size, use_prime_gaps=use_prime_gaps, backend=backend
    )
    for st in gos.registry:
        policy.set_rate(st, rate)

    def gen():
        for batch in batches:
            for entry in batch.entries:
                obj = gos.get(entry.obj_id)
                if policy.is_sampled(obj):
                    yield batch.thread_id, entry.obj_id, policy.scaled_bytes(obj)

    return build_tcm(gen(), n_threads)


@dataclass
class AccuracyCurves:
    """Fig. 9 data for one workload: accuracy per rate per metric."""

    rates: list[float]
    absolute_abs: list[float]
    absolute_euc: list[float]
    relative_abs: list[float]
    relative_euc: list[float]


def accuracy_curves(
    workload_factory: Callable[[], Workload],
    n_nodes: int,
    *,
    rates: Sequence[float] = FIG9_RATES,
    costs: CostModel | None = None,
    use_prime_gaps: bool = True,
) -> AccuracyCurves:
    """Reproduce one Fig. 9 panel: absolute accuracy (vs the full-sampling
    map) and relative accuracy (vs the next finer rate) under both
    distance metrics, for every rate on the ladder (finest first)."""
    batches, gos, n_threads, _run = collect_full_batches(
        workload_factory, n_nodes, costs=costs
    )
    full = tcm_at_rate(batches, gos, n_threads, "full", use_prime_gaps=use_prime_gaps)
    maps = {
        r: tcm_at_rate(batches, gos, n_threads, r, use_prime_gaps=use_prime_gaps)
        for r in rates
    }
    curves = AccuracyCurves([], [], [], [], [])
    finer: np.ndarray = full
    for r in rates:  # finest -> coarsest, as the paper's x-axis runs
        tcm = maps[r]
        curves.rates.append(r)
        curves.absolute_abs.append(accuracy(tcm, full, "abs"))
        curves.absolute_euc.append(accuracy(tcm, full, "euc"))
        curves.relative_abs.append(accuracy(tcm, finer, "abs"))
        curves.relative_euc.append(accuracy(tcm, finer, "euc"))
        finer = tcm
    return curves


# ---------------------------------------------------------------------------
# Fig. 1: inherent vs induced correlation maps
# ---------------------------------------------------------------------------


@dataclass
class FalseSharingMaps:
    """Fig. 1 data: the same run observed at two granularities."""

    inherent: np.ndarray
    induced: np.ndarray
    false_sharing_degree: float


def false_sharing_maps(
    workload_factory: Callable[[], Workload],
    n_nodes: int,
    *,
    page_size: int = 4096,
    costs: CostModel | None = None,
) -> FalseSharingMaps:
    """One run observed simultaneously at object grain (inherent map,
    full sampling) and page grain (induced map, D-CVM style)."""
    workload = workload_factory()
    djvm = build_djvm(workload, n_nodes, costs=costs)
    suite = ProfilerSuite(djvm, correlation=True, send_oals=False)
    suite.set_full_sampling()
    pagemap = PageMap(page_size=page_size)
    pagemap.place_all(djvm.gos)
    tracker = PageGrainTracker(pagemap)
    djvm.add_hook(tracker)
    djvm.run(workload.programs())
    # Late-allocated objects (none today, but workloads may change) are
    # placed lazily by the tracker only if present in the page map; make
    # sure everything is placed for the induced map.
    inherent = suite.tcm()
    induced = build_tcm(tracker.induced_entries(), len(djvm.threads))
    return FalseSharingMaps(
        inherent=inherent,
        induced=induced,
        false_sharing_degree=tracker.false_sharing_degree(),
    )
