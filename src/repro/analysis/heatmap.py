"""Text rendering of correlation maps (the Fig. 1 comparison medium).

A TCM renders as a character grid: darker glyphs = more shared bytes,
normalized to the map's own peak.  Block structure (e.g. Barnes-Hut's
two galaxies) is visible at a glance in the inherent map and washed out
in the page-induced one.
"""

from __future__ import annotations

import numpy as np

#: glyph ramp, light to dark.
RAMP = " .:-=+*#%@"


def render_heatmap(tcm: np.ndarray, *, width: int | None = None, title: str | None = None) -> str:
    """Render a square matrix as an ASCII heatmap.

    ``width`` downsamples to at most that many columns (block-averaged)
    so 32-thread maps still fit a terminal.
    """
    m = np.asarray(tcm, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {m.shape}")
    n = m.shape[0]
    if width is not None and 0 < width < n:
        # Block-average downsample.
        edges = np.linspace(0, n, width + 1).astype(int)
        small = np.empty((width, width))
        for i in range(width):
            for j in range(width):
                block = m[edges[i] : edges[i + 1], edges[j] : edges[j + 1]]
                small[i, j] = block.mean() if block.size else 0.0
        m = small
        n = width
    peak = m.max()
    lines = []
    if title:
        lines.append(title)
    if peak <= 0:
        lines.extend("".join(RAMP[0] for _ in range(n)) for _ in range(n))
        return "\n".join(lines)
    scaled = np.clip(m / peak, 0.0, 1.0)
    idx = np.minimum((scaled * len(RAMP)).astype(int), len(RAMP) - 1)
    for i in range(n):
        lines.append("".join(RAMP[idx[i, j]] for j in range(n)))
    return "\n".join(lines)


def block_contrast(tcm: np.ndarray, groups: list[int]) -> float:
    """Mean intra-group cell over mean inter-group cell (diagonal
    excluded) — a scalar for "how visible is the block structure".
    Returns ``inf`` when there is intra-group sharing but zero
    inter-group sharing."""
    m = np.asarray(tcm, dtype=np.float64)
    n = m.shape[0]
    if len(groups) != n:
        raise ValueError(f"groups length {len(groups)} != matrix size {n}")
    intra, inter = [], []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            (intra if groups[i] == groups[j] else inter).append(m[i, j])
    mean_intra = float(np.mean(intra)) if intra else 0.0
    mean_inter = float(np.mean(inter)) if inter else 0.0
    if mean_inter == 0.0:
        return float("inf") if mean_intra > 0 else 1.0
    return mean_intra / mean_inter
