"""The paper's published numbers, transcribed for side-by-side reporting.

Each benchmark regenerates a table/figure and prints the corresponding
published row next to the measured one; EXPERIMENTS.md is the curated
record.  Values are from Lam, Luo & Wang, IPDPS 2010 (tables as printed;
the Table IV/V captions follow the PDF's table headers, which are
swapped relative to the body text's references).
"""

from __future__ import annotations

#: Table I — benchmark characteristics.
TABLE1 = {
    "SOR": {
        "data_set": "2K x 2K",
        "rounds": 10,
        "granularity": "Coarse",
        "object_size": "each row at least several KB",
    },
    "Barnes-Hut": {
        "data_set": "4K bodies",
        "rounds": 5,
        "granularity": "Fine",
        "object_size": "each body less than 100 bytes",
    },
    "Water-Spatial": {
        "data_set": "512 molecules",
        "rounds": 5,
        "granularity": "Medium",
        "object_size": "each molecule about 512 bytes",
    },
}

#: Table II — OAL collection overhead (single thread, no OAL transfer).
#: exec time ms; overhead % relative to "no correlation tracking".
TABLE2 = {
    "SOR": {"baseline_ms": 24250, "overhead_pct": {"full": 0.45}},
    "Barnes-Hut": {
        "baseline_ms": 53250,
        "overhead_pct": {1: -1.15, 4: -0.96, 16: 0.20, "full": 1.12},
    },
    "Water-Spatial": {
        "baseline_ms": 29461,
        "overhead_pct": {1: 0.15, 4: 0.28, "full": 0.87},
    },
}

#: Table III — correlation tracking overheads (8 nodes x 1 thread).
TABLE3 = {
    "SOR": {
        "baseline_ms": 3954,
        "exec_overhead_pct": {"full": 2.04},
        "gos_volume_kb": 4491,
        "oal_volume_pct": {"full": 22.05},
        "tcm_ms": {"full": 870},
    },
    "Barnes-Hut": {
        "baseline_ms": 19557,
        "exec_overhead_pct": {1: -0.67, 4: 0.79, 16: 1.36, "full": 6.38},
        "gos_volume_kb": 60130,
        "oal_volume_pct": {1: 0.23, 4: 0.87, 16: 3.84, "full": 13.82},
        "tcm_ms": {1: 1568, 4: 1683, 16: 2327, "full": 4609},
    },
    "Water-Spatial": {
        "baseline_ms": 7942,
        "exec_overhead_pct": {1: 3.07, 4: 3.90, "full": 5.01},
        "gos_volume_kb": 31240,
        "oal_volume_pct": {1: 2.65, 4: 2.81, "full": 8.29},
        "tcm_ms": {1: 323, 4: 347, "full": 749},
    },
}

#: Fig. 9 — headline claims: accuracy >= ~95% at almost every rate, the
#: ABS metric more stable than EUC, relative ~ absolute.
FIG9_MIN_ACCURACY_AT_4X = 0.95

#: Table IV (caption: "accuracy of sticky-set footprint"; 8 threads, 4X).
TABLE4 = {
    "SOR": {"double[]": {"full_bytes": 2018016, "accuracy_pct": 100.00}},
    "Barnes-Hut": {
        "Body": {"full_bytes": 229376, "accuracy_pct": 99.71},
        "Body[]": {"full_bytes": 47264, "accuracy_pct": 93.42},
        "Leaf": {"full_bytes": 76804, "accuracy_pct": 99.86},
        "Vect3": {"full_bytes": 130627, "accuracy_pct": 92.76},
    },
    "Water-Spatial": {"double[]": {"full_bytes": 43032, "accuracy_pct": 98.82}},
}

#: Table V (caption: "overhead of sticky-set footprint profiling";
#: single thread).  Percentages over each benchmark's baseline.
TABLE5 = {
    "SOR": {
        "baseline_ms": 6201,
        "stack_pct": {("immediate", 4): 0.24, ("immediate", 16): 0.10,
                      ("lazy", 4): 0.17, ("lazy", 16): 0.08},
        "footprint_pct": {("nonstop", 4): 8.28, ("nonstop", "full"): 8.17,
                          ("timer", 4): 5.13, ("timer", "full"): 4.50},
        "resolution_pct": 1.85,
    },
    "Barnes-Hut": {
        "baseline_ms": 93857,
        "stack_pct": {("immediate", 4): 1.16, ("immediate", 16): 0.85,
                      ("lazy", 4): 0.89, ("lazy", 16): 1.44},
        "footprint_pct": {("nonstop", 4): 5.45, ("nonstop", "full"): 8.88,
                          ("timer", 4): -0.22, ("timer", "full"): 9.03},
        "resolution_pct": 4.20,
    },
    "Water-Spatial": {
        "baseline_ms": 59105,
        "stack_pct": {("immediate", 4): 0.21, ("immediate", 16): 0.09,
                      ("lazy", 4): 0.17, ("lazy", 16): 0.03},
        "footprint_pct": {("nonstop", 4): 1.23, ("nonstop", "full"): 4.87,
                          ("timer", 4): 0.67, ("timer", "full"): 2.04},
        "resolution_pct": 0.84,
    },
}

#: Fig. 1 configuration (Barnes-Hut inherent vs induced maps).
FIG1 = {"threads": 32, "bodies": 4096, "distance": 7.0}
