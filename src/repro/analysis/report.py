"""Paper-style table rendering.

The benchmark harness prints rows in the same shape as the paper's
tables (execution time with percentage overhead in parentheses, message
volumes with percentage of GOS traffic, ...), so EXPERIMENTS.md entries
can be compared against the published rows line by line.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_pct(value: float, *, signed: bool = True) -> str:
    """Format a fraction as the paper's parenthetical percentage."""
    pct = value * 100.0
    if signed:
        return f"({pct:+.2f}%)".replace("+", "") if pct >= 0 else f"({pct:.2f}%)"
    return f"({pct:.2f}%)"


def format_overhead(base_ms: float, measured_ms: float) -> str:
    """"measured (overhead%)" — the paper's execution-time cell format."""
    if base_ms <= 0:
        return f"{measured_ms:.0f} (n/a)"
    pct = (measured_ms - base_ms) / base_ms
    return f"{measured_ms:.0f} {format_pct(pct)}"


@dataclass
class Table:
    """A minimal fixed-width text table."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row (cell count must match the columns)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """Render the table as aligned text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: list[str]) -> str:
            return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, fmt(self.columns), sep]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
