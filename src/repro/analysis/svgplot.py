"""Dependency-free SVG rendering for the paper's figures.

The execution environment is offline (no matplotlib), but the
reproduction should still ship *figures*, not just tables — Fig. 9 is a
line chart and Fig. 1 a pair of heatmaps.  This module renders both as
standalone SVG documents using nothing but string assembly.

Only what the figures need is implemented: categorical-x line charts
with a legend, and square matrix heatmaps with a monochrome ramp.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

#: categorical line colors (colorblind-safe-ish).
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7", "#56B4E9", "#E69F00")
DASHES = ("", "6,3", "2,2", "8,3,2,3")


def _esc(text: str) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def line_chart(
    series: dict[str, Sequence[float]],
    x_labels: Sequence[str],
    *,
    title: str = "",
    y_label: str = "",
    y_range: tuple[float, float] = (0.0, 1.0),
    width: int = 640,
    height: int = 400,
) -> str:
    """Render a categorical-x line chart (the Fig. 9 shape) as SVG.

    ``series`` maps legend label -> y values (one per ``x_labels`` entry);
    ``y_range`` fixes the y axis (the paper plots 50-100%).
    """
    if not series:
        raise ValueError("need at least one series")
    n = len(x_labels)
    for label, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {label!r} has {len(ys)} points for {n} labels")
    lo, hi = y_range
    if not hi > lo:
        raise ValueError(f"invalid y range {y_range}")

    margin_l, margin_r, margin_t, margin_b = 60, 160, 40, 50
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    def sx(i: int) -> float:
        return margin_l + (plot_w * i / max(n - 1, 1))

    def sy(v: float) -> float:
        frac = (min(max(v, lo), hi) - lo) / (hi - lo)
        return margin_t + plot_h * (1 - frac)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{_esc(title)}</text>'
        )
    # Axes box + horizontal gridlines with y tick labels.
    parts.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333"/>'
    )
    for k in range(5 + 1):
        v = lo + (hi - lo) * k / 5
        y = sy(v)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" text-anchor="end">'
            f"{v * 100:.0f}%</text>"
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{margin_t + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {margin_t + plot_h / 2})">{_esc(y_label)}</text>'
        )
    # X tick labels.
    for i, label in enumerate(x_labels):
        parts.append(
            f'<text x="{sx(i):.1f}" y="{margin_t + plot_h + 18}" '
            f'text-anchor="middle">{_esc(label)}</text>'
        )
    # Series + legend.
    for idx, (label, ys) in enumerate(series.items()):
        color = PALETTE[idx % len(PALETTE)]
        dash = DASHES[idx % len(DASHES)]
        points = " ".join(f"{sx(i):.1f},{sy(v):.1f}" for i, v in enumerate(ys))
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="2"{dash_attr}/>'
        )
        for i, v in enumerate(ys):
            parts.append(
                f'<circle cx="{sx(i):.1f}" cy="{sy(v):.1f}" r="2.5" fill="{color}"/>'
            )
        ly = margin_t + 16 + idx * 18
        lx = margin_l + plot_w + 12
        parts.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 24}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"{dash_attr}/>'
        )
        parts.append(f'<text x="{lx + 30}" y="{ly}">{_esc(label)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def heatmap(
    matrix: np.ndarray,
    *,
    title: str = "",
    cell: int = 12,
    gap: int = 1,
) -> str:
    """Render a square matrix as an SVG heatmap (Fig. 1 shape), darker =
    larger, normalized to the matrix peak."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {m.shape}")
    n = m.shape[0]
    peak = float(m.max())
    size = n * (cell + gap) + gap
    title_h = 26 if title else 0
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size + title_h}" font-family="sans-serif" font-size="12">',
        f'<rect width="{size}" height="{size + title_h}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{size / 2}" y="16" text-anchor="middle" '
            f'font-weight="bold">{_esc(title)}</text>'
        )
    for i in range(n):
        for j in range(n):
            frac = 0.0 if peak <= 0 else float(m[i, j]) / peak
            shade = int(round(255 * (1 - frac)))
            color = f"rgb({shade},{shade},{shade})"
            x = gap + j * (cell + gap)
            y = title_h + gap + i * (cell + gap)
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" fill="{color}"/>'
            )
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: str | Path) -> Path:
    """Write an SVG document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg)
    return path
