"""Profile trace recording and offline replay.

A real profiling deployment separates *collection* (cheap, online) from
*analysis* (arbitrary, offline).  This module serializes everything the
online profiler gathers — OAL batches, the class registry and object
metadata needed to re-evaluate sampling decisions — into a compact JSON
document, and replays it offline:

* recompute the TCM at **any** sampling rate without re-running the
  simulation (the same determinism the accuracy sweep exploits),
* re-run the adaptive controller against recorded windows,
* diff two traces (did the sharing pattern drift between runs?).

Format: a single JSON object, gzip-compressed when the path ends in
``.gz``.  Versioned for forward compatibility.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.oal import OALBatch
from repro.core.sampling import SamplingPolicy
from repro.core.tcm import build_tcm
from repro.heap.heap import GlobalObjectSpace

FORMAT_VERSION = 1


@dataclass
class ProfileTrace:
    """A recorded profiling session, sufficient for offline re-analysis."""

    n_threads: int
    page_size: int
    #: class metadata: class_id -> (name, instance_size, is_array, element_size)
    classes: dict[int, tuple[str, int, bool, int]]
    #: per-object metadata: obj_id -> (class_id, seq, length)
    objects: dict[int, tuple[int, int, int]]
    #: recorded OAL batches (full-sampling logs).
    batches: list[OALBatch]

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        gos: GlobalObjectSpace,
        batches: Iterable[OALBatch],
        n_threads: int,
        *,
        page_size: int = 4096,
    ) -> "ProfileTrace":
        """Build a trace from a run's OAL batches, keeping metadata only
        for objects that actually appear in the log."""
        batches = list(batches)
        needed: set[int] = set()
        for batch in batches:
            for entry in batch.entries:
                needed.add(entry.obj_id)
        objects = {}
        class_ids: set[int] = set()
        for obj_id in sorted(needed):
            obj = gos.get(obj_id)
            objects[obj_id] = (obj.jclass.class_id, obj.seq, obj.length)
            class_ids.add(obj.jclass.class_id)
        classes = {}
        for cid in sorted(class_ids):
            jc = gos.registry.by_id(cid)
            classes[cid] = (jc.name, jc.instance_size, jc.is_array, jc.element_size)
        return cls(
            n_threads=n_threads,
            page_size=page_size,
            classes=classes,
            objects=objects,
            batches=batches,
        )

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation."""
        return {
            "format_version": FORMAT_VERSION,
            "n_threads": self.n_threads,
            "page_size": self.page_size,
            "classes": {
                str(cid): list(meta) for cid, meta in self.classes.items()
            },
            "objects": {
                str(oid): list(meta) for oid, meta in self.objects.items()
            },
            "batches": [
                {
                    "thread": b.thread_id,
                    "interval": b.interval_id,
                    "start_pc": b.start_pc,
                    "end_pc": b.end_pc,
                    "entries": [[e.obj_id, e.scaled_bytes, e.class_id] for e in b.entries],
                }
                for b in self.batches
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileTrace":
        """Inverse of :meth:`to_dict`; validates the format version."""
        version = data.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version!r} "
                f"(this build reads {FORMAT_VERSION})"
            )
        batches = []
        for raw in data["batches"]:
            batch = OALBatch(
                thread_id=raw["thread"],
                interval_id=raw["interval"],
                start_pc=raw.get("start_pc", 0),
                end_pc=raw.get("end_pc", 0),
            )
            for obj_id, scaled, class_id in raw["entries"]:
                batch.add(obj_id, scaled, class_id)
            batches.append(batch)
        return cls(
            n_threads=data["n_threads"],
            page_size=data["page_size"],
            classes={int(k): tuple(v) for k, v in data["classes"].items()},
            objects={int(k): tuple(v) for k, v in data["objects"].items()},
            batches=batches,
        )

    def save(self, path: str | Path) -> None:
        """Write the trace (gzip-compressed for ``.gz`` paths)."""
        path = Path(path)
        payload = json.dumps(self.to_dict(), separators=(",", ":"))
        if path.suffix == ".gz":
            path.write_bytes(gzip.compress(payload.encode()))
        else:
            path.write_text(payload)

    @classmethod
    def load(cls, path: str | Path) -> "ProfileTrace":
        """Read a trace written by :meth:`save`."""
        path = Path(path)
        if path.suffix == ".gz":
            payload = gzip.decompress(path.read_bytes()).decode()
        else:
            payload = path.read_text()
        return cls.from_dict(json.loads(payload))

    # ------------------------------------------------------------------
    # offline analysis
    # ------------------------------------------------------------------

    def _rebuild_policy(
        self, rate: float | str, backend=None
    ) -> tuple[SamplingPolicy, GlobalObjectSpace]:
        """Reconstruct a registry/GOS skeleton carrying the recorded
        sequence numbers, and a policy at the requested rate (optionally
        under a non-default sampling backend)."""
        gos = GlobalObjectSpace()
        id_map = {}
        for cid, (name, inst, is_array, elem) in sorted(self.classes.items()):
            jc = gos.registry.define(name, inst, is_array=is_array, element_size=elem)
            id_map[cid] = jc
        policy = SamplingPolicy(page_size=self.page_size, backend=backend)
        for jc in id_map.values():
            policy.set_rate(jc, rate)
        return policy, gos, id_map  # type: ignore[return-value]

    def tcm_at_rate(self, rate: float | str, *, backend=None) -> np.ndarray:
        """The TCM a run at ``rate`` would have produced, replayed from
        the recorded full-sampling log.  ``backend`` substitutes a
        non-default sampling backend; decisions are pure functions of
        the recorded object identities, so the replay stays exact."""
        from repro.heap.objects import HeapObject

        policy, gos, id_map = self._rebuild_policy(rate, backend)  # type: ignore[misc]

        def entries():
            cache: dict[int, HeapObject] = {}
            for batch in self.batches:
                for e in batch.entries:
                    obj = cache.get(e.obj_id)
                    if obj is None:
                        cid, seq, length = self.objects[e.obj_id]
                        obj = HeapObject(
                            obj_id=e.obj_id,
                            jclass=id_map[cid],
                            seq=seq,
                            home_node=0,
                            length=length,
                        )
                        cache[e.obj_id] = obj
                    if policy.is_sampled(obj):
                        yield batch.thread_id, e.obj_id, policy.scaled_bytes(obj)

        return build_tcm(entries(), self.n_threads)

    def full_tcm(self) -> np.ndarray:
        """The TCM from the recorded (full-sampling) log as-is."""
        def entries():
            for batch in self.batches:
                for e in batch.entries:
                    yield batch.thread_id, e.obj_id, e.scaled_bytes

        return build_tcm(entries(), self.n_threads)

    def drift_from(self, other: "ProfileTrace", metric: str = "abs") -> float:
        """Distance between two traces' full maps (pattern drift check)."""
        from repro.core.accuracy import absolute_error, euclidean_error

        a, b = self.full_tcm(), other.full_tcm()
        if a.shape != b.shape:
            raise ValueError(
                f"thread counts differ: {a.shape[0]} vs {b.shape[0]}"
            )
        return absolute_error(a, b) if metric == "abs" else euclidean_error(a, b)


def record_trace(workload_factory, n_nodes: int, *, costs=None) -> ProfileTrace:
    """One-call capture: run a workload at full sampling and return its
    trace (the offline-analysis entry point)."""
    from repro.analysis import experiments as E

    batches, gos, n_threads, _run = E.collect_full_batches(
        workload_factory, n_nodes, costs=costs
    )
    return ProfileTrace.capture(gos, batches, n_threads)
