"""Determinism & protocol sanitizer toolchain.

Three complementary machine-checked guards for the repo's correctness
contract ("bit-identical simulated results"):

* :mod:`repro.checks.simlint` — a static AST lint pass (stdlib ``ast``,
  no third-party deps) with repo-specific rules (``SIM001``…``SIM008``)
  that catch the classic ways determinism silently breaks: wall-clock
  reads, unseeded global RNG, unordered ``set``/dict-view iteration,
  ``id()``-based ordering, missing ``__slots__`` on hot-path classes,
  mutable default arguments, stray ``heapq`` use outside the event
  kernel, and environment reads inside the deterministic core.

* :mod:`repro.checks.sanitizer` — an opt-in runtime protocol checker
  (``DJVM(sanitize=True)``) that hooks HLRC/interpreter events and
  asserts the paper's state-machine invariants (at-most-once OAL
  logging, legal copy-state transitions, barrier party accounting,
  event-kernel monotonicity, sticky-set membership), raising structured
  :class:`~repro.checks.sanitizer.SanitizerViolation`\\ s with the
  offending event trace.

* :mod:`repro.checks.racedetect` — an opt-in happens-before data race
  detector (``DJVM(racecheck=...)``) over the global object space:
  FastTrack-style vector clocks with release->acquire, barrier and
  diff-propagation edges, online (raise/collect) and offline
  (record + :func:`~repro.checks.racedetect.replay_trace`) analysis.

All three are wired into the ``make check`` gate via the
``python -m repro.checks`` CLI (see :mod:`repro.checks.__main__`);
the shared workload harness lives in :mod:`repro.checks.runner`.
"""

from __future__ import annotations

from repro.checks.racedetect import (
    DataRaceError,
    RaceDetector,
    RaceReport,
    replay_trace,
)
from repro.checks.sanitizer import ProtocolSanitizer, SanitizerViolation
from repro.checks.simlint import Finding, check_paths, check_source

__all__ = [
    "DataRaceError",
    "Finding",
    "ProtocolSanitizer",
    "RaceDetector",
    "RaceReport",
    "SanitizerViolation",
    "check_paths",
    "check_source",
    "replay_trace",
]
