"""``python -m repro.checks`` — the determinism check gate CLI.

Subcommands:

* ``lint [PATHS...]`` — run the simlint AST pass (default paths:
  ``src tests benchmarks``); prints ``path:line:col: CODE message`` per
  finding and exits non-zero when any undisabled finding remains.
* ``sanitize`` — run the three tracked bench workloads at test scale
  with ``DJVM(sanitize=True)``; exits non-zero on any
  :class:`~repro.checks.sanitizer.SanitizerViolation`.
* ``all`` (default) — both, lint first.
"""

from __future__ import annotations

import argparse
import sys

from repro.checks.simlint import check_paths

DEFAULT_LINT_PATHS = ["src", "tests", "benchmarks"]


def run_lint(paths: list[str] | None = None) -> int:
    """Lint ``paths``; print findings; return a process exit code."""
    paths = paths or DEFAULT_LINT_PATHS
    findings = check_paths(paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"simlint: clean ({', '.join(paths)})")
    return 0


def run_sanitize() -> int:
    """Run sanitizer-enabled bench workloads; return a process exit code."""
    from repro.checks.sanitizer import SanitizerViolation
    from repro.checks.sanitize_run import run_all

    try:
        report = run_all(verbose=True)
    except SanitizerViolation as violation:
        print(f"sanitizer: {violation}", file=sys.stderr)
        return 1
    total = sum(checks for _, checks, _ in report)
    print(f"sanitizer: clean ({total} checks across {len(report)} workloads)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="Determinism lint + protocol sanitizer gate.",
    )
    sub = parser.add_subparsers(dest="command")
    lint = sub.add_parser("lint", help="run the simlint AST pass")
    lint.add_argument("paths", nargs="*", default=None, help="files or directories")
    sub.add_parser("sanitize", help="run sanitizer-enabled bench workloads")
    sub.add_parser("all", help="lint then sanitize (default)")
    args = parser.parse_args(argv)

    if args.command == "lint":
        return run_lint(args.paths or None)
    if args.command == "sanitize":
        return run_sanitize()
    code = run_lint(None)
    return code or run_sanitize()


if __name__ == "__main__":
    raise SystemExit(main())
