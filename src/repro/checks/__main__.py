"""``python -m repro.checks`` — the determinism check gate CLI.

Subcommands:

* ``lint [PATHS...]`` — run the simlint AST pass (default paths:
  ``src tests benchmarks``); prints ``path:line:col: CODE message`` per
  finding and exits non-zero when any undisabled finding remains.
* ``sanitize`` — run the three tracked bench workloads at test scale
  with ``DJVM(sanitize=True)``; exits non-zero on any
  :class:`~repro.checks.sanitizer.SanitizerViolation`.
* ``race`` — run the tracked workloads plus the seeded racy/locked
  synthetic pair with ``DJVM(racecheck="collect")``; exits non-zero
  when a tracked (race-free) workload reports any race, or when the
  seeded race in ``RacyCounterWorkload(locked=False)`` goes undetected.
* ``all`` (default) — lint, then sanitize, then race.
"""

from __future__ import annotations

import argparse
import sys

from repro.checks.simlint import check_paths

DEFAULT_LINT_PATHS = ["src", "tests", "benchmarks"]


def run_lint(paths: list[str] | None = None) -> int:
    """Lint ``paths``; print findings; return a process exit code."""
    paths = paths or DEFAULT_LINT_PATHS
    findings = check_paths(paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"simlint: clean ({', '.join(paths)})")
    return 0


def run_sanitize() -> int:
    """Run sanitizer-enabled bench workloads; return a process exit code."""
    from repro.checks.runner import run_sanitize_all
    from repro.checks.sanitizer import SanitizerViolation

    try:
        report = run_sanitize_all(verbose=True)
    except SanitizerViolation as violation:
        print(f"sanitizer: {violation}", file=sys.stderr)
        return 1
    total = sum(checks for _, checks, _ in report)
    print(f"sanitizer: clean ({total} checks across {len(report)} workloads)")
    return 0


def run_race() -> int:
    """Run the happens-before race gate; return a process exit code."""
    from repro.checks.runner import run_race_all

    report = run_race_all(verbose=True)
    failures = []
    checked = 0
    for name, accesses, reports, expected_racy in report:
        checked += accesses
        if expected_racy:
            if not reports:
                failures.append(f"{name}: seeded race NOT detected")
            else:
                # Show the ground-truth positive with both access sites
                # and the unordering evidence.
                print(f"  seeded race detected in {name}:")
                for line in reports[0].render().splitlines():
                    print(f"    {line}")
        elif reports:
            failures.append(f"{name}: {len(reports)} unexpected race(s)")
            for race in reports:
                print(race.render(), file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"racecheck: {failure}", file=sys.stderr)
        return 1
    print(f"racecheck: clean ({checked} accesses across {len(report)} runs)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="Determinism lint + protocol sanitizer gate.",
    )
    sub = parser.add_subparsers(dest="command")
    lint = sub.add_parser("lint", help="run the simlint AST pass")
    lint.add_argument("paths", nargs="*", default=None, help="files or directories")
    sub.add_parser("sanitize", help="run sanitizer-enabled bench workloads")
    sub.add_parser("race", help="run the happens-before race gate")
    sub.add_parser("all", help="lint, sanitize, then race (default)")
    args = parser.parse_args(argv)

    if args.command == "lint":
        return run_lint(args.paths or None)
    if args.command == "sanitize":
        return run_sanitize()
    if args.command == "race":
        return run_race()
    code = run_lint(None)
    code = code or run_sanitize()
    return code or run_race()


if __name__ == "__main__":
    raise SystemExit(main())
