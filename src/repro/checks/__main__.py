"""``python -m repro.checks`` — the determinism check gate CLI.

Subcommands:

* ``lint [PATHS...]`` — run the simlint AST pass (default paths:
  ``src tests benchmarks``); prints ``path:line:col: CODE message`` per
  finding and exits non-zero when any undisabled finding remains.
* ``sanitize`` — run the three tracked bench workloads at test scale
  with ``DJVM(sanitize=True)``; exits non-zero on any
  :class:`~repro.checks.sanitizer.SanitizerViolation`.
* ``race`` — run the tracked workloads plus the seeded racy/locked
  synthetic pair with ``DJVM(racecheck="collect")``; exits non-zero
  when a tracked (race-free) workload reports any race, or when the
  seeded race in ``RacyCounterWorkload(locked=False)`` goes undetected.
* ``static`` — run the whole-program static analysis
  (:mod:`repro.checks.staticflow`) over the same run matrix: the IR
  must verify, the racy synthetic must yield a non-empty may-race set,
  and — the soundness cross-check — every dynamic FastTrack report
  must be covered by the static may-race set.
* ``effects`` — run the interprocedural effect/purity analysis
  (:mod:`repro.checks.effects`) over the simulator's own source:
  observer purity (EFF1xx), clock separation (EFF2xx) and partition
  safety (EFF3xx); ``--write`` regenerates the committed
  ``effects.json`` consumed by simlint and the partitioned kernel.
* ``all`` (default) — run **every** gate (lint, sanitize, race,
  static, effects), report each failure, and exit with the
  highest-severity (numerically largest) failing code.

Each failing subcommand exits with its own code (see ``--help``) so CI
logs identify the failing gate without scraping stderr.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.checks.simlint import check_paths

DEFAULT_LINT_PATHS = ["src", "tests", "benchmarks"]

#: one distinct exit code per failing gate (0 = all clean).
EXIT_LINT = 2
EXIT_SANITIZE = 3
EXIT_RACE = 4
EXIT_STATIC = 5
EXIT_EFFECTS = 6


def run_lint(paths: list[str] | None = None) -> int:
    """Lint ``paths``; print findings; return a process exit code.

    When the committed ``effects.json`` is present, the interprocedural
    SIM009/SIM010 feeds sharpen the syntactic pass."""
    from repro.checks.effects.summary import EffectsSummary

    paths = paths or DEFAULT_LINT_PATHS
    findings = check_paths(paths, effects_summary=EffectsSummary.load())
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"simlint: {len(findings)} finding(s)", file=sys.stderr)
        return EXIT_LINT
    print(f"simlint: clean ({', '.join(paths)})")
    return 0


def run_sanitize() -> int:
    """Run sanitizer-enabled bench workloads; return a process exit code."""
    from repro.checks.runner import run_sanitize_all
    from repro.checks.sanitizer import SanitizerViolation

    try:
        report = run_sanitize_all(verbose=True)
    except SanitizerViolation as violation:
        print(f"sanitizer: {violation}", file=sys.stderr)
        return EXIT_SANITIZE
    total = sum(checks for _, checks, _ in report)
    print(f"sanitizer: clean ({total} checks across {len(report)} workloads)")
    return 0


def run_race() -> int:
    """Run the happens-before race gate; return a process exit code."""
    from repro.checks.runner import run_race_all

    report = run_race_all(verbose=True)
    failures = []
    checked = 0
    for name, accesses, reports, expected_racy in report:
        checked += accesses
        if expected_racy:
            if not reports:
                failures.append(f"{name}: seeded race NOT detected")
            else:
                # Show the ground-truth positive with both access sites
                # and the unordering evidence.
                print(f"  seeded race detected in {name}:")
                for line in reports[0].render().splitlines():
                    print(f"    {line}")
        elif reports:
            failures.append(f"{name}: {len(reports)} unexpected race(s)")
            for race in reports:
                print(race.render(), file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"racecheck: {failure}", file=sys.stderr)
        return EXIT_RACE
    print(f"racecheck: clean ({checked} accesses across {len(report)} runs)")
    return 0


def run_static(json_path: str | None = None, *, verbose: bool = True) -> int:
    """Run the static-analysis gate; return a process exit code.

    Three requirements over the race-gate run matrix:

    1. every workload's IR passes full verification (IR001–IR009);
    2. the seeded racy synthetic yields a non-empty static may-race set
       (the analysis is not vacuously silent);
    3. soundness — re-running the matrix under the *dynamic* FastTrack
       detector, every dynamic report is covered by the static may-race
       set (``may_races ⊇ dynamic reports``).
    """
    from repro.checks.runner import N_NODES, race_workloads, run_race_all
    from repro.checks.staticflow import analyze, uncovered_dynamic

    failures = []
    static_reports: dict[str, object] = {}
    for name, workload, expected_racy in race_workloads():
        report = analyze(
            workload, n_nodes=N_NODES, placement="round_robin", name=name
        )
        static_reports[name] = report
        if not report.verified:
            failures.append(f"{name}: {len(report.problems)} IR problem(s)")
            for problem in report.problems:
                print(f"  {problem.render()}", file=sys.stderr)
            continue
        if verbose:
            counts = report.sharing.counts()
            shared = sum(
                n for cls, n in counts.items() if cls not in ("node-private", "unaccessed")
            )
            print(
                f"  static   {name:<18} {len(report.ir.objects):>5} objects, "
                f"{shared} shared, {len(report.races)} may-race pair(s)"
            )
        if expected_racy and not report.races:
            failures.append(f"{name}: seeded race has empty static may-race set")

    # Soundness cross-check: dynamic ⊆ static on every workload.
    dynamic = run_race_all(verbose=False)
    covered = 0
    for name, _accesses, reports, _expected in dynamic:
        report = static_reports.get(name)
        if report is None or not report.verified:
            continue
        missing = uncovered_dynamic(report.races, reports)
        covered += len(reports) - len(missing)
        for dyn in missing:
            failures.append(
                f"{name}: dynamic race not in static may-race set "
                f"(UNSOUND): obj {dyn.obj_id} {dyn.kind} "
                f"threads {dyn.first.thread_id}/{dyn.second.thread_id}"
            )

    if json_path:
        doc = {name: r.to_json() for name, r in sorted(static_reports.items())}
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"static: wrote {json_path}")

    if failures:
        for failure in failures:
            print(f"static: {failure}", file=sys.stderr)
        return EXIT_STATIC
    total_static = sum(
        len(r.races) for r in static_reports.values() if r.verified
    )
    print(
        f"static: sound ({len(static_reports)} workloads verified, "
        f"{total_static} may-race pair(s), {covered} dynamic report(s) covered)"
    )
    return 0


def run_effects(
    src_root: str | None = None,
    json_path: str | None = None,
    write: str | None = None,
    *,
    verbose: bool = True,
) -> int:
    """Run the interprocedural effect/purity gate.

    ``write`` regenerates ``effects.json`` (default location: next to
    the ``src`` tree, i.e. the repository root); ``json_path`` dumps the
    same document elsewhere without touching the committed copy.
    """
    from pathlib import Path

    from repro.checks.effects import analyze_package
    from repro.checks.effects.rules import render_summary_line
    from repro.checks.effects.summary import DEFAULT_FILENAME

    root = Path(src_root) if src_root else Path(__file__).resolve().parents[2]
    report = analyze_package(root)

    for finding in report.findings:
        print(finding.render())
    if verbose:
        for finding in report.suppressed:
            print(f"  suppressed: {finding.render()}")
        print(render_summary_line(report))

    doc = None
    if json_path:
        doc = report.to_json()
        with open(json_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"effects: wrote {json_path}")
    if write is not None:
        target = Path(write) if write else root.parent / DEFAULT_FILENAME
        doc = doc or report.to_json()
        with open(target, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"effects: wrote {target}")

    if report.findings:
        print(f"effects: {len(report.findings)} finding(s)", file=sys.stderr)
        return EXIT_EFFECTS
    print("effects: certified (observer purity, clock separation, partition safety)")
    return 0


#: gate name -> (runner, exit code), in ``all`` execution order.
ALL_GATES = (
    ("lint", lambda: run_lint(None), EXIT_LINT),
    ("sanitize", run_sanitize, EXIT_SANITIZE),
    ("race", run_race, EXIT_RACE),
    ("static", run_static, EXIT_STATIC),
    ("effects", run_effects, EXIT_EFFECTS),
)


def run_all() -> int:
    """Run every gate; report all failures; exit max(failing codes).

    Unlike the historical first-failure chain, a broken lint no longer
    hides a broken race gate: CI shows the full damage in one run, and
    the deterministic gate order keeps logs diffable.
    """
    codes: dict[str, int] = {}
    for name, runner, _exit in ALL_GATES:
        try:
            codes[name] = runner()
        except Exception as exc:  # a crashing gate is a failing gate
            print(f"{name}: crashed: {exc!r}", file=sys.stderr)
            codes[name] = _exit
    failing = {name: code for name, code in codes.items() if code}
    if failing:
        summary = ", ".join(f"{n} (exit {c})" for n, c in failing.items())
        print(f"checks: FAILED gates: {summary}", file=sys.stderr)
        return max(failing.values())
    print(f"checks: all {len(codes)} gates clean")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="Determinism lint + protocol sanitizer + race + static gates.",
        epilog=(
            "exit codes: 0 all clean; "
            f"{EXIT_LINT} lint findings; {EXIT_SANITIZE} sanitizer violation; "
            f"{EXIT_RACE} race gate failed; {EXIT_STATIC} static gate failed; "
            f"{EXIT_EFFECTS} effects gate failed. "
            "`all` runs every gate and exits with the highest failing code."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    lint = sub.add_parser("lint", help=f"run the simlint AST pass (exit {EXIT_LINT} on findings)")
    lint.add_argument("paths", nargs="*", default=None, help="files or directories")
    sub.add_parser(
        "sanitize",
        help=f"run sanitizer-enabled bench workloads (exit {EXIT_SANITIZE} on violation)",
    )
    sub.add_parser(
        "race", help=f"run the happens-before race gate (exit {EXIT_RACE} on failure)"
    )
    static = sub.add_parser(
        "static",
        help=f"run the whole-program static analysis gate (exit {EXIT_STATIC} on failure)",
    )
    static.add_argument(
        "--json", default=None, metavar="PATH", help="also write per-workload JSON reports"
    )
    effects = sub.add_parser(
        "effects",
        help=f"run the interprocedural effect/purity gate (exit {EXIT_EFFECTS} on findings)",
    )
    effects.add_argument(
        "src_root", nargs="?", default=None, help="source tree to analyze (default: src)"
    )
    effects.add_argument(
        "--json", default=None, metavar="PATH", help="also dump the full JSON report"
    )
    effects.add_argument(
        "--write",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="regenerate the committed effects.json (default path: repo root)",
    )
    sub.add_parser("all", help="run every gate, exit max failing code (default)")
    args = parser.parse_args(argv)

    if args.command == "lint":
        return run_lint(args.paths or None)
    if args.command == "sanitize":
        return run_sanitize()
    if args.command == "race":
        return run_race()
    if args.command == "static":
        return run_static(args.json)
    if args.command == "effects":
        return run_effects(args.src_root, args.json, args.write)
    return run_all()


if __name__ == "__main__":
    raise SystemExit(main())
