"""Interprocedural effect & purity analysis over the simulator source.

Where :mod:`repro.checks.staticflow` analyzes the *workload IR*, this
package analyzes the simulator's **own Python source**: it builds a
class-hierarchy-aware call graph over ``src/repro/`` with stdlib
:mod:`ast`, runs a fixed-point effect inference assigning every
function a lattice value (``pure`` -> ``reads-sim-state`` ->
``writes-sim-state`` -> ``host-effect``), and statically certifies the
three properties the repo otherwise only proves dynamically through
byte-identity checksums:

* **EFF1xx observer purity** — the race detector, protocol sanitizer,
  span tracer and telemetry collectors never perturb simulated state;
* **EFF2xx clock separation** — host time never flows into simulated
  time (event scheduling, clock advances);
* **EFF3xx partition safety** — worker-dispatched callables touch other
  partitions' state only through the :class:`~repro.sim.network.Network`.

Run it as ``python -m repro.checks effects`` (exit code 6 on
unsuppressed findings); ``--write`` regenerates the committed
``effects.json`` consumed by simlint and the partitioned kernel.

The analysis submodules load lazily: importing this package (which the
partition kernel does on its construction path, via
:mod:`~repro.checks.effects.summary`) must stay cheap.
"""

from __future__ import annotations

from repro.checks.effects.lattice import EFFECT_NAMES, Effect
from repro.checks.effects.summary import EffectsSummary, default_summary_path

__all__ = [
    "Effect",
    "EFFECT_NAMES",
    "EffectsSummary",
    "default_summary_path",
    "analyze_package",
    "analyze_sources",
]


def analyze_package(src_root, package: str = "repro"):
    """Parse + analyze every module under ``src_root/package`` and run
    the rule families.  Returns an
    :class:`~repro.checks.effects.rules.EffectsReport`."""
    from repro.checks.effects.codebase import Codebase
    from repro.checks.effects.infer import analyze
    from repro.checks.effects.rules import run_rules

    return run_rules(analyze(Codebase.from_package(src_root, package)))


def analyze_sources(sources: dict, config=None):
    """Analyze in-memory ``{module_name: source}`` (fixtures/tests)."""
    from repro.checks.effects.codebase import Codebase
    from repro.checks.effects.infer import analyze
    from repro.checks.effects.rules import run_rules

    return run_rules(analyze(Codebase.from_sources(sources), config))
