"""Parsing, indexing and call resolution over the simulator's source.

This is the *front half* of the effects analysis: it loads every module
under one package root with stdlib :mod:`ast` (never importing them),
and builds the indexes the inference pass resolves calls against:

* a class table with base-class linearization (MRO lookup for
  ``self.m()`` dispatch),
* per-class attribute types, recovered from ``self.attr = ClassName(...)``
  assignments, ``self.attr: T`` annotations and annotated-parameter
  stores (``def __init__(self, hlrc: HomeBasedLRC): self.hlrc = hlrc``),
* per-class callable tables (``self._dispatch = {OP: self._do_x, ...}``)
  so dispatch through a table joins over the table's members,
* per-module import maps and module-level wall-clock aliases
  (``_perf_ns = time.perf_counter_ns``), and
* a name -> methods index used as the *join fallback* when a receiver's
  class is unknown: ``x.advance(...)`` joins every repo class defining
  ``advance``.  Names of builtin container methods never join — they go
  through the builtin receiver model instead.

The same front end also discovers the two root sets the rule families
start from: observer entry points (methods invoked through the nullable
``sanitizer``/``racedetector``/``tracer`` slots and callables registered
via ``register_collector``) and worker-dispatched callables (the
``callback=`` argument of event-kernel ``schedule`` sites, with the
scheduling ``EventKind``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Codebase", "ModuleInfo", "ClassInfo", "FunctionInfo"]

#: wall-clock callables by (module, attr).
WALL_CLOCK_FUNCS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("time", "thread_time"),
    ("time", "thread_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
}

#: ambient (unseeded) randomness by (module, attr).  Seeded
#: ``random.Random(seed)`` / ``numpy`` generators are deterministic and
#: deliberately absent.
AMBIENT_RNG_FUNCS = {
    ("random", "random"),
    ("random", "randrange"),
    ("random", "randint"),
    ("random", "choice"),
    ("random", "shuffle"),
    ("random", "getrandbits"),
    ("os", "urandom"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
    ("uuid", "uuid4"),
    ("uuid", "uuid1"),
}

#: environment / process / I/O host surface by (module, attr).
HOST_IO_FUNCS = {
    ("os", "getenv"),
    ("os", "putenv"),
    ("os", "system"),
    ("os", "popen"),
    ("os", "fork"),
    ("os", "spawnv"),
    ("sys", "exit"),
    ("subprocess", "run"),
    ("subprocess", "Popen"),
    ("subprocess", "check_output"),
    ("subprocess", "call"),
    ("socket", "socket"),
}

#: host scheduling/process control by (module, attr).
HOST_PROCESS_FUNCS = {
    ("time", "sleep"),
    ("os", "kill"),
    ("os", "_exit"),
    ("signal", "signal"),
    ("signal", "alarm"),
}

#: bare names whose *call* is a host effect.
HOST_BUILTIN_CALLS = {"open": "io", "input": "io", "print": "io"}

#: container/str methods routed through the builtin receiver model
#: (never joined against repo classes).  Split into mutators (a write to
#: the receiver's root) and accessors (root-preserving reads).
BUILTIN_MUTATORS = {
    "append", "add", "insert", "extend", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "sort", "reverse",
    "appendleft", "popleft", "push",
}
BUILTIN_ACCESSORS = {
    "get", "items", "keys", "values", "copy", "index", "count", "join",
    "split", "rsplit", "strip", "lstrip", "rstrip", "startswith",
    "endswith", "format", "replace", "lower", "upper", "encode",
    "decode", "most_common", "total", "bit_length", "to_bytes",
    "splitlines", "title", "capitalize", "ljust", "rjust", "zfill",
    "union", "intersection", "difference", "issubset", "issuperset",
    "isdisjoint",
}

#: pure (or effectively pure) builtin calls.
PURE_BUILTINS = {
    "len", "min", "max", "sum", "abs", "round", "sorted", "reversed",
    "enumerate", "zip", "map", "filter", "range", "isinstance",
    "issubclass", "hasattr", "repr", "str", "int", "float", "bool",
    "bytes", "bytearray", "list", "dict", "set", "tuple", "frozenset",
    "type", "id", "hash", "iter", "next", "all", "any", "divmod", "pow",
    "ord", "chr", "format", "vars", "callable", "super", "slice",
    "memoryview", "complex", "object", "staticmethod", "classmethod",
    "property",
}


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module."""

    name: str
    path: str
    tree: ast.Module
    source_lines: list[str]
    #: local name -> dotted target ("repro.sim.events.EventLoop" or
    #: "time.perf_counter_ns" or a module like "repro.dsm.hlrc").
    imports: dict[str, str] = field(default_factory=dict)
    #: module-level names aliasing a wall-clock callable.
    wallclock_names: set[str] = field(default_factory=set)
    #: module-level names aliasing an ambient-RNG callable.
    rng_names: set[str] = field(default_factory=set)


@dataclass(slots=True)
class ClassInfo:
    """One class definition."""

    qualname: str
    module: str
    name: str
    base_names: list[str]
    methods: dict[str, "FunctionInfo"] = field(default_factory=dict)
    #: attr -> class qualname (best-effort static type).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attr -> method qualnames a callable table holds.
    attr_callables: dict[str, set[str]] = field(default_factory=dict)
    #: resolved base class qualnames (filled by Codebase._link).
    bases: list[str] = field(default_factory=list)


@dataclass(slots=True)
class FunctionInfo:
    """One function, method, nested def or lambda."""

    qualname: str
    module: str
    path: str
    name: str
    cls: str | None
    node: ast.AST
    lineno: int
    params: tuple[str, ...]
    is_method: bool
    #: param -> repo class qualname, from annotations.
    param_types: dict[str, str] = field(default_factory=dict)


def _walk_attr_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None when the chain has non-name
    links (calls, subscripts)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class Codebase:
    """Every module under one package root, parsed and indexed."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: simple class name -> qualnames (usually one).
        self.classes_by_name: dict[str, list[str]] = {}
        #: method name -> FunctionInfo list (the join fallback).
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}
        #: class qualname -> linearized ancestor qualnames (self first).
        self._mro: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_package(cls, src_root: str | Path, package: str = "repro") -> "Codebase":
        """Parse every ``.py`` under ``src_root/package``."""
        root = Path(src_root)
        base = root / package
        cb = cls()
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).with_suffix("")
            parts = list(rel.parts)
            if parts[-1] == "__init__":
                parts = parts[:-1]
            cb._add_module(".".join(parts), str(path), path.read_text())
        cb._link()
        return cb

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Codebase":
        """Build from in-memory ``{module_name: source}`` (tests)."""
        cb = cls()
        for name in sorted(sources):
            cb._add_module(name, f"<{name}>", sources[name])
        cb._link()
        return cb

    def _add_module(self, name: str, path: str, source: str) -> None:
        tree = ast.parse(source, filename=path)
        mod = ModuleInfo(name, path, tree, source.splitlines())
        self.modules[name] = mod
        self._collect_imports(mod)
        self._collect_defs(mod)

    # ------------------------------------------------------------------
    # per-module collection
    # ------------------------------------------------------------------

    def _collect_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        mod.imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                src = node.module or ""
                if node.level:  # relative import -> anchor in this package
                    parts = mod.name.split(".")
                    anchor = parts[: len(parts) - node.level]
                    src = ".".join(anchor + ([src] if src else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{src}.{alias.name}" if src else alias.name
                    if (src, alias.name) in WALL_CLOCK_FUNCS:
                        mod.wallclock_names.add(local)
                    if (src, alias.name) in AMBIENT_RNG_FUNCS:
                        mod.rng_names.add(local)
        # module-level aliases: NAME = time.perf_counter_ns
        for node in mod.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            chain = _walk_attr_chain(node.value)
            if chain and len(chain) == 2 and tuple(chain) in WALL_CLOCK_FUNCS:
                mod.wallclock_names.add(target.id)
            elif chain and len(chain) == 2 and tuple(chain) in AMBIENT_RNG_FUNCS:
                mod.rng_names.add(target.id)
            elif isinstance(node.value, ast.Name) and node.value.id in mod.wallclock_names:
                mod.wallclock_names.add(target.id)

    def _collect_defs(self, mod: ModuleInfo) -> None:
        """Register classes, functions, nested defs and lambdas."""

        def visit(node: ast.AST, qual_prefix: str, cls: ClassInfo | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    cqual = f"{qual_prefix}.{child.name}"
                    cinfo = ClassInfo(
                        qualname=cqual,
                        module=mod.name,
                        name=child.name,
                        base_names=[
                            ".".join(c) for b in child.bases
                            if (c := _walk_attr_chain(b)) is not None
                        ],
                    )
                    self.classes[cqual] = cinfo
                    self.classes_by_name.setdefault(child.name, []).append(cqual)
                    visit(child, cqual, cinfo)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fqual = f"{qual_prefix}.{child.name}"
                    self._register_function(mod, child, fqual, cls)
                    # nested defs/lambdas live under "<locals>"
                    visit(child, f"{fqual}.<locals>", None)
                else:
                    self._collect_lambdas(mod, child, qual_prefix)
                    visit(child, qual_prefix, cls)

        visit(mod.tree, mod.name, None)

    def _collect_lambdas(self, mod: ModuleInfo, node: ast.AST, qual_prefix: str) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                fqual = f"{qual_prefix}.<lambda>@{sub.lineno}"
                if fqual not in self.functions:
                    self._register_function(mod, sub, fqual, None)

    def _register_function(
        self, mod: ModuleInfo, node: ast.AST, qualname: str, cls: ClassInfo | None
    ) -> None:
        args = node.args
        params = tuple(
            a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)
        )
        is_method = cls is not None and bool(params) and params[0] in ("self", "cls")
        info = FunctionInfo(
            qualname=qualname,
            module=mod.name,
            path=mod.path,
            name=qualname.rsplit(".", 1)[-1],
            cls=cls.qualname if cls is not None else None,
            node=node,
            lineno=node.lineno,
            params=params,
            is_method=is_method,
        )
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.annotation is not None:
                resolved = self._annotation_class(mod, a.annotation)
                if resolved:
                    info.param_types[a.arg] = resolved
        self.functions[qualname] = info
        if cls is not None:
            cls.methods[info.name] = info
            if info.name not in BUILTIN_MUTATORS and info.name not in BUILTIN_ACCESSORS:
                self.methods_by_name.setdefault(info.name, []).append(info)

    def _annotation_class(self, mod: ModuleInfo, ann: ast.AST) -> str | None:
        """First repo class named inside an annotation expression (also
        handles string annotations)."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        for sub in ast.walk(ann):
            if isinstance(sub, ast.Name):
                hit = self.resolve_name_in_module(mod, sub.id)
                if hit and hit in self.classes:
                    return hit
                if sub.id in self.classes_by_name:
                    return self.classes_by_name[sub.id][0]
            elif isinstance(sub, ast.Attribute):
                chain = _walk_attr_chain(sub)
                if chain and chain[-1] in self.classes_by_name:
                    return self.classes_by_name[chain[-1]][0]
        return None

    # ------------------------------------------------------------------
    # linking (after every module is registered)
    # ------------------------------------------------------------------

    def _link(self) -> None:
        for cinfo in self.classes.values():
            mod = self.modules[cinfo.module]
            for base in cinfo.base_names:
                resolved = self.resolve_name_in_module(mod, base.split(".")[0])
                if resolved and resolved in self.classes:
                    cinfo.bases.append(resolved)
                elif base.split(".")[-1] in self.classes_by_name:
                    cinfo.bases.append(self.classes_by_name[base.split(".")[-1]][0])
        for cinfo in self.classes.values():
            self._collect_attr_types(cinfo)

    def _collect_attr_types(self, cinfo: ClassInfo) -> None:
        mod = self.modules[cinfo.module]
        for fi in cinfo.methods.values():
            for node in ast.walk(fi.node):
                targets: list[ast.AST] = []
                value: ast.AST | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    if isinstance(node, ast.AnnAssign) and attr not in cinfo.attr_types:
                        resolved = self._annotation_class(mod, node.annotation)
                        if resolved:
                            cinfo.attr_types[attr] = resolved
                    if value is None:
                        continue
                    # callable tables: {OP: self.m, ...} or self.m
                    members = self._callable_members(cinfo, value)
                    if members:
                        cinfo.attr_callables.setdefault(attr, set()).update(members)
                    if attr in cinfo.attr_types:
                        continue
                    cls = self._value_class(mod, fi, value)
                    if cls:
                        cinfo.attr_types[attr] = cls

    def _callable_members(self, cinfo: ClassInfo, value: ast.AST) -> set[str]:
        out: set[str] = set()
        values = value.values if isinstance(value, ast.Dict) else [value]
        for v in values:
            if (
                isinstance(v, ast.Attribute)
                and isinstance(v.value, ast.Name)
                and v.value.id == "self"
            ):
                target = self.resolve_method(cinfo.qualname, v.attr)
                if target is not None:
                    out.add(target.qualname)
        return out

    def _value_class(
        self, mod: ModuleInfo, fi: FunctionInfo, value: ast.AST
    ) -> str | None:
        """Class of an assigned value: a constructor call anywhere in the
        expression, or an annotated parameter stored verbatim."""
        if isinstance(value, ast.Name) and value.id in fi.param_types:
            return fi.param_types[value.id]
        for sub in ast.walk(value):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                hit = self.resolve_name_in_module(mod, sub.func.id)
                if hit and hit in self.classes:
                    return hit
            elif isinstance(sub, ast.Name) and sub.id in fi.param_types:
                return fi.param_types[sub.id]
        return None

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def resolve_name_in_module(self, mod: ModuleInfo, name: str) -> str | None:
        """Resolve a bare name to a dotted qualname via the module's own
        defs, then its imports."""
        direct = f"{mod.name}.{name}"
        if direct in self.classes or direct in self.functions:
            return direct
        return mod.imports.get(name)

    def mro(self, cls_qual: str) -> list[str]:
        """Linearized ancestor chain (self first; repo classes only)."""
        cached = self._mro.get(cls_qual)
        if cached is not None:
            return cached
        out: list[str] = []
        seen: set[str] = set()

        def walk(q: str) -> None:
            if q in seen or q not in self.classes:
                return
            seen.add(q)
            out.append(q)
            for b in self.classes[q].bases:
                walk(b)

        walk(cls_qual)
        self._mro[cls_qual] = out
        return out

    def resolve_method(self, cls_qual: str, name: str) -> FunctionInfo | None:
        """MRO method lookup."""
        for q in self.mro(cls_qual):
            fi = self.classes[q].methods.get(name)
            if fi is not None:
                return fi
        return None

    def attr_type(self, cls_qual: str, attr: str) -> str | None:
        """Best-effort static type of ``self.attr`` in ``cls_qual``."""
        for q in self.mro(cls_qual):
            hit = self.classes[q].attr_types.get(attr)
            if hit is not None:
                return hit
        return None

    def attr_callables(self, cls_qual: str, attr: str) -> set[str]:
        out: set[str] = set()
        for q in self.mro(cls_qual):
            out |= self.classes[q].attr_callables.get(attr, set())
        return out

    def join_by_name(self, name: str) -> list[FunctionInfo]:
        """The name-join fallback for unknown receivers."""
        return self.methods_by_name.get(name, [])
