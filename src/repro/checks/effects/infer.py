"""Local effect extraction + fixed-point interprocedural propagation.

The local pass walks one function body in statement order, tracking for
every local name a *root* — where the value it aliases came from::

    ("self", None, foreign)     reachable from the receiver
    ("param", <name>, foreign)  reachable from a parameter
    ("global", None, foreign)   a module-level binding
    ("fresh", None, False)      constructed inside this function

Attribute and subscript chains preserve the base's root (``record =
heap.get(obj_id)`` keeps ``heap``'s root), so a later ``record.x = v``
is charged to the chain's origin, which is exactly the ownership
question the rules ask.  Mutating a ``fresh`` root is not an effect.

``foreign`` marks a chain that passed through a *partition-owned table*
(``threads_by_id``, ``heaps``, ``cluster``, ...) subscripted by an index
not derived from the dispatched actor — the cross-partition signal the
EFF3xx family keys on.

Host-time taint is tracked per local name: wall-clock reads (including
module-level aliases like ``_perf_ns = time.perf_counter_ns``) and
calls to functions inferred to *return* host time taint their results;
taint reaching an event-``schedule`` time argument, a ``SimClock``
advance, or a ``*now_ns`` field store is an EFF2xx flow.

Two fixed points run on top of the local facts:

1. ``returns_host_time`` — the local pass re-runs until the set of
   host-time-returning functions stabilizes (taint crosses calls).
2. write/host propagation — each call site rewrites the callee's
   transitive write set into the caller's frame (callee ``self`` ->
   receiver root, callee param -> argument root; ``fresh`` roots drop
   out), and joins host records.  Record sets are capped
   (:data:`~repro.checks.effects.lattice.MAX_RECORDS`), so the monotone
   iteration terminates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.checks.effects.codebase import (
    AMBIENT_RNG_FUNCS,
    BUILTIN_ACCESSORS,
    BUILTIN_MUTATORS,
    HOST_BUILTIN_CALLS,
    HOST_IO_FUNCS,
    HOST_PROCESS_FUNCS,
    PURE_BUILTINS,
    WALL_CLOCK_FUNCS,
    Codebase,
    FunctionInfo,
    _walk_attr_chain,
)
from repro.checks.effects.lattice import (
    MAX_RECORDS,
    CallSite,
    Eff2Flow,
    FunctionSummary,
    HostRec,
    WriteRec,
)

__all__ = ["EffectsConfig", "analyze"]


@dataclass(slots=True)
class EffectsConfig:
    """Tunable vocabulary of the three rule families."""

    #: nullable observer slots on the engine (EFF1xx roots).
    observer_slots: frozenset = frozenset(
        {"sanitizer", "racedetector", "tracer", "objprof"}
    )
    #: observer classes by simple name (union with classes discovered
    #: through slot assignments).
    observer_class_hints: frozenset = frozenset(
        {"ProtocolSanitizer", "RaceDetector", "SpanTracer", "ObjectProfiler"}
    )
    #: classes (simple names) whose state observers own: writes into
    #: them never violate EFF102.
    owned_classes: frozenset = frozenset(
        {
            "ProtocolSanitizer", "RaceDetector", "SpanTracer", "Span",
            "MetricsRegistry", "MetricFamily", "Counter", "Gauge", "Histogram",
            "ObjectProfiler", "ObjLifetime",
        }
    )
    #: attributes observers may publish onto engine objects
    #: (introspection exports, e.g. a thread's vector clock).
    owned_attrs: frozenset = frozenset({"vc"})
    #: audit-only sinks: kernel channels that exist *for* observers;
    #: calls resolve here are effect-free (suffix match on qualname).
    audit_sinks: tuple = (".EventLoop.record_aux", ".EventLoop.record")
    #: partition-owned tables: a subscript of one of these with a
    #: non-actor-derived index is a cross-partition reference.
    partition_tables: frozenset = frozenset(
        {"threads_by_id", "threads", "heaps", "nodes", "cluster", "_copies_by_node"}
    )
    #: parameter names that carry the dispatched actor.
    actor_params: frozenset = frozenset({"thread", "event"})
    #: self attrs that accumulate sanctioned observer self-overhead.
    self_account_attrs: frozenset = frozenset({"self_ns"})
    #: simulated-time fields (EFF202 store sinks).
    sim_time_attrs: frozenset = frozenset({"_now_ns", "now_ns", "time_ns"})
    #: event kinds whose callbacks run at a global synchronization
    #: point (every partition aligned): exempt from EFF301.
    exempt_event_kinds: frozenset = frozenset({"BARRIER_RELEASE"})
    #: collector registration entry point (observer roots).
    collector_func: str = "register_collector"


# root triples -----------------------------------------------------------

FRESH = ("fresh", None, False)
_SEVERITY = {"fresh": 0, "self": 1, "global": 2, "param": 3}


def _join_roots(a: tuple, b: tuple) -> tuple:
    kind = a if _SEVERITY[a[0]] >= _SEVERITY[b[0]] else b
    return (kind[0], kind[1], a[2] or b[2])


def _root_str(r: tuple) -> str:
    return f"param:{r[1]}" if r[0] == "param" else r[0]


@dataclass(slots=True)
class _Value:
    """Abstract value of one expression."""

    root: tuple = FRESH
    cls: str | None = None
    tainted: bool = False
    #: callable qualnames this value may be (bound-method refs, lambdas).
    callables: frozenset = frozenset()


class _LocalPass:
    """One statement-order walk of a function body."""

    def __init__(
        self,
        cb: Codebase,
        fi: FunctionInfo,
        config: EffectsConfig,
        host_returning: frozenset,
    ) -> None:
        self.cb = cb
        self.fi = fi
        self.config = config
        self.host_returning = host_returning
        self.mod = cb.modules[fi.module]
        self.summary = FunctionSummary(
            qualname=fi.qualname, path=fi.path, line=fi.lineno, is_method=fi.is_method
        )
        self.env: dict[str, _Value] = {}
        self.globals_declared: set[str] = set()
        #: names derived from the dispatched actor parameter(s).
        self.actor: set[str] = {
            p for p in fi.params if p in config.actor_params
        }
        #: names aliasing an observer slot (``sanitizer = self.sanitizer``).
        self.slot_alias: dict[str, str] = {}
        self.tainted_write_bad = False
        # discovery feeds for the rules layer
        self.observer_calls: list[tuple[str, str, int]] = []  # (slot, method, line)
        self.slot_bindings: list[tuple[str, str]] = []  # (slot, class qual)
        self.collector_regs: list[str] = []  # callable qualnames
        self.schedule_callbacks: list[tuple[str, str, int]] = []  # (qual, kind, line)

    # -- entry ----------------------------------------------------------

    def run(self) -> FunctionSummary:
        node = self.fi.node
        if isinstance(node, ast.Lambda):
            v = self.eval(node.body)
            if v.tainted:
                self.summary.returns_host_time = True
        else:
            self.block(node.body)
        s = self.summary
        s.self_accounting = bool(s.host) and (
            all(h.kind == "wallclock" for h in s.host)
            and not s.flows
            and not s.returns_host_time
            and not self.tainted_write_bad
        )
        return s

    # -- statements -----------------------------------------------------

    def block(self, stmts: list[ast.stmt]) -> None:
        for st in stmts:
            self.stmt(st)

    def stmt(self, st: ast.stmt) -> None:
        if isinstance(st, ast.Assign):
            v = self.eval(st.value)
            for t in st.targets:
                self.assign(t, v, st.value)
        elif isinstance(st, ast.AnnAssign):
            if st.value is not None:
                self.assign(st.target, self.eval(st.value), st.value)
        elif isinstance(st, ast.AugAssign):
            v = self.eval(st.value)
            prior = self.eval(st.target, reading=True)
            v = _Value(v.root, v.cls, v.tainted or prior.tainted, v.callables)
            self.assign(st.target, v, st.value, aug=True)
        elif isinstance(st, ast.Expr):
            self.eval(st.value)
        elif isinstance(st, ast.Return):
            if st.value is not None and self.eval(st.value).tainted:
                self.summary.returns_host_time = True
        elif isinstance(st, (ast.If, ast.While)):
            self.eval(st.test)
            self.block(st.body)
            self.block(st.orelse)
        elif isinstance(st, (ast.For, ast.AsyncFor)):
            it = self.eval(st.iter)
            elem = _Value(self._iter_elem_root(st.iter, it), None, it.tainted)
            self.assign(st.target, elem, st.iter)
            self.block(st.body)
            self.block(st.orelse)
        elif isinstance(st, (ast.With, ast.AsyncWith)):
            for item in st.items:
                v = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, v, item.context_expr)
            self.block(st.body)
        elif isinstance(st, ast.Try):
            self.block(st.body)
            for h in st.handlers:
                if h.name:
                    self.env[h.name] = _Value()
                self.block(h.body)
            self.block(st.orelse)
            self.block(st.finalbody)
        elif isinstance(st, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(st):
                if isinstance(sub, ast.expr):
                    self.eval(sub)
        elif isinstance(st, ast.Delete):
            for t in st.targets:
                if isinstance(t, (ast.Attribute, ast.Subscript)):
                    self._record_write(t, _Value(), t)
        elif isinstance(st, ast.Global):
            self.globals_declared.update(st.names)
        elif isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{self.fi.qualname}.<locals>.{st.name}"
            self.env[st.name] = _Value(callables=frozenset({qual}))
        # Nonlocal, Pass, Break, Continue, Import, ClassDef: no effect facts.

    def _iter_elem_root(self, iter_expr: ast.expr, it: _Value) -> tuple:
        """Element root when iterating: keeps the iterable's root; an
        iteration *over a partition table* yields elements of unknown
        partition, hence foreign."""
        root = it.root
        chain = _walk_attr_chain(iter_expr)
        if chain and chain[-1] in self.config.partition_tables and root[0] != "fresh":
            root = (root[0], root[1], True)
        if isinstance(iter_expr, ast.Call):
            # for x in sorted(self.threads): ... — look through wrappers
            for a in iter_expr.args:
                ch = _walk_attr_chain(a)
                if ch and ch[-1] in self.config.partition_tables:
                    base = self.eval(a)
                    if base.root[0] != "fresh":
                        root = (base.root[0], base.root[1], True)
        return root

    # -- assignment targets ---------------------------------------------

    def assign(
        self, target: ast.expr, v: _Value, value_expr: ast.expr | None, *, aug: bool = False
    ) -> None:
        cfg = self.config
        if isinstance(target, ast.Name):
            name = target.id
            if name in self.globals_declared:
                self._add_write(("global", None, False), name, None, target.lineno, None)
                return
            self.env[name] = v
            if value_expr is not None and self._actor_derived(value_expr):
                self.actor.add(name)
            else:
                self.actor.discard(name)
            slot = self._slot_of(value_expr) if value_expr is not None else None
            if slot:
                self.slot_alias[name] = slot
            else:
                self.slot_alias.pop(name, None)
        elif isinstance(target, ast.Attribute):
            self._record_write(target, v, value_expr, aug=aug)
            # observer-slot binding discovery: x.sanitizer = Sanitizer()
            if target.attr in cfg.observer_slots and v.cls is not None:
                self.slot_bindings.append((target.attr, v.cls))
        elif isinstance(target, ast.Subscript):
            self._record_write(target, v, value_expr, aug=aug)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self.assign(inner, _Value(v.root, None, v.tainted), None)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, v, None)

    def _record_write(
        self,
        target: ast.expr,
        v: _Value,
        value_expr: ast.expr | None,
        *,
        aug: bool = False,
    ) -> None:
        """A store through an attribute/subscript: classify by the base
        chain's root."""
        cfg = self.config
        if isinstance(target, ast.Attribute):
            base, attr = target.value, target.attr
        else:
            base, attr = target.value, "[]"
            chain = _walk_attr_chain(base)
            if chain:
                attr = chain[-1]
        bv = self.eval(base, reading=False)
        root = bv.root
        if isinstance(target, ast.Subscript):
            chain = _walk_attr_chain(base)
            if (
                chain
                and chain[-1] in cfg.partition_tables
                and root[0] != "fresh"
                and not self._actor_derived(target.slice)
            ):
                root = (root[0], root[1], True)
        # EFF202: host time stored into a simulated-time field.
        if (
            isinstance(target, ast.Attribute)
            and attr in cfg.sim_time_attrs
            and root[0] != "fresh"
            and v.tainted
        ):
            self.summary.flows.append(
                Eff2Flow(
                    sink="clock-field",
                    detail=f"host-time value stored into .{attr}",
                    origin=self.fi.qualname,
                    path=self.fi.path,
                    line=target.lineno,
                )
            )
        if v.tainted and root[0] != "fresh":
            if not (root[0] == "self" and attr in cfg.self_account_attrs):
                self.tainted_write_bad = True
        if root[0] == "fresh":
            return
        cls = bv.cls
        if isinstance(target, ast.Attribute) and isinstance(base, ast.Name) and base.id == "self":
            cls = self.fi.cls
        if cls is None:
            chain0 = _walk_attr_chain(base)
            if chain0 and chain0[0] == "self" and self.fi.is_method:
                # a container hanging directly off self: charge the
                # write to the defining class for the ownership check.
                cls = self.fi.cls
        self._add_write(root, attr, cls, target.lineno, target)

    def _add_write(
        self, root: tuple, attr: str, cls: str | None, line: int, target: ast.expr | None
    ) -> None:
        self.summary.writes.append(
            WriteRec(
                root=_root_str(root),
                attr=attr,
                cls=cls,
                foreign=root[2],
                origin=self.fi.qualname,
                path=self.fi.path,
                line=line,
            )
        )
        if target is not None:
            chain = _walk_attr_chain(target) or _walk_attr_chain(
                target.value if isinstance(target, (ast.Attribute, ast.Subscript)) else target
            )
            if chain and "counters" in chain[1:]:
                self.summary.counter_writes.append((self.fi.path, line))

    # -- expressions ----------------------------------------------------

    def eval(self, node: ast.expr, *, reading: bool = True) -> _Value:
        cfg = self.config
        if isinstance(node, ast.Name):
            name = node.id
            if name == "self" and self.fi.is_method:
                return _Value(("self", None, False), self.fi.cls)
            v = self.env.get(name)
            if v is not None:
                return v
            if name in self.fi.params:
                return _Value(("param", name, False), self.fi.param_types.get(name))
            return _Value(("global", None, False))
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value)
            if reading and base.root[0] != "fresh":
                self.summary.reads = True
            cls = None
            if base.cls is not None:
                cls = self.cb.attr_type(base.cls, node.attr)
            return _Value(base.root, cls, base.tainted)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            self.eval(node.slice)
            if reading and base.root[0] != "fresh":
                self.summary.reads = True
            root = base.root
            chain = _walk_attr_chain(node.value)
            if (
                chain
                and chain[-1] in cfg.partition_tables
                and root[0] != "fresh"
                and not self._actor_derived(node.slice)
            ):
                root = (root[0], root[1], True)
            return _Value(root, None, base.tainted)
        if isinstance(node, ast.Call):
            return self.call(node)
        if isinstance(node, (ast.BinOp, ast.UnaryOp)):
            ops = [node.left, node.right] if isinstance(node, ast.BinOp) else [node.operand]
            tainted = False
            for op in ops:
                tainted = self.eval(op).tainted or tainted
            return _Value(tainted=tainted)
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for c in node.comparators:
                self.eval(c)
            return _Value()
        if isinstance(node, ast.BoolOp):
            out = _Value()
            for vnode in node.values:
                v = self.eval(vnode)
                out = _Value(
                    _join_roots(out.root, v.root), out.cls or v.cls,
                    out.tainted or v.tainted, out.callables | v.callables,
                )
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            a, b = self.eval(node.body), self.eval(node.orelse)
            return _Value(
                _join_roots(a.root, b.root), a.cls or b.cls,
                a.tainted or b.tainted, a.callables | b.callables,
            )
        if isinstance(node, ast.Lambda):
            qual = self._lambda_qual(node)
            return _Value(callables=frozenset({qual}) if qual else frozenset())
        if isinstance(node, ast.NamedExpr):
            v = self.eval(node.value)
            self.assign(node.target, v, node.value)
            return v
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            tainted = False
            for elt in node.elts:
                tainted = self.eval(elt).tainted or tainted
            return _Value(tainted=tainted)
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self.eval(k)
            for vnode in node.values:
                self.eval(vnode)
            return _Value()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                it = self.eval(gen.iter)
                self.assign(gen.target, _Value(self._iter_elem_root(gen.iter, it)), gen.iter)
                for cond in gen.ifs:
                    self.eval(cond)
            if isinstance(node, ast.DictComp):
                self.eval(node.key)
                self.eval(node.value)
            else:
                self.eval(node.elt)
            return _Value()
        if isinstance(node, ast.JoinedStr):
            for vnode in node.values:
                if isinstance(vnode, ast.FormattedValue):
                    self.eval(vnode.value)
            return _Value()
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value) if node.value is not None else _Value()
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.eval(node.value)
            return _Value()
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        return _Value()

    # -- calls ----------------------------------------------------------

    def call(self, node: ast.Call) -> _Value:
        cfg = self.config
        arg_vals = [self.eval(a) for a in node.args]
        kw_vals = {kw.arg: self.eval(kw.value) for kw in node.keywords if kw.arg}
        for kw in node.keywords:
            if kw.arg is None:
                self.eval(kw.value)
        any_tainted = any(v.tainted for v in arg_vals) or any(
            v.tainted for v in kw_vals.values()
        )
        func = node.func

        # host primitives & builtins ------------------------------------
        host = self._host_call(func)
        if host is not None:
            kind, detail = host
            self.summary.host.append(
                HostRec(kind, detail, self.fi.qualname, self.fi.path, node.lineno)
            )
            return _Value(tainted=(kind == "wallclock"))
        if isinstance(func, ast.Name):
            name = func.id
            v = self.env.get(name)
            if v is not None and v.callables:
                return self._dispatch(node, tuple(sorted(v.callables)), None, arg_vals, kw_vals)
            if name in HOST_BUILTIN_CALLS:
                self.summary.host.append(
                    HostRec(
                        HOST_BUILTIN_CALLS[name], f"{name}()",
                        self.fi.qualname, self.fi.path, node.lineno,
                    )
                )
                return _Value()
            if name in PURE_BUILTINS:
                return _Value(tainted=any_tainted)
            nested = f"{self.fi.qualname}.<locals>.{name}"
            if nested in self.cb.functions:
                return self._dispatch(node, (nested,), None, arg_vals, kw_vals)
            resolved = self.cb.resolve_name_in_module(self.mod, name)
            if resolved is not None and resolved in self.cb.classes:
                init = self.cb.resolve_method(resolved, "__init__")
                targets = (init.qualname,) if init else ()
                out = self._dispatch(node, targets, _Value(), arg_vals, kw_vals)
                return _Value(cls=resolved, tainted=out.tainted)
            if resolved is not None and resolved in self.cb.functions:
                return self._dispatch(node, (resolved,), None, arg_vals, kw_vals)
            return _Value()

        if isinstance(func, ast.Subscript):
            # dispatch table: self._sync_dispatch[code](...)
            tv = func.value
            if (
                isinstance(tv, ast.Attribute)
                and isinstance(tv.value, ast.Name)
                and tv.value.id == "self"
                and self.fi.cls
            ):
                members = self.cb.attr_callables(self.fi.cls, tv.attr)
                if members:
                    self.eval(func.slice)
                    return self._dispatch(
                        node, tuple(sorted(members)),
                        _Value(("self", None, False), self.fi.cls), arg_vals, kw_vals,
                    )
            self.eval(func)
            return _Value()

        if not isinstance(func, ast.Attribute):
            self.eval(func)
            return _Value()

        # attribute call: resolve the receiver --------------------------
        method = func.attr
        if (
            isinstance(func.value, ast.Call)
            and isinstance(func.value.func, ast.Name)
            and func.value.func.id == "super"
            and self.fi.cls
        ):
            # super().m() binds to the *parent* MRO, still on self.
            mro = self.cb.mro(self.fi.cls)
            fi = self.cb.resolve_method(mro[1], method) if len(mro) > 1 else None
            return self._dispatch(
                node, (fi.qualname,) if fi is not None else (),
                _Value(("self", None, False), self.fi.cls), arg_vals, kw_vals,
            )
        recv = self.eval(func.value)
        self._note_observer_call(func, method, node.lineno)

        if method == self.config.collector_func:
            for a in node.args:
                for qual in self._callable_refs(a):
                    self.collector_regs.append(qual)

        if method in BUILTIN_MUTATORS:
            if recv.root[0] != "fresh":
                chain = _walk_attr_chain(func.value)
                self._add_write(
                    recv.root, chain[-1] if chain else method, recv.cls,
                    node.lineno, func.value,
                )
            return _Value(tainted=recv.tainted)
        if method in BUILTIN_ACCESSORS:
            if recv.root[0] != "fresh":
                self.summary.reads = True
            return _Value(recv.root, None, recv.tainted)

        targets: tuple[str, ...] = ()
        if isinstance(func.value, ast.Name) and func.value.id == "self" and self.fi.cls:
            fi = self.cb.resolve_method(self.fi.cls, method)
            if fi is not None:
                targets = (fi.qualname,)
        elif recv.cls is not None:
            fi = self.cb.resolve_method(recv.cls, method)
            if fi is not None:
                targets = (fi.qualname,)
        if not targets and not (method.startswith("__") and method.endswith("__")):
            # dunders never name-join: `x.__init__` style calls would
            # union every constructor in the repo into one site.
            targets = tuple(fi.qualname for fi in self.cb.join_by_name(method))
        return self._dispatch(node, targets, recv, arg_vals, kw_vals)

    def _dispatch(
        self,
        node: ast.Call,
        targets: tuple[str, ...],
        recv: _Value | None,
        arg_vals: list[_Value],
        kw_vals: dict[str, _Value],
    ) -> _Value:
        """Record a resolved call site and model its result."""
        cfg = self.config
        targets = tuple(
            t for t in targets if not any(t.endswith(s) for s in cfg.audit_sinks)
        )
        result_tainted = any(t in self.host_returning for t in targets)
        if targets:
            self.summary.calls.append(
                CallSite(
                    targets=targets,
                    receiver=recv.root if recv is not None else None,
                    arg_roots={
                        "__pos__": [v.root for v in arg_vals],
                        **{k: v.root for k, v in kw_vals.items()},
                    },
                    line=node.lineno,
                )
            )
        for t in targets:
            if t.endswith(".Network.send"):
                self.summary.calls_network_send = True
        self._check_schedule_site(node, targets, arg_vals, kw_vals)
        self._check_advance_sink(node, targets, arg_vals)
        # a *resolved* repo method's result stays reachable from its
        # receiver (it may hand out internal state); unresolved calls
        # (stdlib/third-party) and plain functions return fresh.
        root = FRESH
        if targets and recv is not None and recv.root[0] != "fresh":
            root = recv.root
        return _Value(root, None, result_tainted)

    def _check_schedule_site(
        self,
        node: ast.Call,
        targets: tuple[str, ...],
        arg_vals: list[_Value],
        kw_vals: dict[str, _Value],
    ) -> None:
        """Event-kernel ``schedule`` sites: worker-root discovery plus
        the EFF201 host-time-into-scheduling sink."""
        if not any(self._is_event_schedule(t) for t in targets):
            return
        # time argument: positional #1 (after kind) or time_ns kw.
        time_tainted = False
        if len(arg_vals) >= 2 and arg_vals[1].tainted:
            time_tainted = True
        kwv = kw_vals.get("time_ns")
        if kwv is not None and kwv.tainted:
            time_tainted = True
        if time_tainted:
            self.summary.flows.append(
                Eff2Flow(
                    sink="schedule",
                    detail="host-time value used as an event time",
                    origin=self.fi.qualname,
                    path=self.fi.path,
                    line=node.lineno,
                )
            )
        # callback argument -> worker root
        cb_expr = None
        for kw in node.keywords:
            if kw.arg == "callback":
                cb_expr = kw.value
        if cb_expr is None and len(node.args) >= 5:
            cb_expr = node.args[4]
        if cb_expr is None:
            return
        kind = "<unknown>"
        if node.args:
            chain = _walk_attr_chain(node.args[0])
            if chain:
                kind = chain[-1]
        for qual in self._callable_refs(cb_expr):
            self.schedule_callbacks.append((qual, kind, node.lineno))

    def _is_event_schedule(self, qual: str) -> bool:
        fi = self.cb.functions.get(qual)
        if fi is None or fi.cls is None or fi.name != "schedule":
            return False
        return any(
            self.cb.classes[q].name == "EventLoop" for q in self.cb.mro(fi.cls)
        )

    def _check_advance_sink(
        self, node: ast.Call, targets: tuple[str, ...], arg_vals: list[_Value]
    ) -> None:
        for t in targets:
            fi = self.cb.functions.get(t)
            if (
                fi is not None
                and fi.name in ("advance", "advance_to")
                and fi.cls is not None
                and self.cb.classes[fi.cls].name == "SimClock"
                and arg_vals
                and arg_vals[0].tainted
            ):
                self.summary.flows.append(
                    Eff2Flow(
                        sink="advance",
                        detail=f"host-time value passed to {fi.name}()",
                        origin=self.fi.qualname,
                        path=self.fi.path,
                        line=node.lineno,
                    )
                )
                return

    # -- small helpers --------------------------------------------------

    def _host_call(self, func: ast.expr) -> tuple[str, str] | None:
        """(kind, detail) when ``func`` is a host primitive."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.mod.wallclock_names:
                return ("wallclock", name)
            if name in self.mod.rng_names:
                return ("rng", name)
            return None
        chain = _walk_attr_chain(func)
        if not chain or len(chain) < 2:
            return None
        base = self.mod.imports.get(chain[0], chain[0])
        key = (base.split(".")[-1], chain[-1])
        if key in WALL_CLOCK_FUNCS:
            return ("wallclock", ".".join(chain))
        if key in AMBIENT_RNG_FUNCS:
            return ("rng", ".".join(chain))
        if key in HOST_IO_FUNCS:
            return ("io", ".".join(chain))
        if key in HOST_PROCESS_FUNCS:
            return ("process", ".".join(chain))
        if "environ" in chain:
            return ("env", ".".join(chain))
        if chain[0] == "sys" and chain[1] in ("stdout", "stderr", "stdin"):
            return ("io", ".".join(chain))
        return None

    def _slot_of(self, expr: ast.expr) -> str | None:
        """Slot name when ``expr`` reads an observer slot."""
        chain = _walk_attr_chain(expr)
        if chain and chain[-1] in self.config.observer_slots:
            return chain[-1]
        if isinstance(expr, ast.Name):
            return self.slot_alias.get(expr.id)
        return None

    def _note_observer_call(self, func: ast.Attribute, method: str, line: int) -> None:
        slot = self._slot_of(func.value)
        if slot:
            self.observer_calls.append((slot, method, line))

    def _callable_refs(self, expr: ast.expr) -> set[str]:
        """Callable qualnames an expression can evaluate to."""
        out: set[str] = set()
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Lambda):
                qual = self._lambda_qual(sub)
                if qual:
                    out.add(qual)
            elif (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and self.fi.cls
                and not isinstance(getattr(sub, "ctx", ast.Load()), ast.Store)
            ):
                fi = self.cb.resolve_method(self.fi.cls, sub.attr)
                if fi is not None:
                    out.add(fi.qualname)
            elif isinstance(sub, ast.Name):
                v = self.env.get(sub.id)
                if v is not None:
                    out |= v.callables
        return out

    def _lambda_qual(self, node: ast.Lambda) -> str | None:
        qual = f"{self.fi.qualname}.<locals>.<lambda>@{node.lineno}"
        if qual in self.cb.functions:
            return qual
        suffix = f".<lambda>@{node.lineno}"
        for q, fi in self.cb.functions.items():
            if fi.module == self.fi.module and q.endswith(suffix):
                return q
        return None

    def _actor_derived(self, expr: ast.expr) -> bool:
        """True when every leaf of ``expr`` traces back to the actor
        parameter (``thread``/``event``) or an alias of it."""
        if isinstance(expr, ast.Name):
            return expr.id in self.actor
        if isinstance(expr, ast.Attribute):
            return self._actor_derived(expr.value)
        if isinstance(expr, ast.BinOp):
            return self._actor_derived(expr.left) and self._actor_derived(expr.right)
        if isinstance(expr, ast.Subscript):
            return self._actor_derived(expr.value)
        if isinstance(expr, ast.Call):
            return all(self._actor_derived(a) for a in expr.args) and bool(expr.args)
        return False


# ----------------------------------------------------------------------
# driver: local rounds + interprocedural fixed point
# ----------------------------------------------------------------------


@dataclass(slots=True)
class Analysis:
    """Everything the rule layer needs."""

    codebase: Codebase
    summaries: dict[str, FunctionSummary]
    config: EffectsConfig
    #: discovery feeds joined over all functions
    observer_calls: list = field(default_factory=list)  # (slot, method, line, qual)
    slot_bindings: list = field(default_factory=list)  # (slot, cls)
    collector_regs: list = field(default_factory=list)  # qualnames
    schedule_callbacks: list = field(default_factory=list)  # (qual, kind, line, in_qual)


def analyze(cb: Codebase, config: EffectsConfig | None = None) -> Analysis:
    """Run the full analysis over a parsed codebase."""
    config = config or EffectsConfig()

    host_returning: frozenset = frozenset()
    passes: dict[str, _LocalPass] = {}
    for _ in range(8):
        passes = {
            q: _LocalPass(cb, fi, config, host_returning)
            for q, fi in cb.functions.items()
        }
        for p in passes.values():
            p.run()
        now = frozenset(
            q for q, p in passes.items() if p.summary.returns_host_time
        )
        if now == host_returning:
            break
        host_returning = host_returning | now

    summaries = {q: p.summary for q, p in passes.items()}
    analysis = Analysis(codebase=cb, summaries=summaries, config=config)
    for q, p in passes.items():
        analysis.observer_calls.extend((s, m, ln, q) for s, m, ln in p.observer_calls)
        analysis.slot_bindings.extend(p.slot_bindings)
        analysis.collector_regs.extend(p.collector_regs)
        analysis.schedule_callbacks.extend(
            (cq, kind, ln, q) for cq, kind, ln in p.schedule_callbacks
        )

    _propagate(cb, summaries)
    return analysis


def _propagate(cb: Codebase, summaries: dict[str, FunctionSummary]) -> None:
    """Monotone write/host propagation over resolved call sites."""
    for s in summaries.values():
        s.trans_writes = {w for w in s.writes}
        s.trans_host = set() if s.self_accounting else {h for h in s.host}
        s.trans_reads = s.reads

    changed = True
    while changed:
        changed = False
        for s in summaries.values():
            for cs in s.calls:
                for tq in cs.targets:
                    t = summaries.get(tq)
                    if t is None:
                        continue
                    if t.trans_reads and not s.trans_reads:
                        s.trans_reads = True
                        changed = True
                    if len(s.trans_host) < MAX_RECORDS:
                        before = len(s.trans_host)
                        s.trans_host |= t.trans_host
                        if len(s.trans_host) != before:
                            changed = True
                    if len(s.trans_writes) >= MAX_RECORDS:
                        continue
                    t_fi = cb.functions.get(tq)
                    for w in t.trans_writes:
                        rw = _rewrite(w, cs, t_fi)
                        if rw is not None and rw not in s.trans_writes:
                            s.trans_writes.add(rw)
                            changed = True
                            if len(s.trans_writes) >= MAX_RECORDS:
                                break


def _rewrite(w: WriteRec, cs: CallSite, t_fi: FunctionInfo | None) -> WriteRec | None:
    """Map a callee-frame write record into the caller's frame."""
    if w.root == "global":
        return w
    if w.root == "self":
        recv = cs.receiver
        if recv is None or recv[0] == "fresh":
            return None
        return WriteRec(
            root=_root_str(recv), attr=w.attr, cls=w.cls,
            foreign=w.foreign or recv[2], origin=w.origin, path=w.path, line=w.line,
        )
    # param:<name>
    pname = w.root.split(":", 1)[1]
    root = None
    if t_fi is not None:
        params = list(t_fi.params)
        if t_fi.is_method:
            params = params[1:]
        pos = cs.arg_roots.get("__pos__", [])
        if pname in cs.arg_roots:
            root = cs.arg_roots[pname]
        elif pname in params and params.index(pname) < len(pos):
            root = pos[params.index(pname)]
    if root is None or root[0] == "fresh":
        return None
    return WriteRec(
        root=_root_str(root), attr=w.attr, cls=w.cls,
        foreign=w.foreign or root[2], origin=w.origin, path=w.path, line=w.line,
    )
