"""The effect lattice and per-function summaries.

Every function in ``src/repro/`` is assigned a value from a four-point
lattice ordered by how much of the outside world the function can
observe or perturb::

    pure  <  reads-sim-state  <  writes-sim-state  <  host-effect

* ``pure`` — no reads or writes of state reachable from the caller, no
  host interaction; the result depends only on the arguments' values.
* ``reads-sim-state`` — reads attributes/elements of objects owned by
  the simulation (``self``, parameters, module globals) but never
  mutates them.
* ``writes-sim-state`` — mutates simulation-owned state.  Summaries
  keep the *write set* (root + attribute + class when known), not just
  the bit, because the observer-purity rule distinguishes writes to an
  observer's own state (allowed) from writes to engine state (EFF102).
* ``host-effect`` — touches the host: wall clock, ambient RNG,
  filesystem/console I/O, environment, process machinery.

Joins are ``max``; the fixed-point propagation in
:mod:`repro.checks.effects.infer` is monotone over this order, so it
terminates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "Effect",
    "EFFECT_NAMES",
    "WriteRec",
    "HostRec",
    "Eff2Flow",
    "CallSite",
    "FunctionSummary",
]


class Effect(enum.IntEnum):
    """One point of the effect lattice (join = ``max``)."""

    PURE = 0
    READS_SIM = 1
    WRITES_SIM = 2
    HOST = 3


EFFECT_NAMES = {
    Effect.PURE: "pure",
    Effect.READS_SIM: "reads-sim-state",
    Effect.WRITES_SIM: "writes-sim-state",
    Effect.HOST: "host-effect",
}

#: root kinds a write (or any rooted value) can have.  ``fresh`` roots
#: (locally constructed objects) are dropped before they reach a
#: summary: mutating an object the function itself created is not an
#: observable effect.
ROOT_SELF = "self"
ROOT_PARAM = "param"
ROOT_GLOBAL = "global"
ROOT_FRESH = "fresh"


@dataclass(frozen=True, slots=True)
class WriteRec:
    """One mutation of caller-visible state, root-relative.

    ``root`` is ``"self"``, ``"param:<name>"`` or ``"global"`` — the
    *syntactic origin* of the reference chain that was written through.
    Interprocedural propagation rewrites the root at each call site
    (callee ``self`` becomes the receiver's root, callee parameters
    become the argument roots), so at an observer entry point the root
    answers the ownership question directly: ``self`` is
    observer-owned, anything else belongs to the engine.
    """

    root: str
    #: last attribute (or ``[]`` for a bare subscript store) written.
    attr: str
    #: class of the written object when statically known (annotation or
    #: constructor), else None.
    cls: str | None
    #: True when the reference chain passed through a partition-owned
    #: table (``threads_by_id``, ``heaps``, ``cluster``, ...) subscripted
    #: by an index *not* derived from the dispatching actor — the EFF3xx
    #: cross-partition signal.
    foreign: bool
    #: function the write syntactically occurs in (reporting).
    origin: str
    path: str
    line: int


@dataclass(frozen=True, slots=True)
class HostRec:
    """One host interaction: wall clock, RNG, I/O, env, process."""

    kind: str  # "wallclock" | "rng" | "io" | "env" | "process"
    detail: str
    origin: str
    path: str
    line: int


@dataclass(frozen=True, slots=True)
class Eff2Flow:
    """A host-time value reaching a simulated-time sink (EFF2xx)."""

    sink: str  # "schedule" | "advance" | "clock-field"
    detail: str
    origin: str
    path: str
    line: int


@dataclass(slots=True)
class CallSite:
    """One resolved call inside a function body."""

    #: resolved callee qualnames (may be a name-based join).
    targets: tuple[str, ...]
    #: root of the receiver for method calls (None for plain calls);
    #: a ``(kind, detail, foreign)`` triple.
    receiver: tuple | None
    #: callee parameter name -> argument root triple (positional args
    #: matched against each target's signature at propagation time are
    #: pre-resolved per target in :mod:`infer`).
    arg_roots: dict
    line: int


#: per-function cap on propagated write/host records.  The cap bounds
#: the fixed point; overflow only costs report completeness (the
#: *level* is exact — flags saturate before the list does).
MAX_RECORDS = 64


@dataclass(slots=True)
class FunctionSummary:
    """Local + transitive effect facts for one function."""

    qualname: str
    path: str
    line: int
    is_method: bool
    # -- local facts (one AST pass) --
    reads: bool = False
    writes: list[WriteRec] = field(default_factory=list)
    host: list[HostRec] = field(default_factory=list)
    flows: list[Eff2Flow] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    returns_host_time: bool = False
    calls_network_send: bool = False
    #: all host use is wall-clock reads folded into self-owned
    #: ``self_ns`` accounting (the sanctioned observer overhead meter).
    self_accounting: bool = False
    #: counter-table writes (chain through a ``counters`` attr) for the
    #: semantic SIM009 feed: (path, line).
    counter_writes: list = field(default_factory=list)
    # -- transitive facts (fixed point over the call graph) --
    trans_writes: set = field(default_factory=set)  # set[WriteRec]
    trans_host: set = field(default_factory=set)  # set[HostRec]
    trans_reads: bool = False

    def effect(self) -> Effect:
        """The function's transitive lattice value."""
        if self.trans_host:
            return Effect.HOST
        if self.trans_writes:
            return Effect.WRITES_SIM
        if self.trans_reads:
            return Effect.READS_SIM
        return Effect.PURE

    def writes_kind(self) -> str:
        """``"none"``, ``"self"`` or ``"other"`` over the transitive
        write set (``other`` wins)."""
        kinds = {w.root == ROOT_SELF for w in self.trans_writes}
        if not kinds:
            return "none"
        return "self" if kinds == {True} else "other"
