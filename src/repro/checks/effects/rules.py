"""The three EFF rule families over the inferred summaries.

EFF1xx — observer purity
    Everything reachable from the nullable observer slots
    (``hlrc.sanitizer`` / ``hlrc.racedetector`` / ``hlrc.tracer``) and
    from registered telemetry collectors must stay at or below
    ``reads-sim-state``.  Writes rooted at the observer itself are its
    own state and always allowed; writes into whitelisted
    observer-owned classes/attributes pass the ownership check; wall
    clock use that only feeds the sanctioned ``self_ns`` self-overhead
    meter is exempt.
    * EFF101 — host effect reachable from an observer entry point
    * EFF102 — observer writes engine-owned state

EFF2xx — clock separation
    Host time must never flow into simulated time.
    * EFF201 — host-time value used as an event-schedule time
    * EFF202 — host-time value advances or is stored into a sim clock

EFF3xx — partition safety
    Callables dispatched inside ``PartitionedEventLoop`` workers may
    only touch state of other partitions through the network (a write
    modelling the receipt of a message lives in a function that also
    performs the ``Network.send``).  Callbacks scheduled as
    ``BARRIER_RELEASE`` run with every partition aligned at the barrier
    frontier and are exempt.
    * EFF301 — cross-partition (foreign-indexed table) write without a
      mediating ``Network.send`` in the same function
    * EFF302 — host effect inside the worker-dispatched closure (the
      semantic form of simlint SIM010)

Suppression: a trailing ``# effects: disable=EFF301`` (comma list, or
``all``) on the offending line. Suppressed findings are kept on the
report (they document sanctioned seams) but do not gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.checks.effects.codebase import Codebase
from repro.checks.effects.infer import Analysis, EffectsConfig
from repro.checks.effects.lattice import EFFECT_NAMES, FunctionSummary

__all__ = ["Finding", "EffectsReport", "run_rules", "RULES"]

RULES = {
    "EFF101": "host effect reachable from an observer entry point",
    "EFF102": "observer writes engine-owned state",
    "EFF201": "host-time value used as an event-schedule time",
    "EFF202": "host-time value flows into a simulated clock",
    "EFF301": "cross-partition write without Network mediation in a worker callable",
    "EFF302": "host effect inside the worker-dispatched closure",
}

_DISABLE_RE = re.compile(r"#\s*effects:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation, anchored at the offending source line."""

    path: str
    line: int
    code: str
    message: str
    #: rule-family root the fact is reachable from ("" for EFF2xx).
    root: str = ""

    def render(self) -> str:
        via = f" [reachable from {self.root}]" if self.root else ""
        return f"{self.path}:{self.line}: {self.code} {self.message}{via}"


@dataclass(slots=True)
class EffectsReport:
    """Analysis output: findings + the machine-readable summary feed."""

    findings: list[Finding]
    suppressed: list[Finding]
    analysis: Analysis
    #: observer entry-point qualname -> how it was discovered.
    observer_roots: dict[str, str] = field(default_factory=dict)
    #: worker callback qualname -> {"kind", "status", "line"}.
    worker_roots: dict[str, dict] = field(default_factory=dict)
    #: every function reachable from a non-exempt worker root.
    worker_closure: list[str] = field(default_factory=list)

    @property
    def summaries(self) -> dict[str, FunctionSummary]:
        return self.analysis.summaries

    def to_json(self) -> dict:
        from repro.checks.effects.summary import build_doc

        return build_doc(self)


def _disabled(cb: Codebase, path_index: dict[str, list[str]], f: Finding) -> bool:
    lines = path_index.get(f.path)
    if lines is None or not (1 <= f.line <= len(lines)):
        return False
    m = _DISABLE_RE.search(lines[f.line - 1])
    if not m:
        return False
    codes = {c.strip() for c in m.group(1).split(",")}
    return f.code in codes or "all" in codes


def run_rules(analysis: Analysis) -> EffectsReport:
    """Evaluate every rule family; split findings by suppression."""
    cb = analysis.codebase
    cfg = analysis.config
    summaries = analysis.summaries
    raw: list[Finding] = []

    # ------------------------------------------------------------------
    # EFF1xx: observer purity
    # ------------------------------------------------------------------
    slot_classes: dict[str, set[str]] = {s: set() for s in cfg.observer_slots}
    for slot, cls in analysis.slot_bindings:
        slot_classes[slot].add(cls)
    for name in cfg.observer_class_hints:
        for qual in cb.classes_by_name.get(name, []):
            # hints bind to every slot: the wiring may change, the
            # class's purity obligation does not.
            for slot in slot_classes:
                slot_classes[slot].add(qual)

    observer_roots: dict[str, str] = {}
    for slot, method, _line, _site in analysis.observer_calls:
        if method.startswith("attach"):
            # wiring-phase plumbing (``attach_kernel`` et al.) runs at
            # setup, not as a runtime hook; purity applies to hooks.
            continue
        for cls in sorted(slot_classes.get(slot, ())):
            fi = cb.resolve_method(cls, method)
            if fi is not None:
                observer_roots.setdefault(fi.qualname, f"slot {slot}")
    for qual in analysis.collector_regs:
        observer_roots.setdefault(qual, "telemetry collector")

    owned_simple = set(cfg.owned_classes)
    for root, how in sorted(observer_roots.items()):
        s = summaries.get(root)
        if s is None:
            continue
        for h in sorted(s.trans_host, key=lambda h: (h.path, h.line)):
            raw.append(
                Finding(
                    h.path, h.line, "EFF101",
                    f"host effect ({h.kind}: {h.detail}) in {h.origin}, "
                    f"reachable from observer {how}",
                    root=root,
                )
            )
        for w in sorted(s.trans_writes, key=lambda w: (w.path, w.line)):
            if w.root == "self":
                continue
            if w.cls is not None and w.cls.rsplit(".", 1)[-1] in owned_simple:
                continue
            if w.attr in cfg.owned_attrs:
                continue
            raw.append(
                Finding(
                    w.path, w.line, "EFF102",
                    f"{w.origin} writes engine state (.{w.attr} via {w.root}"
                    + (f", {w.cls.rsplit('.', 1)[-1]}" if w.cls else "")
                    + f"), reachable from observer {how}",
                    root=root,
                )
            )

    # ------------------------------------------------------------------
    # EFF2xx: clock separation (every function, not just closures)
    # ------------------------------------------------------------------
    for q in sorted(summaries):
        for fl in summaries[q].flows:
            code = "EFF201" if fl.sink == "schedule" else "EFF202"
            raw.append(Finding(fl.path, fl.line, code, f"{fl.detail} in {fl.origin}"))

    # ------------------------------------------------------------------
    # EFF3xx: partition safety over the worker-dispatched closure
    # ------------------------------------------------------------------
    worker_roots: dict[str, dict] = {}
    for qual, kind, line, _site in analysis.schedule_callbacks:
        exempt = kind in cfg.exempt_event_kinds
        entry = worker_roots.setdefault(
            qual, {"kind": kind, "status": "exempt" if exempt else "certified", "line": line}
        )
        if not exempt and entry["status"] == "exempt" and entry["kind"] != kind:
            entry["status"] = "certified"
            entry["kind"] = kind

    closure: set[str] = set()
    frontier = [q for q, e in worker_roots.items() if e["status"] != "exempt"]
    while frontier:
        q = frontier.pop()
        if q in closure:
            continue
        closure.add(q)
        s = summaries.get(q)
        if s is None:
            continue
        for cs in s.calls:
            for t in cs.targets:
                if t not in closure and t in summaries:
                    frontier.append(t)

    seen: set[tuple[str, int, str]] = set()
    for q in sorted(closure):
        s = summaries[q]
        if not s.calls_network_send:
            for w in s.writes:
                if not w.foreign:
                    continue
                key = (w.path, w.line, "EFF301")
                if key in seen:
                    continue
                seen.add(key)
                raw.append(
                    Finding(
                        w.path, w.line, "EFF301",
                        f"{w.origin} writes cross-partition state (.{w.attr} via "
                        f"{w.root}) with no Network.send mediating it",
                        root=q,
                    )
                )
        if not s.self_accounting:
            for h in s.host:
                key = (h.path, h.line, "EFF302")
                if key in seen:
                    continue
                seen.add(key)
                raw.append(
                    Finding(
                        h.path, h.line, "EFF302",
                        f"host effect ({h.kind}: {h.detail}) in worker-dispatched {h.origin}",
                        root=q,
                    )
                )

    # ------------------------------------------------------------------
    # suppression split
    # ------------------------------------------------------------------
    path_index = {m.path: m.source_lines for m in cb.modules.values()}
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for f in sorted(set(raw), key=lambda f: (f.path, f.line, f.code, f.message)):
        (suppressed if _disabled(cb, path_index, f) else findings).append(f)

    # a worker root whose closure carries an unsuppressed EFF3xx is not
    # certified — the runtime validator refuses to dispatch it.
    bad_roots = {f.root for f in findings if f.code.startswith("EFF3")}
    for qual, entry in worker_roots.items():
        if entry["status"] == "certified" and _reaches(summaries, qual, bad_roots):
            entry["status"] = "violation"

    report = EffectsReport(
        findings=findings,
        suppressed=suppressed,
        analysis=analysis,
        observer_roots=observer_roots,
        worker_roots=worker_roots,
        worker_closure=sorted(closure),
    )
    return report


def _reaches(
    summaries: dict[str, FunctionSummary], root: str, bad: set[str]
) -> bool:
    if not bad:
        return False
    seen: set[str] = set()
    frontier = [root]
    while frontier:
        q = frontier.pop()
        if q in bad:
            return True
        if q in seen:
            continue
        seen.add(q)
        s = summaries.get(q)
        if s is None:
            continue
        for cs in s.calls:
            frontier.extend(t for t in cs.targets if t not in seen)
    return False


def render_summary_line(report: EffectsReport) -> str:
    """The one-line gate verdict."""
    summaries = report.summaries
    by_level: dict[str, int] = {}
    for s in summaries.values():
        name = EFFECT_NAMES[s.effect()]
        by_level[name] = by_level.get(name, 0) + 1
    levels = ", ".join(f"{by_level.get(n, 0)} {n}" for n in EFFECT_NAMES.values())
    return (
        f"effects: {len(summaries)} functions ({levels}); "
        f"{len(report.observer_roots)} observer roots, "
        f"{len(report.worker_roots)} worker callables, "
        f"{len(report.suppressed)} suppressed finding(s)"
    )
