"""The machine-readable ``effects.json`` summary.

Written by ``python -m repro.checks effects --write``, committed at the
repository root, and consumed by two clients:

* :mod:`repro.checks.simlint` sharpens SIM009/SIM010 from syntactic to
  semantic using the ``counter_writes`` / ``host_in_worker`` feeds and
  the worker-closure module list;
* :class:`repro.sim.partition.PartitionedEventLoop` validates its
  worker-dispatched callables against ``worker.roots`` at construction
  and (memoized) per ``schedule()`` call.

This module is deliberately dependency-free (json + pathlib only): the
partition kernel imports it lazily on its hot construction path and
must not drag the analysis machinery — or anything that imports the
simulator — into scope.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["EffectsSummary", "build_doc", "DEFAULT_FILENAME", "default_summary_path"]

DEFAULT_FILENAME = "effects.json"
SCHEMA_VERSION = 1


def default_summary_path() -> Path | None:
    """Walk up from this package towards the repository root looking
    for the committed summary."""
    for parent in Path(__file__).resolve().parents:
        candidate = parent / DEFAULT_FILENAME
        if candidate.is_file():
            return candidate
    return None


class EffectsSummary:
    """Read-only view over a loaded ``effects.json``."""

    __slots__ = ("doc", "path")

    def __init__(self, doc: dict, path: str | None = None) -> None:
        self.doc = doc
        self.path = path

    @classmethod
    def load(cls, path: str | Path | None = None) -> "EffectsSummary | None":
        """Load the summary; None when absent or unreadable (callers
        degrade to unvalidated operation — the static gate, not the
        runtime check, is the enforcement point)."""
        p = Path(path) if path is not None else default_summary_path()
        if p is None or not p.is_file():
            return None
        try:
            doc = json.loads(p.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("version") != SCHEMA_VERSION:
            return None
        return cls(doc, str(p))

    # -- worker validation ---------------------------------------------

    @property
    def worker_roots(self) -> dict:
        return self.doc.get("worker", {}).get("roots", {})

    def worker_status(self, qualname: str) -> str | None:
        """``"certified"`` / ``"exempt"`` / ``"violation"`` for a known
        worker callable, None for callables the analysis never saw."""
        entry = self.worker_roots.get(qualname)
        return entry.get("status") if isinstance(entry, dict) else None

    def violations(self) -> list[str]:
        """Worker callables the analysis refused to certify."""
        return sorted(
            q for q, e in self.worker_roots.items()
            if isinstance(e, dict) and e.get("status") == "violation"
        )

    # -- simlint feeds --------------------------------------------------

    @property
    def counter_writes(self) -> dict:
        """path -> [[line, qualname], ...] of alias-tracked counter
        mutations outside the metrics registry."""
        return self.doc.get("counter_writes", {})

    @property
    def host_in_worker(self) -> dict:
        """path -> [[line, qualname, kind], ...] of host effects inside
        the worker closure."""
        return self.doc.get("host_in_worker", {})

    @property
    def worker_modules(self) -> list[str]:
        """Modules with at least one function in the worker closure."""
        return self.doc.get("worker", {}).get("modules", [])

    def function_effect(self, qualname: str) -> str | None:
        entry = self.doc.get("functions", {}).get(qualname)
        return entry.get("effect") if isinstance(entry, dict) else None


def build_doc(report) -> dict:
    """Serialize an :class:`~repro.checks.effects.rules.EffectsReport`.

    Paths are stored relative to the repository layout's ``src``
    ancestor when possible so the summary is position-independent.
    """
    from repro.checks.effects.lattice import EFFECT_NAMES

    analysis = report.analysis
    summaries = analysis.summaries

    def rel(path: str) -> str:
        parts = Path(path).parts
        if "src" in parts:
            i = len(parts) - 1 - list(reversed(parts)).index("src")
            return "/".join(parts[i:])
        return path

    functions = {}
    for q in sorted(summaries):
        s = summaries[q]
        functions[q] = {
            "effect": EFFECT_NAMES[s.effect()],
            "writes": s.writes_kind(),
            "host_kinds": sorted({h.kind for h in s.trans_host}),
            "self_accounting": s.self_accounting,
            "path": rel(s.path),
            "line": s.line,
        }

    counter_writes: dict[str, list] = {}
    host_in_worker: dict[str, list] = {}
    closure = set(report.worker_closure)
    for q in sorted(summaries):
        s = summaries[q]
        for path, line in s.counter_writes:
            mod = _module_of(analysis.codebase, path)
            if mod is not None and ".obs" in f".{mod}":
                continue  # the registry's own mutations are sanctioned
            counter_writes.setdefault(rel(path), []).append([line, q])
        if q in closure and not s.self_accounting:
            for h in s.host:
                host_in_worker.setdefault(rel(h.path), []).append([h.line, q, h.kind])

    worker_modules = sorted(
        {
            analysis.codebase.functions[q].module
            for q in closure
            if q in analysis.codebase.functions
        }
    )

    return {
        "version": SCHEMA_VERSION,
        "generated_by": "python -m repro.checks effects --write",
        "rules": {
            "EFF1xx": "observer purity",
            "EFF2xx": "clock separation",
            "EFF3xx": "partition safety",
        },
        "functions": functions,
        "observers": {
            "roots": {q: how for q, how in sorted(report.observer_roots.items())},
        },
        "worker": {
            "roots": report.worker_roots,
            "closure": report.worker_closure,
            "modules": worker_modules,
        },
        "counter_writes": counter_writes,
        "host_in_worker": host_in_worker,
        "suppressed": [
            [rel(f.path), f.line, f.code] for f in report.suppressed
        ],
    }


def _module_of(cb, path: str) -> str | None:
    for m in cb.modules.values():
        if m.path == path:
            return m.name
    return None
