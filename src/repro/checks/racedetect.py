"""FastTrack-style happens-before data race detector for the GOS
(``DJVM(racecheck=True)``).

The sanitizer (:mod:`repro.checks.sanitizer`) validates *protocol*
invariants — a workload whose application-level sharing is completely
unsynchronized still passes SAN001–SAN007.  This module closes that gap
with a vector-clock happens-before analysis at object granularity (the
granularity the whole runtime operates at, and the one DJXPerf-style
object-centric profiling argues is the right level for managed
runtimes): two accesses to one GOS object, at least one a write, by two
different threads, race unless a chain of synchronization edges orders
them.

Happens-before edges tracked
----------------------------

========================  ==================================================
program order             every op of one thread is ordered by its issue
                          sequence (per-thread epoch ``(tid, clock)``)
release -> acquire        ``DistributedLock``: the releaser's vector clock
                          is stored on the lock; the next grantee joins it
barrier release           a ``Barrier`` episode joins *all* participants'
                          clocks and restarts each with a fresh epoch —
                          barriers are total synchronization points
diff propagation          an HLRC write notice carries its publisher's
                          vector clock; applying notices at a node joins
                          them into the node's clock and into the applying
                          thread (the simulated data flow: once a diff is
                          applied, later readers observe its effects)
========================  ==================================================

The diff-propagation edge is deliberately *coherence-conservative*: HLRC
applies every pending notice under any acquire, so the detector orders a
write under lock A before a later acquire of lock B that applied its
notice.  That mirrors what the simulated memory actually does (the diff
is visible), trading a little detection strength for zero false
positives on protocol-ordered data.  Truly unsynchronized sharing never
publishes a notice between the accesses, so real races are unaffected.

Detection state per object is classic FastTrack (Flanagan & Freund,
PLDI'09): a last-write *epoch*, and a last-read epoch that escalates to
a read vector clock only while reads are concurrent — O(1) per access
on the overwhelmingly common same-epoch paths.

Modes
-----

* **online** — ``DJVM(racecheck=True)`` raises a structured
  :class:`DataRaceError` at the second racing access;
  ``DJVM(racecheck="collect")`` records :class:`RaceReport`\\ s in
  ``djvm.racedetector.reports`` instead.
* **offline** — ``DJVM(racecheck="record")`` only records the compact
  race-relevant operation trace (an auxiliary audit channel of the event
  kernel, :attr:`repro.sim.events.EventLoop.aux_trace`);
  :func:`replay_trace` re-runs the analysis over a recorded trace
  without re-executing the workload and produces identical reports.

Like the sanitizer, the detector rides a nullable ``hlrc.racedetector``
slot consulted on the single access hook and at sync operations: it
observes, never advances simulated clocks, so a ``racecheck`` run is
byte-identical to a plain one and the fast dispatch path stays intact
when the slot is ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "AccessSite",
    "RaceReport",
    "DataRaceError",
    "RaceDetector",
    "replay_trace",
    "TR_ACCESS",
    "TR_ACQUIRE",
    "TR_RELEASE",
    "TR_BARRIER",
    "TR_NOTICE",
    "TR_APPLY",
]

#: trace op codes (first field after time_ns in an aux-trace tuple).
TR_ACCESS = 0  # (t, TR_ACCESS, tid, obj_id, is_write, interval_id)
TR_ACQUIRE = 1  # (t, TR_ACQUIRE, tid, lock_id)
TR_RELEASE = 2  # (t, TR_RELEASE, tid, lock_id)
TR_BARRIER = 3  # (t, TR_BARRIER, barrier_id, waiter_tids)
TR_NOTICE = 4  # (t, TR_NOTICE, tid, obj_id, version)
TR_APPLY = 5  # (t, TR_APPLY, tid, node_id, start, end)


@dataclass(frozen=True, slots=True)
class AccessSite:
    """Where one racing access happened in the simulated execution."""

    thread_id: int
    kind: str  # "read" | "write"
    interval_id: int
    time_ns: int
    #: detector-global operation sequence number (total order of
    #: observed operations — stable across online/offline analysis).
    seq: int

    def render(self) -> str:
        """One-line human form of the site."""
        return (
            f"{self.kind} by thread {self.thread_id} "
            f"(interval {self.interval_id}, t={self.time_ns} ns, op #{self.seq})"
        )


@dataclass(frozen=True, slots=True)
class RaceReport:
    """One detected data race: two conflicting accesses unordered by
    happens-before, with the evidence of *why* they are unordered."""

    obj_id: int
    class_name: str
    #: "write-write" | "write-read" | "read-write" (first kind-second kind).
    kind: str
    first: AccessSite
    second: AccessSite
    #: vector-clock evidence: the first access's epoch vs. the second
    #: thread's knowledge of that thread at the moment of the access.
    evidence: str
    #: last synchronization op each involved thread performed before the
    #: racing access (the ops that *failed* to order the pair).
    first_sync: str = "<no sync op yet>"
    second_sync: str = "<no sync op yet>"

    def render(self) -> str:
        """Multi-line human-readable report."""
        return (
            f"data race on object {self.obj_id} ({self.class_name}), {self.kind}:\n"
            f"  first:  {self.first.render()}\n"
            f"          last sync: {self.first_sync}\n"
            f"  second: {self.second.render()}\n"
            f"          last sync: {self.second_sync}\n"
            f"  unordered because {self.evidence}"
        )


class DataRaceError(AssertionError):
    """Raised by the online detector at the second racing access."""

    def __init__(self, report: RaceReport) -> None:
        self.report = report
        super().__init__(report.render())


class _ObjState:
    """FastTrack per-object metadata: last-write epoch + adaptive
    last-read representation (epoch, escalated to a vector clock only
    while reads are concurrent)."""

    __slots__ = (
        "write_tid",
        "write_clk",
        "write_site",
        "read_tid",
        "read_clk",
        "read_vc",
        "read_sites",
    )

    def __init__(self) -> None:
        self.write_tid: int | None = None
        self.write_clk = 0
        self.write_site: AccessSite | None = None
        self.read_tid: int | None = None
        self.read_clk = 0
        #: tid -> clock; non-None only while reads are concurrent.
        self.read_vc: dict[int, int] | None = None
        #: tid -> site of that thread's last tracked read (reporting only).
        self.read_sites: dict[int, AccessSite] = {}


class RaceDetector:
    """Happens-before race analysis over the DJVM's operation stream.

    The same instance serves three roles, selected by construction
    flags: online raising detector (``raise_on_race=True``), online
    collecting detector (reports accumulate in :attr:`reports`), and
    pure trace recorder (``detect=False, keep_trace=True``).  The
    primitive ``record_*`` methods take plain ids so :func:`replay_trace`
    can drive them from a recorded trace; the ``on_*`` methods are the
    thread-facing observer surface the HLRC engine calls.
    """

    def __init__(
        self,
        *,
        raise_on_race: bool = False,
        detect: bool = True,
        keep_trace: bool = False,
        resolver: "Callable[[int], str] | None" = None,
    ) -> None:
        self.raise_on_race = raise_on_race
        self.detect = detect
        self.keep_trace = keep_trace
        #: obj_id -> class name, for reports (attached by the DJVM).
        self._resolver = resolver
        #: detected races (collect mode; raise mode stops at the first).
        self.reports: list[RaceReport] = []
        #: recorded operation trace (``keep_trace=True`` only).
        self.trace: list[tuple] = []
        #: event kernel whose aux channel mirrors the trace (optional).
        self._kernel = None
        #: thread_id -> vector clock (dict tid -> clock).
        self._vc: dict[int, dict[int, int]] = {}
        #: lock_id -> releaser's clock snapshot at last release.
        self._lock_vc: dict[int, dict[int, int]] = {}
        #: node_id -> clock accumulated from notices applied at the node.
        self._node_vc: dict[int, dict[int, int]] = {}
        #: publisher clock snapshot per write notice, parallel to the
        #: HLRC global notice log (index-aligned).
        self._notice_vc: list[dict[int, int]] = []
        #: per-object FastTrack metadata.
        self._meta: dict[int, _ObjState] = {}
        #: last sync-op description per thread (report evidence).
        self._last_sync: dict[int, str] = {}
        #: (obj_id, first_tid, second_tid, kind) already reported.
        self._reported: set[tuple[int, int, int, str]] = set()
        #: total operations observed / accesses race-checked.
        self.ops_observed = 0
        self.accesses_checked = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_resolver(self, resolver: "Callable[[int], str]") -> None:
        """Attach an ``obj_id -> class name`` resolver for reports."""
        self._resolver = resolver

    def attach_kernel(self, kernel) -> None:
        """Mirror recorded trace entries into the event kernel's
        auxiliary audit channel (``EventLoop.aux_trace``)."""
        self._kernel = kernel
        if self.keep_trace:
            kernel.keep_aux = True

    def _class_of(self, obj_id: int) -> str:
        if self._resolver is None:
            return "<unresolved class>"
        return self._resolver(obj_id)

    def _emit(self, entry: tuple) -> None:
        self.trace.append(entry)
        if self._kernel is not None:
            self._kernel.record_aux(entry)

    def _clock_of(self, tid: int) -> dict[int, int]:
        vc = self._vc.get(tid)
        if vc is None:
            vc = self._vc[tid] = {tid: 1}
        return vc

    @staticmethod
    def _join(into: dict[int, int], other: dict[int, int]) -> None:
        for t, c in other.items():  # insertion-ordered source, commutative max
            if into.get(t, 0) < c:
                into[t] = c

    # ------------------------------------------------------------------
    # race reporting
    # ------------------------------------------------------------------

    def _race(
        self,
        obj_id: int,
        kind: str,
        first: AccessSite,
        first_clk: int,
        known_clk: int,
        second: AccessSite,
    ) -> None:
        key = (obj_id, first.thread_id, second.thread_id, kind)
        if key in self._reported:
            return
        self._reported.add(key)
        report = RaceReport(
            obj_id=obj_id,
            class_name=self._class_of(obj_id),
            kind=kind,
            first=first,
            second=second,
            evidence=(
                f"thread {first.thread_id}'s {first.kind} has epoch "
                f"{first_clk}@T{first.thread_id} but thread "
                f"{second.thread_id}'s vector clock only covers "
                f"T{first.thread_id} up to {known_clk} — no "
                "release->acquire, barrier, or diff-propagation chain "
                "connects the two accesses"
            ),
            first_sync=self._last_sync.get(first.thread_id, "<no sync op yet>"),
            second_sync=self._last_sync.get(second.thread_id, "<no sync op yet>"),
        )
        self.reports.append(report)
        if self.raise_on_race:
            raise DataRaceError(report)

    # ------------------------------------------------------------------
    # primitive operation stream (shared by online hooks and replay)
    # ------------------------------------------------------------------

    def record_access(
        self, time_ns: int, tid: int, obj_id: int, is_write: bool, interval_id: int
    ) -> None:
        """One GOS access by ``tid``; runs the FastTrack state machine."""
        self.ops_observed += 1
        if self.keep_trace:
            self._emit((time_ns, TR_ACCESS, tid, obj_id, is_write, interval_id))
        if not self.detect:
            return
        self.accesses_checked += 1
        vc = self._clock_of(tid)
        clk = vc[tid]
        st = self._meta.get(obj_id)
        if st is None:
            st = self._meta[obj_id] = _ObjState()
        if is_write:
            if st.write_tid == tid and st.write_clk == clk:
                return  # same-epoch write: already checked
            site = AccessSite(tid, "write", interval_id, time_ns, self.ops_observed)
            wt = st.write_tid
            if wt is not None and wt != tid and st.write_clk > vc.get(wt, 0):
                self._race(obj_id, "write-write", st.write_site, st.write_clk, vc.get(wt, 0), site)
            if st.read_vc is not None:
                for rt, rc in st.read_vc.items():  # insertion-ordered dict
                    if rt != tid and rc > vc.get(rt, 0):
                        self._race(
                            obj_id, "read-write", st.read_sites[rt], rc, vc.get(rt, 0), site
                        )
            elif st.read_tid is not None and st.read_tid != tid and st.read_clk > vc.get(st.read_tid, 0):
                self._race(
                    obj_id,
                    "read-write",
                    st.read_sites[st.read_tid],
                    st.read_clk,
                    vc.get(st.read_tid, 0),
                    site,
                )
            # The write dominates: subsequent conflicts need only be
            # checked against it (FastTrack's O(1) steady state).
            st.write_tid, st.write_clk, st.write_site = tid, clk, site
            st.read_tid = None
            st.read_vc = None
            st.read_sites = {}
            return
        # read
        if st.read_tid == tid and st.read_clk == clk:
            return  # same-epoch read
        if st.read_vc is not None and st.read_vc.get(tid) == clk:
            return
        site = AccessSite(tid, "read", interval_id, time_ns, self.ops_observed)
        wt = st.write_tid
        if wt is not None and wt != tid and st.write_clk > vc.get(wt, 0):
            self._race(obj_id, "write-read", st.write_site, st.write_clk, vc.get(wt, 0), site)
        if st.read_vc is not None:
            st.read_vc[tid] = clk
            st.read_sites[tid] = site
        elif (
            st.read_tid is None
            or st.read_tid == tid
            or st.read_clk <= vc.get(st.read_tid, 0)
        ):
            # Previous read epoch happens-before us: collapse to epoch.
            st.read_tid, st.read_clk = tid, clk
            st.read_sites = {tid: site}
        else:
            # Concurrent readers: escalate to a read vector clock.
            st.read_vc = {st.read_tid: st.read_clk, tid: clk}
            st.read_sites[tid] = site
            st.read_tid = None

    def record_acquire(self, time_ns: int, tid: int, lock_id: int) -> None:
        """Lock grant to ``tid``: join the lock's release clock."""
        self.ops_observed += 1
        if self.keep_trace:
            self._emit((time_ns, TR_ACQUIRE, tid, lock_id))
        self._last_sync[tid] = f"acquire(lock {lock_id}) at t={time_ns} ns"
        if not self.detect:
            return
        vc = self._clock_of(tid)
        released = self._lock_vc.get(lock_id)
        if released is not None:
            self._join(vc, released)

    def record_release(self, time_ns: int, tid: int, lock_id: int) -> None:
        """Lock release by ``tid``: publish its clock on the lock."""
        self.ops_observed += 1
        if self.keep_trace:
            self._emit((time_ns, TR_RELEASE, tid, lock_id))
        self._last_sync[tid] = f"release(lock {lock_id}) at t={time_ns} ns"
        if not self.detect:
            return
        vc = self._clock_of(tid)
        self._lock_vc[lock_id] = dict(vc)
        vc[tid] += 1

    def record_barrier(self, time_ns: int, barrier_id: int, waiters: tuple[int, ...]) -> None:
        """Barrier episode release: total synchronization of ``waiters``."""
        self.ops_observed += 1
        if self.keep_trace:
            self._emit((time_ns, TR_BARRIER, barrier_id, tuple(waiters)))
        for tid in waiters:
            self._last_sync[tid] = f"barrier({barrier_id}) release at t={time_ns} ns"
        if not self.detect:
            return
        joined: dict[int, int] = {}
        for tid in waiters:
            self._join(joined, self._clock_of(tid))
        for tid in waiters:
            vc = dict(joined)
            vc[tid] = joined.get(tid, 0) + 1
            self._vc[tid] = vc

    def record_notice(self, time_ns: int, tid: int, obj_id: int, version: int) -> None:
        """Write-notice published by ``tid``: snapshot its clock on the
        notice (index-aligned with the HLRC global notice log)."""
        self.ops_observed += 1
        if self.keep_trace:
            self._emit((time_ns, TR_NOTICE, tid, obj_id, version))
        if not self.detect:
            return
        self._notice_vc.append(dict(self._clock_of(tid)))

    def record_apply(self, time_ns: int, tid: int, node_id: int, start: int, end: int) -> None:
        """Notices ``[start, end)`` applied at ``node_id`` on behalf of
        ``tid``: diff-propagation edges publisher -> node -> thread."""
        self.ops_observed += 1
        if self.keep_trace:
            self._emit((time_ns, TR_APPLY, tid, node_id, start, end))
        if not self.detect:
            return
        node_vc = self._node_vc.get(node_id)
        if node_vc is None:
            node_vc = self._node_vc[node_id] = {}
        for i in range(start, min(end, len(self._notice_vc))):
            self._join(node_vc, self._notice_vc[i])
        if node_vc:
            self._join(self._clock_of(tid), node_vc)

    # ------------------------------------------------------------------
    # online observer surface (called by the HLRC engine)
    # ------------------------------------------------------------------

    def on_access(self, thread, obj_id: int, is_write: bool) -> None:
        """Single-hook access observer (``hlrc.racedetector`` slot)."""
        vc = self._vc.get(thread.thread_id)
        if vc is None:
            vc = self._vc[thread.thread_id] = {thread.thread_id: 1}
            # The thread carries its vector clock (introspection only;
            # the detector owns and mutates the mapping in place).
            thread.vc = vc
        self.record_access(
            thread.clock._now_ns,
            thread.thread_id,
            obj_id,
            is_write,
            thread.current_interval.interval_id,
        )

    def on_lock_acquire(self, thread, lock_id: int) -> None:
        """A lock grant completed for ``thread``."""
        self.record_acquire(thread.clock._now_ns, thread.thread_id, lock_id)
        thread.vc = self._vc[thread.thread_id]

    def on_lock_release(self, thread, lock_id: int) -> None:
        """``thread`` released a lock (clock already past the interval
        close, so published notices carry the pre-increment clock)."""
        self.record_release(thread.clock._now_ns, thread.thread_id, lock_id)
        thread.vc = self._vc[thread.thread_id]

    def on_barrier_release(self, threads_by_id, barrier_id: int, waiters, release_ns: int) -> None:
        """A barrier episode completed, waking ``waiters``."""
        self.record_barrier(release_ns, barrier_id, tuple(waiters))
        if self.detect:
            for tid in waiters:
                threads_by_id[tid].vc = self._vc[tid]

    def on_notice_publish(self, thread, obj_id: int, version: int) -> None:
        """``thread`` published a write notice during interval close."""
        self.record_notice(thread.clock._now_ns, thread.thread_id, obj_id, version)

    def on_apply_notices(self, thread, start: int, end: int) -> None:
        """``thread`` applied the global notices ``[start, end)`` at its
        node (called even when the range is empty: the node clock still
        flows into the thread)."""
        self.record_apply(
            thread.clock._now_ns, thread.thread_id, thread.node_id, start, end
        )


def replay_trace(
    trace,
    *,
    raise_on_race: bool = False,
    resolver: "Callable[[int], str] | None" = None,
) -> RaceDetector:
    """Re-run the happens-before analysis over a recorded operation
    trace (``DJVM(racecheck="record")``'s ``djvm.race_trace``, or an
    event kernel's ``aux_trace``) without re-executing the workload.

    Returns the detector; its ``reports`` hold the races found, in the
    same order (and with the same sites) the online detector would have
    produced, because the trace preserves the detector's total
    observation order.
    """
    det = RaceDetector(raise_on_race=raise_on_race, resolver=resolver)
    for entry in trace:
        code = entry[1]
        if code == TR_ACCESS:
            det.record_access(entry[0], entry[2], entry[3], entry[4], entry[5])
        elif code == TR_ACQUIRE:
            det.record_acquire(entry[0], entry[2], entry[3])
        elif code == TR_RELEASE:
            det.record_release(entry[0], entry[2], entry[3])
        elif code == TR_BARRIER:
            det.record_barrier(entry[0], entry[2], entry[3])
        elif code == TR_NOTICE:
            det.record_notice(entry[0], entry[2], entry[3], entry[4])
        elif code == TR_APPLY:
            det.record_apply(entry[0], entry[2], entry[3], entry[4], entry[5])
        else:
            raise ValueError(f"unknown race-trace op code {code!r} in {entry!r}")
    return det
