"""Shared checked-run harness for the runtime check gates.

The ``sanitize`` and ``race`` subcommands of ``python -m repro.checks``
exercise the same tracked bench workloads (SOR, Barnes-Hut,
Water-Spatial) at the same small test scale — big enough to generate
faults, diffs, barriers and OAL traffic on every node, small enough for
CI.  This module owns that shared harness: workload construction, the
profiler-suite attachment, and the optional mid-run migration that
covers the sanitizer's sticky-set/prefetch invariant (SAN006).

* :func:`run_checked` builds a DJVM with the requested checkers
  attached, runs one workload, and returns ``(result, djvm)``.
* :func:`run_sanitize_all` runs every tracked workload under the
  protocol sanitizer (violations raise).
* :func:`run_race_all` runs every tracked workload plus the seeded
  racy/locked synthetic pair under the happens-before race detector
  and returns the collected reports for the CLI to gate on.
"""

from __future__ import annotations

from repro.core.profiler import ProfilerSuite
from repro.runtime.djvm import DJVM, RunResult
from repro.workloads.barnes_hut import BarnesHutWorkload
from repro.workloads.sor import SORWorkload
from repro.workloads.synthetic import RacyCounterWorkload
from repro.workloads.water_spatial import WaterSpatialWorkload

#: test-scale configuration shared by every check gate run.
N_THREADS = 4
N_NODES = 4


def tracked_workloads():
    """The three tracked bench workloads at check-gate scale."""
    return [
        ("SOR", SORWorkload(n=256, rounds=2, n_threads=N_THREADS, seed=11)),
        ("Barnes-Hut", BarnesHutWorkload(n_bodies=192, rounds=2, n_threads=N_THREADS, seed=11)),
        ("Water-Spatial", WaterSpatialWorkload(n_molecules=64, rounds=2, n_threads=N_THREADS, seed=11)),
    ]


def run_checked(
    workload,
    *,
    sanitize: bool = False,
    racecheck: bool | str = False,
    migrate: bool = False,
) -> tuple[RunResult, DJVM]:
    """Execute one workload with the requested checkers attached.

    The full profiler suite rides along (rate 4) so checker hooks see
    realistic protocol + profiling traffic; ``migrate=True`` also queues
    a mid-run prefetching migration of thread 0.  Returns the run result
    and the spent DJVM (its ``sanitizer`` / ``racedetector`` carry the
    check outcome).
    """
    djvm = DJVM(n_nodes=N_NODES, sanitize=sanitize, racecheck=racecheck)
    workload.build(djvm, placement="round_robin")
    suite = ProfilerSuite(djvm, correlation=True, footprint=True, stack=True)
    suite.set_rate_all(4)
    if migrate:
        _schedule_migration(djvm, suite)
    result = djvm.run(workload.programs())
    return result, djvm


def _schedule_migration(djvm: DJVM, suite: ProfilerSuite) -> None:
    """Queue a mid-run prefetching migration of thread 0 so the
    sanitizer's sticky-set/prefetch invariant (SAN006) sees traffic."""
    from repro.runtime.migration import MigrationPlan

    thread = djvm.threads[0]
    target = (thread.node_id + 1) % len(djvm.cluster)

    def provider(t):
        stats = suite.resolve_sticky_set(t, charge_cost=False)
        return stats.selected

    djvm.migration.schedule(
        MigrationPlan(
            thread_id=thread.thread_id,
            target_node=target,
            at_interval=2,
            prefetch_provider=provider,
        )
    )


def run_sanitize_all(*, verbose: bool = True) -> list[tuple[str, int, int]]:
    """Run every tracked workload sanitized; returns
    ``[(name, checks_run, violations), ...]``.  Violations raise."""
    report = []
    for name, workload in tracked_workloads():
        _, djvm = run_checked(workload, sanitize=True, migrate=(name == "SOR"))
        sanitizer = djvm.sanitizer
        report.append((name, sanitizer.checks_run, sanitizer.violations))
        if verbose:
            print(
                f"  sanitize {name:<14} {sanitizer.checks_run:>7} checks, "
                f"{sanitizer.violations} violations"
            )
    return report


def race_workloads():
    """The race-gate run matrix: every tracked workload (expected
    race-free) plus the seeded racy/locked synthetic pair (the racy
    variant is the ground-truth positive the gate must catch)."""
    entries = [(name, wl, False) for name, wl in tracked_workloads()]
    entries.append(
        (
            "RacyCounter[racy]",
            RacyCounterWorkload(n_threads=N_THREADS, locked=False, seed=11),
            True,
        )
    )
    entries.append(
        (
            "RacyCounter[locked]",
            RacyCounterWorkload(n_threads=N_THREADS, locked=True, seed=11),
            False,
        )
    )
    return entries


def run_race_all(*, verbose: bool = True) -> list[tuple[str, int, list, bool]]:
    """Run the race-gate matrix under the happens-before detector.

    Returns ``[(name, accesses_checked, reports, expected_racy), ...]``
    — the CLI decides pass/fail (zero reports where ``expected_racy``
    is False, at least one report on the shared counter where True).
    """
    out = []
    for name, workload, expected in race_workloads():
        _, djvm = run_checked(workload, racecheck="collect")
        detector = djvm.racedetector
        out.append((name, detector.accesses_checked, list(detector.reports), expected))
        if verbose:
            print(
                f"  race     {name:<18} {detector.accesses_checked:>7} accesses, "
                f"{len(detector.reports)} race(s)"
            )
    return out
