"""Sanitizer-enabled bench runs for the check gate.

Runs the three tracked workloads (SOR, Barnes-Hut, Water-Spatial) at
small test scale with ``DJVM(sanitize=True)`` and the full profiler
suite attached, so every HLRC/interpreter invariant the sanitizer knows
about is exercised on realistic protocol traffic.  A migration with a
resolved sticky-set prefetch is included on the SOR run to cover the
SAN006 path.

Any :class:`~repro.checks.sanitizer.SanitizerViolation` propagates out
of :func:`run_workload` — the CLI turns that into a non-zero exit.
"""

from __future__ import annotations

from repro.checks.sanitizer import ProtocolSanitizer
from repro.core.profiler import ProfilerSuite
from repro.runtime.djvm import DJVM, RunResult
from repro.workloads.barnes_hut import BarnesHutWorkload
from repro.workloads.sor import SORWorkload
from repro.workloads.water_spatial import WaterSpatialWorkload

#: test-scale configurations: big enough to generate faults, diffs,
#: barriers and OAL traffic on every node, small enough for CI.
N_THREADS = 4
N_NODES = 4


def _workloads():
    return [
        ("SOR", SORWorkload(n=256, rounds=2, n_threads=N_THREADS, seed=11)),
        ("Barnes-Hut", BarnesHutWorkload(n_bodies=192, rounds=2, n_threads=N_THREADS, seed=11)),
        ("Water-Spatial", WaterSpatialWorkload(n_molecules=64, rounds=2, n_threads=N_THREADS, seed=11)),
    ]


def run_workload(workload, *, migrate: bool = False) -> tuple[RunResult, ProtocolSanitizer]:
    """Execute one workload under the sanitizer; returns (result, sanitizer)."""
    djvm = DJVM(n_nodes=N_NODES, sanitize=True)
    workload.build(djvm, placement="round_robin")
    suite = ProfilerSuite(djvm, correlation=True, footprint=True, stack=True)
    suite.set_rate_all(4)
    if migrate:
        _schedule_migration(djvm, suite)
    result = djvm.run(workload.programs())
    return result, djvm.sanitizer


def _schedule_migration(djvm: DJVM, suite: ProfilerSuite) -> None:
    """Queue a mid-run prefetching migration of thread 0 so the
    sanitizer's sticky-set/prefetch invariant (SAN006) sees traffic."""
    from repro.runtime.migration import MigrationPlan

    thread = djvm.threads[0]
    target = (thread.node_id + 1) % len(djvm.cluster)

    def provider(t):
        stats = suite.resolve_sticky_set(t, charge_cost=False)
        return stats.selected

    djvm.migration.schedule(
        MigrationPlan(
            thread_id=thread.thread_id,
            target_node=target,
            at_interval=2,
            prefetch_provider=provider,
        )
    )


def run_all(*, verbose: bool = True) -> list[tuple[str, int, int]]:
    """Run every tracked workload sanitized; returns
    ``[(name, checks_run, violations), ...]``.  Violations raise."""
    report = []
    for name, workload in _workloads():
        _, sanitizer = run_workload(workload, migrate=(name == "SOR"))
        report.append((name, sanitizer.checks_run, sanitizer.violations))
        if verbose:
            print(
                f"  sanitize {name:<14} {sanitizer.checks_run:>7} checks, "
                f"{sanitizer.violations} violations"
            )
    return report
