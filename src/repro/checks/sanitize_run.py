"""Sanitizer-enabled bench runs for the check gate (compat shim).

The harness now lives in :mod:`repro.checks.runner`, shared between the
``sanitize`` and ``race`` subcommands; this module keeps the original
import surface (``run_workload``, ``run_all``, the scale constants)
for existing callers and tests.
"""

from __future__ import annotations

from repro.checks.runner import (  # noqa: F401  (re-exported constants)
    N_NODES,
    N_THREADS,
    run_checked,
    run_sanitize_all,
    tracked_workloads,
)
from repro.checks.sanitizer import ProtocolSanitizer
from repro.runtime.djvm import RunResult


def _workloads():
    return tracked_workloads()


def run_workload(workload, *, migrate: bool = False) -> tuple[RunResult, ProtocolSanitizer]:
    """Execute one workload under the sanitizer; returns (result, sanitizer)."""
    result, djvm = run_checked(workload, sanitize=True, migrate=migrate)
    return result, djvm.sanitizer


def run_all(*, verbose: bool = True) -> list[tuple[str, int, int]]:
    """Run every tracked workload sanitized; returns
    ``[(name, checks_run, violations), ...]``.  Violations raise."""
    return run_sanitize_all(verbose=verbose)
