"""Runtime HLRC protocol sanitizer (``DJVM(sanitize=True)``).

JESSICA2-style DSM runtimes were debugged with protocol assertion
layers exactly like this one: an opt-in checker that rides the protocol
engine's control flow and validates the state-machine invariants the
paper's profiling scheme depends on (Lam, Luo & Wang, IPDPS 2010,
Section II; HLRC lineage: Zhou, Iftode & Li, OSDI'96).  When an
invariant breaks, a structured :class:`SanitizerViolation` is raised
carrying the violation code and the tail of the observed event trace,
so the offending interleaving is in the report — not reconstructed from
logs after the fact.

Invariant catalog
-----------------

========  ==============================================================
SAN001    interval discipline: exactly one open interval per thread,
          ids strictly increasing, close matches open, end >= start
SAN002    at-most-once OAL logging: within one (thread, interval) an
          object's false-invalid trap fires — and is logged — at most
          once (paper Section II.A)
SAN003    copy-state legality: home-node copies are HOME and never
          INVALID; cached copies only VALID<->INVALID; an INVALID copy
          must actually be stale (fetched_version < home_version);
          dirty bytes never exceed the object's size
SAN004    barrier accounting: no double arrivals, arrivals never exceed
          parties, a release wakes exactly the arrived party set
SAN005    event-kernel time: the kernel's clock never goes backwards;
          a barrier releases at/after its last arrival
SAN006    sticky-set membership: live sticky candidates at migration
          time are a subset of the open interval's access log, and
          every prefetched copy is installed VALID at the target
SAN007    write-notice/version discipline: per-object home versions in
          the notice log are strictly increasing; a flushed interval's
          written set is a subset of its access summaries
========  ==============================================================

The sanitizer deliberately does **not** register as a
:class:`~repro.dsm.hlrc.ProtocolHooks` profiler hook: hook fan-out has
a cost model attached (and a single-hook fast path the profiler relies
on), while sanitizer callbacks are free — they observe, never advance
simulated clocks — so a sanitize-on run produces byte-identical
simulated results, which ``tests/checks`` asserts.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.dsm.states import CopyRecord, RealState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dsm.hlrc import HomeBasedLRC
    from repro.dsm.intervals import IntervalRecord
    from repro.heap.objects import HeapObject
    from repro.runtime.migration import MigrationResult
    from repro.runtime.thread import SimThread

#: invariant code -> one-line summary (the catalog the CLI prints).
INVARIANTS: dict[str, str] = {
    "SAN001": "interval open/close discipline per thread",
    "SAN002": "at-most-once OAL logging per (thread, interval, object)",
    "SAN003": "legal copy-state transitions (home/valid/invalid)",
    "SAN004": "barrier party accounting (arrivals == parties == released)",
    "SAN005": "event-kernel time monotonicity",
    "SAN006": "sticky-set membership consistent with access logs",
    "SAN007": "write-notice version discipline",
}


class SanitizerViolation(AssertionError):
    """A protocol invariant broke.  Structured: ``code`` names the
    invariant (see :data:`INVARIANTS`), ``detail`` says what happened,
    and ``trace`` carries the sanitizer's recent observed-event ring
    buffer (newest last) for the offending interleaving."""

    def __init__(self, code: str, detail: str, trace: list[tuple[int, str]] | None = None):
        self.code = code
        self.detail = detail
        self.trace = list(trace or [])
        tail = "\n".join(f"    [{t_ns} ns] {what}" for t_ns, what in self.trace[-12:])
        msg = f"{code} ({INVARIANTS.get(code, 'unknown invariant')}): {detail}"
        if tail:
            msg += f"\n  recent protocol events (newest last):\n{tail}"
        super().__init__(msg)


class ProtocolSanitizer:
    """Observes the protocol engine and raises on invariant violations.

    One instance per DJVM; attach via ``DJVM(sanitize=True)`` (the DJVM
    wires it into the HLRC engine, the interpreter's event loop, the
    migration engine, and — through :class:`~repro.core.profiler.
    ProfilerSuite` — the access profiler and footprinter).
    """

    def __init__(self, *, trace_limit: int = 64) -> None:
        #: ring buffer of observed protocol events: (time_ns, description).
        self.events: deque[tuple[int, str]] = deque(maxlen=trace_limit)
        #: total invariant checks executed (reported by the CLI).
        self.checks_run = 0
        #: violations raised (sticky — a raise propagates, but keep count).
        self.violations = 0
        # SAN001: thread_id -> open interval id; and last closed id.
        self._open: dict[int, int] = {}
        self._last_interval: dict[int, int] = {}
        # SAN002: (thread_id) -> object ids OAL-logged in the open interval.
        self._logged: dict[int, set[int]] = {}
        # SAN004: barrier_id -> {thread_id: arrival_ns}.
        self._arrivals: dict[int, dict[int, int]] = {}
        # SAN005: kernel clock watermark.
        self._kernel_ns = 0
        # SAN007: obj_id -> last notice version seen.
        self._notice_version: dict[int, int] = {}
        #: wired by the DJVM / ProfilerSuite.
        self._hlrc: HomeBasedLRC | None = None
        self._footprinter = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_hlrc(self, hlrc: HomeBasedLRC) -> None:
        """Give the sanitizer heap/GOS visibility for sweep checks."""
        self._hlrc = hlrc

    def attach_footprinter(self, footprinter) -> None:
        """Attach the sticky-set footprinter (enables SAN006's
        membership check at migration time)."""
        self._footprinter = footprinter

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def note(self, time_ns: int, what: str) -> None:
        """Record one observed protocol event into the ring buffer."""
        self.events.append((int(time_ns), what))

    def _fail(self, code: str, detail: str) -> None:
        self.violations += 1
        raise SanitizerViolation(code, detail, list(self.events))

    # ------------------------------------------------------------------
    # SAN001 + SAN007: interval lifecycle
    # ------------------------------------------------------------------

    def on_interval_open(self, thread: SimThread) -> None:
        """HLRC opened an interval for ``thread``."""
        self.checks_run += 1
        tid = thread.thread_id
        iid = thread.current_interval.interval_id
        self.note(thread.clock.now_ns, f"interval_open t{tid} i{iid}")
        if tid in self._open:
            self._fail(
                "SAN001",
                f"thread {tid} opened interval {iid} while interval "
                f"{self._open[tid]} is still open (intervals cannot nest)",
            )
        last = self._last_interval.get(tid, 0)
        if iid <= last:
            self._fail(
                "SAN001",
                f"thread {tid} opened interval {iid}, but interval ids must "
                f"strictly increase (last closed: {last})",
            )
        self._open[tid] = iid
        self._logged[tid] = set()

    def on_interval_close(self, thread: SimThread, interval: IntervalRecord) -> None:
        """HLRC closed ``interval`` (diffs flushed, notices published)."""
        self.checks_run += 1
        tid = thread.thread_id
        self.note(
            thread.clock.now_ns,
            f"interval_close t{tid} i{interval.interval_id} ({interval.close_reason})",
        )
        open_id = self._open.pop(tid, None)
        if open_id is None:
            self._fail(
                "SAN001",
                f"thread {tid} closed interval {interval.interval_id} with no "
                "interval open",
            )
        if open_id != interval.interval_id:
            self._fail(
                "SAN001",
                f"thread {tid} closed interval {interval.interval_id} but "
                f"interval {open_id} was the one open",
            )
        if interval.end_ns < interval.start_ns:
            self._fail(
                "SAN001",
                f"thread {tid} interval {interval.interval_id} closed at "
                f"{interval.end_ns} ns, before its open at {interval.start_ns} ns",
            )
        # SAN007: every written object must appear in the access summary
        # (the write that dirtied it is an access).
        missing = [o for o in interval.written if o not in interval.accesses]
        if missing:
            self._fail(
                "SAN007",
                f"thread {tid} interval {interval.interval_id} written set "
                f"contains objects absent from its access log: {sorted(missing)}",
            )
        self._last_interval[tid] = interval.interval_id
        self._logged.pop(tid, None)

    def on_run_end(self, threads) -> None:
        """All threads finished: no interval may remain open."""
        self.checks_run += 1
        if self._open:
            self._fail(
                "SAN001",
                f"run ended with intervals still open: {dict(sorted(self._open.items()))}",
            )

    # ------------------------------------------------------------------
    # SAN002: at-most-once OAL logging
    # ------------------------------------------------------------------

    def on_oal_log(self, thread: SimThread, interval_id: int, obj_id: int) -> None:
        """The access profiler logged ``obj_id`` into the thread's OAL.

        The false-invalid tag is cancelled by the first trapping access,
        so a second log of the same object in the same interval means
        the overlay state machine (valid -> false-invalid -> logged)
        was traversed twice — the at-most-once property is broken.
        """
        self.checks_run += 1
        tid = thread.thread_id
        self.note(thread.clock.now_ns, f"oal_log t{tid} i{interval_id} obj{obj_id}")
        open_id = self._open.get(tid)
        if open_id is not None and interval_id != open_id:
            self._fail(
                "SAN002",
                f"thread {tid} logged obj {obj_id} into interval {interval_id} "
                f"but interval {open_id} is the one open",
            )
        logged = self._logged.setdefault(tid, set())
        if obj_id in logged:
            self._fail(
                "SAN002",
                f"thread {tid} OAL-logged obj {obj_id} twice in interval "
                f"{interval_id}; false-invalid must trap at most once per "
                "(interval, object)",
            )
        logged.add(obj_id)

    # ------------------------------------------------------------------
    # SAN003: copy-state legality
    # ------------------------------------------------------------------

    def on_access(
        self,
        thread: SimThread,
        obj_id: int,
        record: CopyRecord,
        obj: HeapObject | None,
        faulted: bool,
    ) -> None:
        """One access resolved on ``thread``'s node (post state-check)."""
        self.checks_run += 1
        if record.real_state is RealState.INVALID:
            self._fail(
                "SAN003",
                f"access to obj {obj_id} on node {thread.node_id} resolved with "
                "the copy still INVALID (fault machinery skipped)",
            )
        if obj is not None:
            self._check_copy(thread.node_id, obj, record)
        if faulted:
            self.note(thread.clock.now_ns, f"fault t{thread.thread_id} obj{obj_id}")

    def _check_copy(self, node_id: int, obj: HeapObject, record: CopyRecord) -> None:
        if obj.home_node == node_id and record.real_state is not RealState.HOME:
            self._fail(
                "SAN003",
                f"node {node_id} holds obj {obj.obj_id} in state "
                f"{record.real_state.name}, but the node is the object's home "
                "(home copies are always HOME)",
            )
        if obj.home_node != node_id and record.real_state is RealState.HOME:
            self._fail(
                "SAN003",
                f"node {node_id} holds obj {obj.obj_id} in state HOME, but the "
                f"object is homed at node {obj.home_node}",
            )
        if record.fetched_version > obj.home_version:
            self._fail(
                "SAN003",
                f"node {node_id} copy of obj {obj.obj_id} claims fetched version "
                f"{record.fetched_version}, newer than the home's "
                f"{obj.home_version} (versions only move forward at the home)",
            )
        if record.dirty_bytes > obj.size_bytes:
            self._fail(
                "SAN003",
                f"node {node_id} copy of obj {obj.obj_id} accumulated "
                f"{record.dirty_bytes} dirty bytes, more than the object's "
                f"{obj.size_bytes}-byte payload",
            )

    def sweep_heaps(self) -> int:
        """Full copy-state sweep across every node's heap (run at barrier
        releases and run end); returns the number of copies checked."""
        hlrc = self._hlrc
        if hlrc is None:
            return 0
        checked = 0
        for node_id in sorted(hlrc.heaps):
            copies = hlrc.heaps[node_id].copies
            for obj_id in sorted(copies):
                record = copies[obj_id]
                obj = hlrc.gos.get(obj_id)
                self._check_copy(node_id, obj, record)
                if (
                    record.real_state is RealState.INVALID
                    and record.fetched_version >= obj.home_version
                ):
                    self._fail(
                        "SAN003",
                        f"node {node_id} copy of obj {obj_id} is INVALID but "
                        f"up to date (fetched {record.fetched_version} >= home "
                        f"{obj.home_version}): spurious invalidation",
                    )
                checked += 1
        self.checks_run += checked
        return checked

    # ------------------------------------------------------------------
    # SAN004 + SAN005: barrier accounting
    # ------------------------------------------------------------------

    def on_barrier_arrive(
        self, barrier_id: int, thread_id: int, parties: int, now_ns: int
    ) -> None:
        """A thread registered at a barrier."""
        self.checks_run += 1
        self.note(now_ns, f"barrier_arrive b{barrier_id} t{thread_id}")
        arrivals = self._arrivals.setdefault(barrier_id, {})
        if thread_id in arrivals:
            self._fail(
                "SAN004",
                f"thread {thread_id} arrived twice at barrier {barrier_id} in "
                "one episode",
            )
        arrivals[thread_id] = now_ns
        if len(arrivals) > parties:
            self._fail(
                "SAN004",
                f"barrier {barrier_id} collected {len(arrivals)} arrivals for "
                f"{parties} parties",
            )

    def on_barrier_release(
        self, barrier_id: int, parties: int, waiters: list[int], release_ns: int
    ) -> None:
        """A barrier episode released ``waiters`` at ``release_ns``."""
        self.checks_run += 1
        self.note(release_ns, f"barrier_release b{barrier_id} -> {len(waiters)} threads")
        arrivals = self._arrivals.pop(barrier_id, {})
        if len(waiters) != parties:
            self._fail(
                "SAN004",
                f"barrier {barrier_id} released {len(waiters)} threads for "
                f"{parties} parties",
            )
        if len(set(waiters)) != len(waiters):
            self._fail(
                "SAN004",
                f"barrier {barrier_id} released a thread twice: {waiters}",
            )
        if set(waiters) != set(arrivals):
            self._fail(
                "SAN004",
                f"barrier {barrier_id} released {sorted(set(waiters))} but "
                f"{sorted(arrivals)} arrived (over- or under-release)",
            )
        if arrivals and release_ns < max(arrivals.values()):
            self._fail(
                "SAN005",
                f"barrier {barrier_id} released at {release_ns} ns, before its "
                f"last arrival at {max(arrivals.values())} ns",
            )
        self.sweep_heaps()

    # ------------------------------------------------------------------
    # SAN005: event-kernel monotonicity
    # ------------------------------------------------------------------

    def on_event_pop(self, kernel_now_ns: int, event) -> None:
        """The event kernel popped ``event``; its clock must not rewind."""
        self.checks_run += 1
        if event is not None:
            self.note(event.time_ns, f"event {event.kind.name} actor={event.actor}")
        if kernel_now_ns < self._kernel_ns:
            self._fail(
                "SAN005",
                f"event kernel clock went backwards: {self._kernel_ns} ns -> "
                f"{kernel_now_ns} ns",
            )
        self._kernel_ns = kernel_now_ns

    # ------------------------------------------------------------------
    # SAN006: sticky-set membership at migration
    # ------------------------------------------------------------------

    def on_migration(self, thread: SimThread, result: MigrationResult) -> None:
        """A migration completed; validate sticky/prefetch consistency."""
        self.checks_run += 1
        self.note(
            thread.clock.now_ns,
            f"migrate t{thread.thread_id} n{result.from_node}->n{result.to_node} "
            f"prefetch={result.prefetched_objects}",
        )
        fp = self._footprinter
        if fp is not None:
            accessed = set(thread.current_interval.accesses)
            for closed in fp.interval_tracked.get(thread.thread_id, []):
                accessed |= closed
            candidates = fp.live_sticky_candidates(thread)
            stray = [o for o in candidates if o not in accessed]
            if stray:
                self._fail(
                    "SAN006",
                    f"thread {thread.thread_id} sticky-set candidates "
                    f"{sorted(stray)} never appear in its pre-migration access "
                    "logs (sticky membership must derive from observed accesses)",
                )
        hlrc = self._hlrc
        if hlrc is not None:
            heap = hlrc.heaps[result.to_node]
            for obj_id in result.prefetched_ids:
                record = heap.get(obj_id)
                if record is None or record.real_state is not RealState.VALID:
                    state = "absent" if record is None else record.real_state.name
                    self._fail(
                        "SAN006",
                        f"prefetched obj {obj_id} is {state} at target node "
                        f"{result.to_node}; the migration bundle must install "
                        "VALID copies",
                    )

    # ------------------------------------------------------------------
    # SAN007: write-notice versions
    # ------------------------------------------------------------------

    def on_notice(self, obj_id: int, version: int) -> None:
        """The home published a write notice for ``obj_id``."""
        self.checks_run += 1
        last = self._notice_version.get(obj_id, 0)
        if version <= last:
            self._fail(
                "SAN007",
                f"write notice for obj {obj_id} carries version {version}, not "
                f"newer than the previously published {last} (per-object "
                "versions must strictly increase)",
            )
        self._notice_version[obj_id] = version
