"""simlint: the repo-specific determinism lint pass.

The simulator's correctness contract is *bit-identical simulated
results* across runs (TCM bytes, thread clocks, protocol counters, event
traces).  Nothing in Python enforces that contract: a stray
``time.time()``, an unseeded ``random`` call, or a ``for`` loop over a
bare ``set`` can silently smuggle host-process state into simulated
results and only show up weeks later as a flaky checksum.  simlint is a
static AST pass (stdlib :mod:`ast`, no third-party dependencies) that
rejects those patterns at ``make check`` time.

Rule catalog
------------

========  ==============================================================
SIM001    wall-clock read (``time.time()``, ``datetime.now()``, …)
          inside the deterministic core (``repro/{sim,dsm,runtime,core}``)
SIM002    global/unseeded RNG (module-level ``random.*``, numpy global
          state, argument-less ``default_rng()``) in the deterministic core
SIM003    iteration over a container without a canonical order (``set``
          literal/call, ``.keys()``/``.values()``/``.items()``, set
          algebra, known set-valued names) without ``sorted(...)`` in
          the deterministic core
SIM004    ``id()``-based ordering/keying in the deterministic core
SIM005    hot-path class without ``__slots__`` (configured hot modules)
SIM006    mutable default argument (``def f(x=[])``) anywhere
SIM007    direct ``heapq`` use outside the event-kernel modules
          (``repro/sim/events.py``, ``repro/sim/partition.py``) — all
          scheduling must go through the event kernel
SIM008    environment read (``os.environ`` / ``os.getenv``) inside the
          deterministic core (config must flow through constructors)
SIM009    direct ``counters[...]`` mutation outside the metrics
          registry (``repro/obs/``) — statistics flow through typed
          registry handles, not ad-hoc dicts
SIM010    wall-clock/OS-level process API (``multiprocessing``,
          ``subprocess``, ``threading``, ``signal``, ``os.fork``/
          ``os.spawn*``/``os.getpid``, ``time.sleep``, …) inside a
          partition-worker module; only the sanctioned worker harness
          (``repro/sim/workerpool.py``) may touch process machinery
SIM011    direct mutation of sampling state (``gap_table[...]``,
          per-class decision memos/counters, ``real_gap``/``epoch``
          fields) outside ``repro/core/sampling.py`` — rate changes
          flow through ``SamplingPolicy.set_rate``/``set_min_gap`` so
          every backend observes a consistent epoch
SIM012    write to a shared-annotated object outside a lock region: a
          binding whose line carries a trailing ``# shared`` comment
          marks the object as cross-thread shared, and ``write(...)``
          calls naming it must sit between ``acquire``/``release`` in
          the same block (writes indexed by ``thread_id``/``tid`` are
          thread-partitioned and exempt)
SIM013    silent exception swallow (``except Exception: pass`` /
          ``except: pass``) inside the engine subtrees
          (``repro/{runtime,dsm,sim,heap}/``) — a swallowed error there
          turns a crash into a silent divergence of simulated state
========  ==============================================================

Semantic sharpening: when the committed ``effects.json`` summary (see
:mod:`repro.checks.effects`) is available, :func:`semantic_findings`
adds interprocedural SIM009/SIM010 findings the syntactic pass cannot
see — alias-tracked ``counters`` mutations and host effects reached
*through calls* from worker-dispatched callables.

Escape hatch: append ``# simlint: disable=SIM003`` (comma-separate for
several codes, or ``disable=all``) to the offending line.  A disable on
the line of a ``def``/``class`` statement covers that statement's
header only, not the whole body — exemptions stay visibly local.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "check_source",
    "check_file",
    "check_paths",
    "semantic_findings",
    "main",
    "RULES",
]

#: package subtrees forming the deterministic simulation core.
DETERMINISTIC_PREFIXES = (
    "repro/sim/",
    "repro/dsm/",
    "repro/runtime/",
    "repro/core/",
)

#: modules whose classes sit on simulation hot paths (one instance per
#: event / interval / object touch) and therefore must carry __slots__.
HOT_MODULES = frozenset(
    {
        "repro/sim/events.py",
        "repro/sim/clock.py",
        "repro/runtime/thread.py",
        "repro/runtime/stack.py",
        "repro/dsm/states.py",
        "repro/dsm/intervals.py",
        "repro/heap/objects.py",
        "repro/core/oal.py",
        "repro/core/footprint.py",
    }
)

#: the modules allowed to touch heapq directly (the serial event kernel
#: and its conservative-PDES partitioning; both ARE the event kernel).
HEAPQ_HOME = frozenset({"repro/sim/events.py", "repro/sim/partition.py"})

#: the sanctioned worker harness — the only partition-worker module that
#: may touch OS process machinery (SIM010's single exemption).
WORKER_HARNESS = "repro/sim/workerpool.py"

#: modules the SIM010 partition-worker rule scopes to: the partitioned
#: kernel itself plus any worker-layer module under repro/sim/.
def _is_partition_worker(mod: str) -> bool:
    if mod == WORKER_HARNESS:
        return False
    if not mod.startswith("repro/sim/"):
        return False
    name = mod.rsplit("/", 1)[-1]
    return name.startswith("partition") or "worker" in name


#: modules whose import into a partition-worker module breaks the
#: determinism-by-construction contract (SIM010).
WORKER_BANNED_MODULES = frozenset(
    {
        "multiprocessing",
        "subprocess",
        "threading",
        "concurrent",
        "signal",
        "socket",
        "ctypes",
        "asyncio",
    }
)

#: os.<attr> process APIs banned inside partition-worker modules.
OS_PROCESS_ATTRS = frozenset(
    {
        "fork",
        "forkpty",
        "system",
        "popen",
        "kill",
        "killpg",
        "getpid",
        "getppid",
        "waitpid",
        "wait",
        "pipe",
        "dup",
        "dup2",
    }
)
OS_PROCESS_PREFIXES = ("spawn", "exec", "sched_", "wait")

#: names that hold sets in this codebase; iterating them without
#: sorted() feeds hash order into event scheduling / TCM accrual.
KNOWN_SET_NAMES = frozenset(
    {"written", "writers", "thread_ids", "phases", "pending", "sticky_ids", "live_refs"}
)

#: wall-clock call sites: (qualifier, attribute) pairs and bare names
#: importable from the owning module.
WALL_CLOCK_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "process_time"),
    ("time", "process_time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
WALL_CLOCK_FROM_IMPORTS = {
    ("time", "time"),
    ("time", "perf_counter"),
    ("time", "monotonic"),
    ("time", "process_time"),
}

#: numpy.random attributes that are legal (seeded, explicit-generator).
NUMPY_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "BitGenerator"}

#: base classes that exempt a class from SIM005 (no per-instance dict
#: concern, or slots handled by the metaclass/typing machinery).
SLOTLESS_BASES = {
    "Protocol",
    "NamedTuple",
    "Enum",
    "IntEnum",
    "StrEnum",
    "Flag",
    "IntFlag",
    "Exception",
    "TypedDict",
    "ABC",
}

_DISABLE_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")

#: trailing ``# shared`` annotation marking a binding as cross-thread
#: shared state (SIM012's opt-in scope).
_SHARED_RE = re.compile(r"#\s*shared\s*$")

#: argument names marking a write as thread-partitioned (SIM012 exempt):
#: ``write(pool[thread_id])`` is per-thread data behind the barrier
#: discipline, not a cross-thread mutation.
_THREAD_PARTITION_NAMES = frozenset({"thread_id", "tid"})


@dataclass(frozen=True)
class Finding:
    """One lint finding: where, which rule, and why."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical ``path:line:col: CODE message`` report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


#: code -> one-line rule summary (the catalog the CLI prints).
RULES: dict[str, str] = {
    "SIM001": "wall-clock read in the deterministic core",
    "SIM002": "global/unseeded RNG in the deterministic core",
    "SIM003": "iteration over a set or dict view without a canonical sorted() order",
    "SIM004": "id()-based ordering or keying in the deterministic core",
    "SIM005": "hot-path class without __slots__",
    "SIM006": "mutable default argument",
    "SIM007": "direct heapq use outside the event kernel (repro/sim/{events,partition}.py)",
    "SIM008": "environment read inside the deterministic core",
    "SIM009": "direct counters[...] mutation outside the metrics registry (repro/obs/)",
    "SIM010": "process/wall-clock API in a partition-worker module outside the sanctioned worker harness",
    "SIM011": "direct sampling-state mutation (gap_table / per-class counters) outside repro/core/sampling.py",
    "SIM012": "write to a shared-annotated object outside an acquire/release region",
    "SIM013": "silent exception swallow (except ...: pass) inside the engine subtrees",
}

#: subtrees where a silently swallowed exception means silent state
#: divergence rather than a visible crash (SIM013's scope).
SILENT_SWALLOW_PREFIXES = (
    "repro/runtime/",
    "repro/dsm/",
    "repro/sim/",
    "repro/heap/",
)

#: module prefix exempt from SIM009 — the registry itself.
METRICS_HOME_PREFIX = "repro/obs/"

#: the one module allowed to mutate sampling state (SIM011).
SAMPLING_HOME = "repro/core/sampling.py"

#: container names SIM011 guards against subscript mutation: the policy
#: gap table, the per-class decision memo, and the backend counters.
SAMPLING_CONTAINERS = frozenset(
    {"gap_table", "decisions", "sample_counts", "skip_counts"}
)

#: per-class state fields SIM011 guards against attribute assignment —
#: mutating these bypasses the epoch bump backends rely on.
SAMPLING_STATE_ATTRS = frozenset(
    {"real_gap", "nominal_gap", "cache_epoch", "epoch", "min_gap"}
)

#: dict/list mutator methods covered by the SIM011 call check.
SAMPLING_MUTATORS = frozenset({"clear", "update", "pop", "popitem", "setdefault"})


# ---------------------------------------------------------------------------
# path scoping
# ---------------------------------------------------------------------------


def module_path(path: str) -> str:
    """Normalize a file path to its ``repro/...`` module path (or the
    posix-normalized path itself when outside the package)."""
    norm = Path(path).as_posix()
    for marker in ("/repro/", "repro/"):
        idx = norm.find(marker)
        if idx >= 0:
            return norm[idx + len(marker) - len("repro/") :]
    return norm


def _is_deterministic(mod: str) -> bool:
    return any(mod.startswith(p) for p in DETERMINISTIC_PREFIXES)


def _is_test_or_bench(path: str) -> bool:
    norm = "/" + Path(path).as_posix()
    return "/tests/" in norm or "/benchmarks/" in norm or norm.endswith("conftest.py")


# ---------------------------------------------------------------------------
# disable comments
# ---------------------------------------------------------------------------


def _disabled_lines(source: str) -> dict[int, set[str]]:
    """line number -> set of disabled codes (``{"all"}`` disables all)."""
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _DISABLE_RE.search(text)
        if m:
            codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
            codes = {"ALL" if c == "ALL" else c for c in codes}
            out[lineno] = codes
    return out


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ["a", "b", "c"]; empty list for non-chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _terminal_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a Name/Attribute, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class _Checker(ast.NodeVisitor):
    """One-file rule dispatcher."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.mod = module_path(path)
        self.testish = _is_test_or_bench(path)
        self.deterministic = not self.testish and _is_deterministic(self.mod)
        self.hot_module = not self.testish and self.mod in HOT_MODULES
        #: SIM010 scope: partition-worker module (harness exempt).
        self.partition_worker = not self.testish and _is_partition_worker(self.mod)
        #: SIM013 scope: engine subtree where swallowed errors diverge state.
        self.engine_module = not self.testish and self.mod.startswith(
            SILENT_SWALLOW_PREFIXES
        )
        self.disabled = _disabled_lines(source)
        self.findings: list[Finding] = []
        #: names bound by ``from time import ...`` that read the wall clock.
        self._wall_clock_names: set[str] = set()
        #: local aliases of the numpy module ("np", "numpy", ...).
        self._numpy_aliases: set[str] = set()
        #: lines carrying a trailing ``# shared`` annotation (SIM012).
        self._shared_lines: set[int] = {
            lineno
            for lineno, text in enumerate(source.splitlines(), start=1)
            if _SHARED_RE.search(text)
        }
        #: names bound on shared-annotated lines (filled by
        #: :meth:`collect_shared_names` before the visit pass).
        self._shared_names: set[str] = set()

    # -- reporting -----------------------------------------------------

    def report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        codes = self.disabled.get(line, ())
        if code in codes or "ALL" in codes:
            return
        self.findings.append(
            Finding(self.path, line, getattr(node, "col_offset", 0), code, message)
        )

    # -- imports (feed several rules) ----------------------------------

    def _check_worker_import(self, node: ast.AST, module_name: str) -> None:
        """SIM010: a partition-worker module importing process machinery."""
        root = module_name.split(".", 1)[0]
        if self.partition_worker and root in WORKER_BANNED_MODULES:
            self.report(
                node,
                "SIM010",
                f"import {module_name} inside a partition-worker module; "
                "process machinery may only live in the sanctioned worker "
                f"harness ({WORKER_HARNESS})",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "heapq" and self.mod not in HEAPQ_HOME and not self.testish:
                self.report(
                    node,
                    "SIM007",
                    "import heapq outside the event kernel; schedule through "
                    "repro.sim.events.EventLoop instead",
                )
            self._check_worker_import(node, alias.name)
            if alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or "numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if mod:
            self._check_worker_import(node, mod)
        for alias in node.names:
            if mod == "heapq" and self.mod not in HEAPQ_HOME and not self.testish:
                self.report(
                    node,
                    "SIM007",
                    f"from heapq import {alias.name} outside the event kernel; "
                    "schedule through repro.sim.events.EventLoop instead",
                )
            if self.deterministic:
                if (mod, alias.name) in WALL_CLOCK_FROM_IMPORTS:
                    self._wall_clock_names.add(alias.asname or alias.name)
                if mod == "random":
                    self.report(
                        node,
                        "SIM002",
                        f"from random import {alias.name}: module-level random "
                        "state is process-global and unseeded; use "
                        "repro.util.rng.seeded_rng or random.Random(seed)",
                    )
        self.generic_visit(node)

    # -- calls (SIM001/SIM002/SIM004) ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        self._check_sampling_mutator_call(node)
        if self.deterministic:
            chain = _attr_chain(func)
            if chain:
                pair = (chain[-2], chain[-1]) if len(chain) >= 2 else None
                # SIM001: wall-clock reads.
                if pair in WALL_CLOCK_ATTRS:
                    self.report(
                        node,
                        "SIM001",
                        f"wall-clock read {'.'.join(chain)}() in the deterministic "
                        "core; simulated time must come from SimClock/EventLoop",
                    )
                # SIM002: module-level random.* (random.Random(seed) is fine).
                if (
                    len(chain) == 2
                    and chain[0] == "random"
                    and chain[1] not in ("Random", "SystemRandom")
                ):
                    self.report(
                        node,
                        "SIM002",
                        f"random.{chain[1]}() uses process-global RNG state; "
                        "use repro.util.rng.seeded_rng or random.Random(seed)",
                    )
                # SIM002: numpy global-state RNG (np.random.seed/rand/...).
                if (
                    len(chain) >= 3
                    and chain[0] in self._numpy_aliases
                    and chain[1] == "random"
                    and chain[2] not in NUMPY_RANDOM_OK
                ):
                    self.report(
                        node,
                        "SIM002",
                        f"{'.'.join(chain)}() mutates numpy's global RNG state; "
                        "use numpy.random.default_rng(seed)",
                    )
                # SIM002: default_rng() with no seed argument.
                if chain[-1] == "default_rng" and not node.args and not node.keywords:
                    self.report(
                        node,
                        "SIM002",
                        "default_rng() without a seed draws OS entropy; pass an "
                        "explicit seed",
                    )
            if isinstance(func, ast.Name):
                if func.id in self._wall_clock_names:
                    self.report(
                        node,
                        "SIM001",
                        f"wall-clock read {func.id}() in the deterministic core; "
                        "simulated time must come from SimClock/EventLoop",
                    )
                # SIM004: id()-based ordering/keying.
                if func.id == "id" and len(node.args) == 1:
                    self.report(
                        node,
                        "SIM004",
                        "id() is allocation-order dependent and differs across "
                        "runs; key/order by a stable field (obj_id, thread_id, seq)",
                    )
        self.generic_visit(node)

    # -- attribute reads (SIM008) --------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.deterministic:
            chain = _attr_chain(node)
            if len(chain) >= 2 and chain[0] == "os" and chain[1] in ("environ", "getenv"):
                self.report(
                    node,
                    "SIM008",
                    f"os.{chain[1]} read in the deterministic core; configuration "
                    "must flow through constructors so runs are reproducible",
                )
        if self.partition_worker:
            chain = _attr_chain(node)
            if len(chain) >= 2:
                if chain[0] == "os" and (
                    chain[1] in OS_PROCESS_ATTRS
                    or chain[1].startswith(OS_PROCESS_PREFIXES)
                ):
                    self.report(
                        node,
                        "SIM010",
                        f"os.{chain[1]} inside a partition-worker module; process "
                        "machinery may only live in the sanctioned worker harness "
                        f"({WORKER_HARNESS})",
                    )
                elif chain[0] == "time" and chain[1] == "sleep":
                    self.report(
                        node,
                        "SIM010",
                        "time.sleep inside a partition-worker module; workers "
                        "synchronize through the kernel's safe windows, never "
                        "the host clock",
                    )
        self.generic_visit(node)

    # -- iteration (SIM003) --------------------------------------------

    def _unordered_reason(self, node: ast.AST) -> str | None:
        """Why iterating ``node`` is hash-ordered, or None if it is not."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return f"a {node.func.id}() result"
            attr = _terminal_name(node.func)
            if attr == "keys":
                return "dict.keys() (require sorted() or iterate the dict itself)"
            if attr in ("values", "items"):
                # Dicts preserve insertion order, but insertion order is
                # arrival history — two code paths that populate the same
                # mapping differently iterate it differently.  The
                # deterministic core requires a canonical order.
                return (
                    f"dict.{attr}() (insertion order is arrival history, not a "
                    f"canonical order; iterate sorted({'d.items()' if attr == 'items' else 'd'})"
                    " or justify with a disable)"
                )
            if attr in ("union", "intersection", "difference", "symmetric_difference"):
                return f"a set.{attr}() result"
            return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            left = self._unordered_reason(node.left)
            right = self._unordered_reason(node.right)
            if left or right:
                return left or right
            # Set algebra over known set names (written | writers).
            if _terminal_name(node.left) in KNOWN_SET_NAMES or (
                _terminal_name(node.right) in KNOWN_SET_NAMES
            ):
                return "set algebra over a known set-valued name"
            return None
        name = _terminal_name(node)
        if name in KNOWN_SET_NAMES:
            return f"'{name}', a known set-valued name in this codebase"
        return None

    def _check_iterable(self, iter_node: ast.AST, where: ast.AST) -> None:
        if not self.deterministic:
            return
        # sorted(...)/list(sorted(...)) wrappers make the order explicit.
        if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name):
            if iter_node.func.id == "sorted":
                return
            if iter_node.func.id in ("list", "tuple", "enumerate", "reversed") and iter_node.args:
                self._check_iterable(iter_node.args[0], where)
                return
        reason = self._unordered_reason(iter_node)
        if reason:
            self.report(
                where,
                "SIM003",
                f"iterating {reason}: hash order can leak into event scheduling "
                "or TCM accrual; wrap in sorted() or use an ordered container",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter, node)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", ()):
            self._check_iterable(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- classes (SIM005) ----------------------------------------------

    @staticmethod
    def _dataclass_slots(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call) and _terminal_name(deco.func) == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        return False

    @staticmethod
    def _defines_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for tgt in targets:
                if isinstance(tgt, ast.Name) and tgt.id == "__slots__":
                    return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.hot_module:
            exempt = any(
                (_terminal_name(base) or "") in SLOTLESS_BASES
                or (_terminal_name(base) or "").endswith("Error")
                or (_terminal_name(base) or "").endswith("Exception")
                for base in node.bases
            )
            if not exempt and not self._defines_slots(node) and not self._dataclass_slots(node):
                self.report(
                    node,
                    "SIM005",
                    f"hot-path class {node.name} has no __slots__; instances are "
                    "created per event/interval/object and per-instance dicts "
                    "dominate their footprint",
                )
        self.generic_visit(node)

    # -- function defs (SIM006) ----------------------------------------

    @staticmethod
    def _is_mutable_default(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray", "defaultdict", "deque")
        return False

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            if self._is_mutable_default(default):
                self.report(
                    default,
                    "SIM006",
                    f"mutable default argument in {node.name}(); the instance is "
                    "shared across calls — default to None (or a tuple) and "
                    "construct inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_shared_writes(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_shared_writes(node)
        self.generic_visit(node)

    # -- SIM012: shared-annotated objects mutate under a lock ------------

    def collect_shared_names(self, tree: ast.AST) -> None:
        """Pre-pass: gather every name bound on a ``# shared`` line.

        Runs before the visit pass so a write in one method sees
        annotations made in another (``build()`` marks, ``_generate()``
        writes)."""
        if self.testish or not self._shared_lines:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            lines = range(node.lineno, (node.end_lineno or node.lineno) + 1)
            if not self._shared_lines.intersection(lines):
                continue
            for tgt in targets:
                name = _terminal_name(tgt)
                if name:
                    self._shared_names.add(name)

    @staticmethod
    def _stmt_call(stmt: ast.stmt) -> ast.Call | None:
        """The op-emitting call of a statement: ``P.write(...)`` or
        ``yield P.write(...)`` as an expression statement."""
        if not isinstance(stmt, ast.Expr):
            return None
        value = stmt.value
        if isinstance(value, ast.Yield):
            value = value.value
        return value if isinstance(value, ast.Call) else None

    @staticmethod
    def _names_in(node: ast.AST) -> set[str]:
        out: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                out.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                out.add(sub.attr)
        return out

    def _check_shared_writes(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """SIM012: scan a function body for ``write(<shared>)`` calls at
        lock depth zero.  Depth is tracked per block — an ``acquire``
        inside an ``if`` arm does not cover the statements after it —
        which is exactly the conditional-locking bug the rule exists to
        catch."""
        if self.testish or not self._shared_names:
            return
        self._scan_shared_block(node.body, 0)

    def _scan_shared_block(self, stmts: list[ast.stmt], depth: int) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # visited on their own
            call = self._stmt_call(stmt)
            if call is not None:
                name = _terminal_name(call.func)
                if name == "acquire":
                    depth += 1
                elif name == "release":
                    depth = max(depth - 1, 0)
                elif name == "write" and depth == 0 and call.args:
                    self._check_shared_write(call)
                continue
            for attr in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr, None)
                if sub:
                    self._scan_shared_block(sub, depth)
            for handler in getattr(stmt, "handlers", ()):
                self._scan_shared_block(handler.body, depth)

    def _check_shared_write(self, call: ast.Call) -> None:
        names = self._names_in(call.args[0])
        shared = sorted(names & self._shared_names)
        if not shared or names & _THREAD_PARTITION_NAMES:
            return
        self.report(
            call,
            "SIM012",
            f"write({shared[0]}) mutates a shared-annotated object outside "
            "an acquire/release region; hold the lock across the write or "
            "index by thread_id to make the partitioning explicit",
        )

    # -- SIM013: silent exception swallows in the engine -----------------

    @staticmethod
    def _is_noop_body(body: list[ast.stmt]) -> bool:
        """A handler body that discards the error: only ``pass`` /
        bare ``...`` statements."""
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            ):
                continue
            return False
        return True

    def visit_Try(self, node: ast.Try) -> None:
        if self.engine_module:
            for handler in node.handlers:
                caught = _terminal_name(handler.type) if handler.type is not None else None
                broad = handler.type is None or caught in ("Exception", "BaseException")
                if broad and self._is_noop_body(handler.body):
                    what = f"except {caught}" if caught else "bare except"
                    self.report(
                        handler,
                        "SIM013",
                        f"{what}: pass silently swallows errors inside the engine; "
                        "a fault here must surface (re-raise, narrow the type, or "
                        "record it) — silent swallows turn crashes into state "
                        "divergence",
                    )
        self.generic_visit(node)

    # -- SIM009: counters must live in the metrics registry -------------

    def _check_counters_mutation(self, target: ast.AST, node: ast.AST) -> None:
        """Flag ``<x>.counters[...] = / += ...`` outside ``repro/obs/``:
        protocol statistics belong to the metrics registry (typed
        handles), not ad-hoc dicts the telemetry layer cannot see."""
        if self.testish or self.mod.startswith(METRICS_HOME_PREFIX):
            return
        if isinstance(target, ast.Subscript) and _terminal_name(target.value) == "counters":
            self.report(
                node,
                "SIM009",
                "direct counters[...] mutation; use a metrics-registry Counter "
                "handle (repro.obs.metrics) so the stat is typed, snapshot-"
                "ordered and visible to telemetry",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_counters_mutation(target, node)
            self._check_sampling_mutation(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_counters_mutation(node.target, node)
        self._check_sampling_mutation(node.target, node)
        self.generic_visit(node)

    # -- SIM011: sampling state is sampling.py's to mutate ---------------

    def _sampling_exempt(self) -> bool:
        return self.testish or self.mod == SAMPLING_HOME

    def _check_sampling_mutation(self, target: ast.AST, node: ast.AST) -> None:
        """Flag writes to the policy gap table, per-class decision memos
        or backend counters (``gap_table[...] = ``, ``st.real_gap = ``)
        outside :data:`SAMPLING_HOME`: gap/epoch consistency is what lets
        every backend trust its memo and threshold derivations, so rate
        changes must flow through ``set_rate``/``set_min_gap``."""
        if self._sampling_exempt():
            return
        if isinstance(target, ast.Subscript):
            name = _terminal_name(target.value)
            if name in SAMPLING_CONTAINERS:
                self.report(
                    node,
                    "SIM011",
                    f"direct {name}[...] mutation outside {SAMPLING_HOME}; "
                    "change rates through SamplingPolicy.set_rate/set_min_gap "
                    "so the class epoch bumps and backends stay consistent",
                )
        elif isinstance(target, ast.Attribute) and target.attr in SAMPLING_STATE_ATTRS:
            self.report(
                node,
                "SIM011",
                f"direct .{target.attr} assignment outside {SAMPLING_HOME}; "
                "per-class sampling state mutates only through the policy API "
                "(set_rate/set_nominal_gap/set_min_gap)",
            )

    def _check_sampling_mutator_call(self, node: ast.Call) -> None:
        """Flag ``gap_table.clear()``-style mutator calls (SIM011)."""
        if self._sampling_exempt():
            return
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in SAMPLING_MUTATORS:
            return
        name = _terminal_name(func.value)
        if name in SAMPLING_CONTAINERS:
            self.report(
                node,
                "SIM011",
                f"{name}.{func.attr}() mutates sampling state outside "
                f"{SAMPLING_HOME}; use the SamplingPolicy API instead",
            )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def check_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one source string as if it lived at ``path``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 0, exc.offset or 0, "SIM000", f"syntax error: {exc.msg}")
        ]
    checker = _Checker(path, source)
    checker.collect_shared_names(tree)
    checker.visit(tree)
    return sorted(checker.findings, key=lambda f: (f.path, f.line, f.col, f.code))


def check_file(path: str | Path) -> list[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    return check_source(p.read_text(encoding="utf-8"), str(p))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the .py files under them, sorted."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if "__pycache__" not in q.parts)
        elif p.suffix == ".py":
            yield p


def check_paths(
    paths: Iterable[str | Path], *, effects_summary=None
) -> list[Finding]:
    """Lint every .py file under ``paths``.

    When ``effects_summary`` (an
    :class:`~repro.checks.effects.summary.EffectsSummary`) is given, the
    interprocedural SIM009/SIM010 feeds are folded in and deduplicated
    against the syntactic findings.
    """
    files = list(iter_python_files(paths))
    findings: list[Finding] = []
    for p in files:
        findings.extend(check_file(p))
    if effects_summary is not None:
        seen = {(Path(f.path).as_posix(), f.line, f.code) for f in findings}
        for f in semantic_findings(effects_summary, files):
            if (Path(f.path).as_posix(), f.line, f.code) not in seen:
                findings.append(f)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def semantic_findings(
    summary, checked_files: Iterable[str | Path]
) -> list[Finding]:
    """SIM009/SIM010 findings sourced from the effect analysis.

    The syntactic rules only see a mutation or host call spelled at the
    flagged line; the ``effects.json`` feeds carry facts proven *through
    the call graph*: ``counter_writes`` are alias-tracked ``counters``
    mutations outside the registry (semantic SIM009), ``host_in_worker``
    are host effects anywhere in the worker-dispatched closure, not just
    in partition-worker *modules* (semantic SIM010).  Findings honor the
    standard ``# simlint: disable=`` escape hatch on the flagged line.
    """
    by_suffix: dict[str, Path] = {}
    for f in checked_files:
        by_suffix[Path(f).as_posix()] = Path(f)

    def locate(rel: str) -> Path | None:
        for posix, p in by_suffix.items():
            if posix.endswith(rel):
                return p
        return None

    out: list[Finding] = []

    def emit(rel: str, entries: list, code: str, render) -> None:
        p = locate(rel)
        if p is None or not p.is_file():
            return
        disabled = _disabled_lines(p.read_text(encoding="utf-8"))
        for entry in entries:
            line = int(entry[0])
            codes = disabled.get(line, ())
            if code in codes or "ALL" in codes:
                continue
            out.append(Finding(str(p), line, 0, code, render(entry)))

    for rel, entries in sorted(summary.counter_writes.items()):
        emit(
            rel, entries, "SIM009",
            lambda e: (
                f"alias-tracked counters[...] mutation in {e[1]} outside the "
                "metrics registry (interprocedural, via effects.json)"
            ),
        )
    for rel, entries in sorted(summary.host_in_worker.items()):
        emit(
            rel, entries, "SIM010",
            lambda e: (
                f"host effect ({e[2]}) in {e[1]}, reached from a worker-"
                "dispatched callable (interprocedural, via effects.json)"
            ),
        )
    return out


def main(argv: list[str] | None = None) -> int:
    """CLI shim (the full CLI lives in ``repro.checks.__main__``)."""
    from repro.checks.__main__ import main as cli_main

    return cli_main(["lint"] + list(argv or []))


if __name__ == "__main__":
    raise SystemExit(main())
