"""staticflow: whole-program static analysis over the workload IR.

Where the dynamic profilers (TCM correlation, sticky-set footprinting)
and checkers (protocol sanitizer, happens-before race detector) observe
a *running* workload, this package analyzes the pre-decoded thread
programs plus the built object graph **before the first op executes**:

* :mod:`~repro.checks.staticflow.verifier` — IR well-formedness
  (IR001–IR009) and the structural hard gate in front of the
  vectorized replay engine;
* :mod:`~repro.checks.staticflow.cfg` — per-thread segment CFGs aligned
  at barrier episodes, plus a generic fixed-point dataflow solver
  (must-hold locksets);
* :mod:`~repro.checks.staticflow.sharing` — node-private /
  read-mostly-shared / single-writer / ping-pong classification per
  object and allocation site, predicted TCM structure, and per-class
  sampling-rate pre-seeds;
* :mod:`~repro.checks.staticflow.lockset` — the static may-race set,
  provably a superset of every dynamic FastTrack report (the
  ``python -m repro.checks static`` gate's soundness cross-check);
* :mod:`~repro.checks.staticflow.report` — the :func:`analyze` driver
  with text/JSON rendering.
"""

from repro.checks.staticflow.cfg import Segment, ThreadCFG, WorkloadCFG, build_cfg, fixed_point
from repro.checks.staticflow.lockset import MayRace, covers, may_races, uncovered_dynamic
from repro.checks.staticflow.report import StaticReport, analyze, analyze_ir
from repro.checks.staticflow.sharing import (
    ObjectSharing,
    SharingAnalysis,
    SiteSummary,
    analyze_sharing,
)
from repro.checks.staticflow.verifier import (
    IRProblem,
    IRVerificationError,
    gate_program,
    verify_ops,
    verify_structure,
    verify_workload,
)

__all__ = [
    "IRProblem",
    "IRVerificationError",
    "verify_structure",
    "verify_ops",
    "verify_workload",
    "gate_program",
    "Segment",
    "ThreadCFG",
    "WorkloadCFG",
    "build_cfg",
    "fixed_point",
    "ObjectSharing",
    "SiteSummary",
    "SharingAnalysis",
    "analyze_sharing",
    "MayRace",
    "may_races",
    "covers",
    "uncovered_dynamic",
    "StaticReport",
    "analyze",
    "analyze_ir",
]
