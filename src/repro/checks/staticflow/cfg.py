"""Control-flow graph + fixed-point dataflow over workload programs.

Thread programs are loop-free op streams, so each thread's CFG is a
linear chain of **segments** — maximal op spans between synchronization
ops (the exact spans the interpreter executes without preemption under
lazy release consistency).  Cross-thread structure comes from barriers:
every thread issues the same barrier-id sequence (verified as IR008),
so the k-th barrier of each thread forms one global **episode**, and
the segments between episodes k-1 and k form **phase** k — the unit of
static concurrency (two ops are concurrent only if their segments share
a phase; everything across a barrier is happens-before ordered by the
barrier's all-thread join).

On top of the graph sits a small generic worklist solver
(:func:`fixed_point`); the one instance the analyses need today is the
**must-hold lockset** (meet = set intersection over predecessors,
transfer = the segment terminator's acquire/release effect), which
annotates every segment with the locks certainly held while its ops
execute.  Loop-free chains converge in one pass, but the solver is
deliberately general so richer lattices (e.g. copy-state facts) can
reuse it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Iterator

from repro.runtime.program import (
    OP_ACQUIRE,
    OP_BARRIER,
    OP_READ,
    OP_RELEASE,
    OP_WRITE,
)

__all__ = ["Segment", "ThreadCFG", "WorkloadCFG", "build_cfg", "fixed_point"]


@dataclass(slots=True)
class Segment:
    """One uninterrupted op span of one thread (a CFG node)."""

    thread_id: int
    #: position in the thread's chain (0-based).
    index: int
    #: op span [start, end) in the compiled program; sync ops excluded.
    start: int
    end: int
    #: barrier episodes completed before this segment runs.
    phase: int
    #: the sync op ending the segment, or None at program end.
    terminator: tuple | None
    #: obj_id -> repeat-weighted access counts inside the span.
    reads: dict[int, int] = field(default_factory=dict)
    writes: dict[int, int] = field(default_factory=dict)
    #: must-hold lockset while the span executes (dataflow result).
    locks: frozenset[int] = frozenset()

    @property
    def n_ops(self) -> int:
        """Ops in the span (terminator excluded)."""
        return self.end - self.start


@dataclass(slots=True)
class ThreadCFG:
    """One thread's linear segment chain."""

    thread_id: int
    segments: list[Segment]
    #: barrier ids in program order (the thread's episode sequence).
    barrier_ids: tuple


class WorkloadCFG:
    """The whole-workload CFG: per-thread chains aligned at barriers."""

    def __init__(self, threads: dict[int, ThreadCFG], n_phases: int) -> None:
        self.threads = threads
        #: phase count = barrier episodes + 1 (the final phase runs from
        #: the last barrier to program end).
        self.n_phases = n_phases

    def segments(self) -> Iterator[Segment]:
        """All segments, thread-major then program order."""
        for tid in sorted(self.threads):
            yield from self.threads[tid].segments

    def phase_segments(self, phase: int) -> list[Segment]:
        """Every thread's segments inside one phase."""
        return [s for s in self.segments() if s.phase == phase]


def _split_thread(thread_id: int, program) -> ThreadCFG:
    """Split one compiled program into its segment chain and summarize
    each segment's accesses."""
    ops = program.ops
    sync = program.sync_points()
    bounds = [pc for pc, _code in sync] + [len(ops)]
    segments: list[Segment] = []
    barrier_ids: list[int] = []
    start = 0
    phase = 0
    for index, end in enumerate(bounds):
        terminator = ops[end] if end < len(ops) else None
        seg = Segment(
            thread_id=thread_id,
            index=index,
            start=start,
            end=end,
            phase=phase,
            terminator=terminator,
        )
        for pc in range(start, end):
            op = ops[pc]
            code = op[0]
            if code == OP_READ:
                seg.reads[op[1]] = seg.reads.get(op[1], 0) + op[3]
            elif code == OP_WRITE:
                seg.writes[op[1]] = seg.writes.get(op[1], 0) + op[3]
        segments.append(seg)
        if terminator is not None and terminator[0] == OP_BARRIER:
            barrier_ids.append(terminator[1])
            phase += 1
        start = end + 1
    return ThreadCFG(thread_id=thread_id, segments=segments, barrier_ids=tuple(barrier_ids))


def fixed_point(
    nodes: list[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    init: Callable[[Hashable], object],
    transfer: Callable[[Hashable, object], object],
    meet: Callable[[object, object], object],
) -> dict[Hashable, object]:
    """Generic worklist dataflow solver; returns the IN fact per node.

    ``init(node)`` seeds entry nodes (and the optimistic start value for
    the rest — return ``None`` for ⊤, which :func:`meet` never sees);
    ``transfer(node, in_fact)`` produces the node's OUT fact;
    ``meet(a, b)`` combines predecessor OUT facts.  Iterates to a fixed
    point in reverse-post-order-ish worklist fashion; on the loop-free
    chains built here that is a single pass, but cyclic graphs converge
    too (given a monotone transfer over a finite lattice).
    """
    preds: dict[Hashable, list[Hashable]] = {n: [] for n in nodes}
    succs: dict[Hashable, list[Hashable]] = {n: [] for n in nodes}
    for src, dst in edges:
        preds[dst].append(src)
        succs[src].append(dst)
    in_facts: dict[Hashable, object] = {n: init(n) for n in nodes}
    work = deque(nodes)
    queued = set(nodes)
    while work:
        node = work.popleft()
        queued.discard(node)
        if preds[node]:
            combined = None
            for p in preds[node]:
                p_in = in_facts[p]
                if p_in is None:
                    continue
                out = transfer(p, p_in)
                combined = out if combined is None else meet(combined, out)
            if combined is None or combined == in_facts[node]:
                continue
            in_facts[node] = combined
        for s in succs[node]:
            if s not in queued:
                queued.add(s)
                work.append(s)
    return in_facts


def _solve_locksets(tcfg: ThreadCFG) -> None:
    """Annotate a thread chain with must-hold locksets via the solver."""
    segs = tcfg.segments
    nodes = [s.index for s in segs]
    edges = [(i, i + 1) for i in nodes[:-1]]

    def init(index):
        return frozenset() if index == 0 else None

    def transfer(index, held: frozenset) -> frozenset:
        term = segs[index].terminator
        if term is None:
            return held
        if term[0] == OP_ACQUIRE:
            return held | {term[1]}
        if term[0] == OP_RELEASE:
            return held - {term[1]}
        return held  # BARRIER: locks pass through (IR006 flags this)

    facts = fixed_point(nodes, edges, init, transfer, lambda a, b: a & b)
    for seg in segs:
        fact = facts[seg.index]
        seg.locks = fact if fact is not None else frozenset()


def build_cfg(ir) -> WorkloadCFG:
    """Build the workload CFG from a verified :class:`~repro.runtime.ir.
    WorkloadIR`: split every thread at its sync points, align phases at
    barriers, and solve the must-hold lockset dataflow."""
    threads: dict[int, ThreadCFG] = {}
    n_phases = 1
    for tid in ir.thread_ids():
        tcfg = _split_thread(tid, ir.programs[tid])
        _solve_locksets(tcfg)
        threads[tid] = tcfg
        n_phases = max(n_phases, len(tcfg.barrier_ids) + 1)
    return WorkloadCFG(threads, n_phases)
