"""Static lockset/may-race analysis over the workload CFG.

The claim this module maintains (and the ``static`` check gate proves
against the dynamic detector on every bundled workload): the static
may-race set is a **superset** of every report the FastTrack-style
happens-before detector (:mod:`repro.checks.racedetect`) can produce on
the same workload.  The argument rests on the only two exclusions the
analysis makes, both of which correspond to *guaranteed* happens-before
edges in the dynamic semantics:

* **Different phases** — a barrier episode joins *all* participants'
  vector clocks (the detector's "barrier release" edge), so any two
  accesses separated by a barrier are HB-ordered in every execution.
* **Common lock** — if both threads' accesses hold a common lock
  (must-hold locksets from the CFG dataflow, so "holds" is certain,
  not "may hold"), mutual exclusion serializes them and the detector's
  release->acquire edge orders the pair in whichever order the lock
  transfers.

Everything else — same phase, different threads, at least one write,
some lockset pair disjoint — is reported as a :class:`MayRace`.  The
analysis is deliberately one-sided: extra HB edges the detector tracks
(diff propagation, coincidental lock chains) only ever *remove* dynamic
reports, never add ones the static set lacks, so static-only entries
(false positives) are expected and reported as such by the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MayRace", "may_races", "covers", "uncovered_dynamic"]


@dataclass(frozen=True, slots=True)
class MayRace:
    """One statically-possible race: an unordered conflicting pair."""

    obj_id: int
    class_name: str
    site: str
    #: the two threads, tid_a < tid_b.
    tid_a: int
    tid_b: int
    #: "write-write" | "read-write" (a read-write pair in either
    #: direction collapses to one kind; the dynamic detector's
    #: "write-read"/"read-write" both map onto it).
    kind: str
    #: first phase the pair conflicts in.
    phase: int
    #: why the pair is unordered (locksets at the conflicting accesses).
    evidence: str

    @property
    def key(self) -> tuple:
        """Dedup/coverage key: (obj, unordered pair, kind)."""
        return (self.obj_id, self.tid_a, self.tid_b, self.kind)

    def render(self) -> str:
        """One-line human form."""
        return (
            f"may-race on object {self.obj_id} ({self.class_name}, site {self.site}), "
            f"{self.kind}: threads {self.tid_a} vs {self.tid_b} in phase "
            f"{self.phase} — {self.evidence}"
        )


def _disjoint_pair(locksets_a: set, locksets_b: set) -> tuple | None:
    """A (lockset_a, lockset_b) witness with no common lock, or None."""
    for la in sorted(locksets_a, key=sorted):
        for lb in sorted(locksets_b, key=sorted):
            if not (la & lb):
                return la, lb
    return None


def _fmt_locks(locks: frozenset) -> str:
    return "{" + ", ".join(str(x) for x in sorted(locks)) + "}" if locks else "no locks"


def may_races(ir, cfg) -> list[MayRace]:
    """Compute the static may-race set of a workload.

    Accumulates, per ``(phase, object, thread)``, the set of must-hold
    locksets under which the thread reads/writes the object in that
    phase; then reports every same-phase cross-thread conflicting pair
    with a disjoint lockset witness.  Deduped on (object, pair, kind)
    across phases — one entry per distinct race, like the dynamic
    detector's report dedup.
    """
    # (phase, obj_id) -> tid -> (read locksets, write locksets)
    acc: dict[tuple[int, int], dict[int, tuple[set, set]]] = {}
    for seg in cfg.segments():
        for obj_id in seg.reads:
            per_tid = acc.setdefault((seg.phase, obj_id), {})
            per_tid.setdefault(seg.thread_id, (set(), set()))[0].add(seg.locks)
        for obj_id in seg.writes:
            per_tid = acc.setdefault((seg.phase, obj_id), {})
            per_tid.setdefault(seg.thread_id, (set(), set()))[1].add(seg.locks)
    found: dict[tuple, MayRace] = {}
    for phase, obj_id in sorted(acc):
        per_tid = acc[(phase, obj_id)]
        tids = sorted(per_tid)
        info = ir.objects.get(obj_id)
        class_name = info.class_name if info is not None else "?"
        site = info.site if info is not None else "?"
        for i, ta in enumerate(tids):
            reads_a, writes_a = per_tid[ta]
            for tb in tids[i + 1 :]:
                reads_b, writes_b = per_tid[tb]
                ww = _disjoint_pair(writes_a, writes_b) if writes_a and writes_b else None
                if ww is not None:
                    key = (obj_id, ta, tb, "write-write")
                    if key not in found:
                        found[key] = MayRace(
                            obj_id=obj_id,
                            class_name=class_name,
                            site=site,
                            tid_a=ta,
                            tid_b=tb,
                            kind="write-write",
                            phase=phase,
                            evidence=(
                                f"both write, t{ta} under {_fmt_locks(ww[0])} vs "
                                f"t{tb} under {_fmt_locks(ww[1])}; no common lock, "
                                "no barrier between"
                            ),
                        )
                rw = None
                if reads_a and writes_b:
                    rw = _disjoint_pair(reads_a, writes_b)
                if rw is None and writes_a and reads_b:
                    rw = _disjoint_pair(writes_a, reads_b)
                if rw is not None:
                    key = (obj_id, ta, tb, "read-write")
                    if key not in found:
                        found[key] = MayRace(
                            obj_id=obj_id,
                            class_name=class_name,
                            site=site,
                            tid_a=ta,
                            tid_b=tb,
                            kind="read-write",
                            phase=phase,
                            evidence=(
                                f"read/write conflict, locksets {_fmt_locks(rw[0])} "
                                f"vs {_fmt_locks(rw[1])} disjoint; no barrier between"
                            ),
                        )
    return [found[k] for k in sorted(found)]


def _dynamic_key(report) -> tuple:
    """Coverage key of one dynamic RaceReport: (obj, pair, kind class)."""
    kind = "write-write" if report.kind == "write-write" else "read-write"
    a, b = sorted((report.first.thread_id, report.second.thread_id))
    return (report.obj_id, a, b, kind)


def covers(static: list[MayRace], report) -> bool:
    """True when the static set contains a dynamic report's race."""
    keys = {r.key for r in static}
    return _dynamic_key(report) in keys


def uncovered_dynamic(static: list[MayRace], reports) -> list:
    """Dynamic reports the static set misses (must be empty: the
    soundness oracle the ``static`` gate and tests assert)."""
    keys = {r.key for r in static}
    return [rep for rep in reports if _dynamic_key(rep) not in keys]
