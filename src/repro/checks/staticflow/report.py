"""Staticflow driver: run the whole pipeline on a workload and render
text/JSON reports.

:func:`analyze` is the one-call entry point: build the workload on a
fresh DJVM (no run — this is the point), export the IR, verify it, and
run the CFG, sharing and may-race analyses.  The
:class:`StaticReport` it returns is what the ``python -m repro.checks
static`` CLI prints/serializes and what the soundness tests compare
against the dynamic detector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checks.staticflow.cfg import WorkloadCFG, build_cfg
from repro.checks.staticflow.lockset import MayRace, may_races
from repro.checks.staticflow.sharing import (
    CLASS_ORDER,
    SharingAnalysis,
    analyze_sharing,
)
from repro.checks.staticflow.verifier import IRProblem, verify_workload

__all__ = ["StaticReport", "analyze", "analyze_ir"]


@dataclass(slots=True)
class StaticReport:
    """The full static-analysis result for one workload."""

    name: str
    ir: object
    problems: list[IRProblem]
    #: None when verification failed (no structure to analyze).
    cfg: WorkloadCFG | None
    sharing: SharingAnalysis | None
    races: list[MayRace]
    preseeds: dict[str, float]

    @property
    def verified(self) -> bool:
        """True when the IR passed full verification."""
        return not self.problems

    def render(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"# static analysis: {self.name}"]
        lines.append(
            f"threads {self.ir.n_threads}, nodes {self.ir.n_nodes}, "
            f"objects {len(self.ir.objects)}, "
            f"ops {sum(p.n_ops for p in self.ir.programs.values())}"
        )
        if self.problems:
            lines.append(f"VERIFIER: {len(self.problems)} problem(s)")
            lines.extend(f"  {p.render()}" for p in self.problems)
            return "\n".join(lines)
        lines.append(f"verifier: clean, phases {self.cfg.n_phases}")
        counts = self.sharing.counts()
        lines.append(
            "sharing: "
            + ", ".join(f"{counts[c]} {c}" for c in CLASS_ORDER if counts[c])
        )
        for site in sorted(self.sharing.sites):
            summary = self.sharing.sites[site]
            lines.append(
                f"  site {site:<24} {summary.n_objects:>5} obj  "
                f"{summary.classification:<18} shared {summary.shared_bytes} B"
            )
        if self.preseeds:
            seeds = ", ".join(f"{k}={v}" for k, v in sorted(self.preseeds.items()))
            lines.append(f"rate pre-seeds: {seeds}")
        lines.append(f"may-race set: {len(self.races)} pair(s)")
        lines.extend(f"  {r.render()}" for r in self.races)
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serializable form of the report."""
        doc: dict = {
            "name": self.name,
            "n_threads": self.ir.n_threads,
            "n_nodes": self.ir.n_nodes,
            "n_objects": len(self.ir.objects),
            "problems": [
                {
                    "code": p.code,
                    "thread_id": p.thread_id,
                    "pc": p.pc,
                    "message": p.message,
                }
                for p in self.problems
            ],
        }
        if not self.verified:
            return doc
        doc["n_phases"] = self.cfg.n_phases
        doc["sharing"] = {
            "counts": self.sharing.counts(),
            "sites": {
                site: {
                    "n_objects": s.n_objects,
                    "classification": s.classification,
                    "counts": s.counts,
                    "shared_bytes": s.shared_bytes,
                    "classes": list(s.class_names),
                }
                for site, s in sorted(self.sharing.sites.items())
            },
        }
        doc["preseeds"] = dict(sorted(self.preseeds.items()))
        doc["may_races"] = [
            {
                "obj_id": r.obj_id,
                "class_name": r.class_name,
                "site": r.site,
                "threads": [r.tid_a, r.tid_b],
                "kind": r.kind,
                "phase": r.phase,
                "evidence": r.evidence,
            }
            for r in self.races
        ]
        return doc


def analyze_ir(ir, name: str = "workload") -> StaticReport:
    """Run the static pipeline over an already-exported IR."""
    problems = verify_workload(ir)
    if problems:
        return StaticReport(
            name=name,
            ir=ir,
            problems=problems,
            cfg=None,
            sharing=None,
            races=[],
            preseeds={},
        )
    cfg = build_cfg(ir)
    sharing = analyze_sharing(ir, cfg)
    return StaticReport(
        name=name,
        ir=ir,
        problems=[],
        cfg=cfg,
        sharing=sharing,
        races=may_races(ir, cfg),
        preseeds=sharing.rate_preseeds(),
    )


def analyze(
    workload,
    *,
    n_nodes: int,
    placement: str | list[int] = "round_robin",
    name: str | None = None,
) -> StaticReport:
    """Build ``workload`` on a fresh (never-run) DJVM and analyze it.

    Classification depends on the thread->node placement, so pass the
    same ``placement`` the dynamic run you want to compare against
    uses.
    """
    from repro.runtime.djvm import DJVM

    djvm = DJVM(n_nodes=n_nodes)
    workload.build(djvm, placement=placement)
    ir = djvm.export_ir(workload.programs())
    if name is None:
        name = type(workload).__name__
    return analyze_ir(ir, name=name)
