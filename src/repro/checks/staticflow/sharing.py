"""Static sharing/escape analysis: classify every object (and every
allocation site) from the workload CFG, before the first op executes.

Classification lattice (ordered by how expensive the pattern is for a
home-based LRC protocol — the order site summaries and rate pre-seeds
take the worst of):

==================  =====================================================
unaccessed          no thread touches the object
node-private        all accessors live on one node (never escapes its
                    node: no faults, no diffs — the protocol fast path)
read-mostly-shared  cross-node accessors but no writer after it is
                    shared (one cold fault per node, then silence)
single-writer       exactly one writing thread, remote readers (diffs
                    flow one way; a candidate for home migration to the
                    writer's node)
ping-pong           two or more writers (alternating invalidations —
                    DJXPerf's canonical inefficiency pattern and the
                    placement optimizer's prime target)
==================  =====================================================

Outputs feed three consumers: the predicted TCM (same shared-bytes
structure the dynamic correlation profiler estimates — comparable via
``repro.obs compare``), per-class sampling-rate pre-seeds
(:meth:`repro.core.sampling.SamplingPolicy.preseed`, off by default),
and the placement candidate feed (:mod:`repro.placement.candidates`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CLASS_ORDER",
    "ObjectSharing",
    "SiteSummary",
    "SharingAnalysis",
    "analyze_sharing",
]

#: classifications, cheapest protocol behavior first (worst-of ordering).
CLASS_ORDER = (
    "unaccessed",
    "node-private",
    "read-mostly-shared",
    "single-writer",
    "ping-pong",
)
_RANK = {name: i for i, name in enumerate(CLASS_ORDER)}

#: sampling-rate pre-seed per classification (page-relative nX rates:
#: higher = finer sampling).  Private data earns the coarse default;
#: the shared patterns the profilers must resolve quickly get finer
#: starting rates so the adaptive controller skips its warm-up descent.
PRESEED_RATES = {
    "unaccessed": None,
    "node-private": 1,
    "read-mostly-shared": 2,
    "single-writer": 4,
    "ping-pong": 8,
}


@dataclass(slots=True)
class ObjectSharing:
    """Per-object static access facts and the derived classification."""

    obj_id: int
    class_name: str
    site: str
    home_node: int
    size_bytes: int
    readers: set[int] = field(default_factory=set)
    writers: set[int] = field(default_factory=set)
    read_count: int = 0
    write_count: int = 0
    classification: str = "unaccessed"

    @property
    def accessors(self) -> set[int]:
        """Threads touching the object at all."""
        return self.readers | self.writers

    def nodes(self, node_of_thread: dict[int, int]) -> set[int]:
        """Nodes whose threads touch the object."""
        return {node_of_thread[t] for t in self.accessors}

    def escapes(self, node_of_thread: dict[int, int]) -> bool:
        """True when any accessor runs off the object's home node."""
        return any(node_of_thread[t] != self.home_node for t in self.accessors)


@dataclass(slots=True)
class SiteSummary:
    """Aggregate over all objects of one allocation site."""

    site: str
    n_objects: int
    #: objects per classification.
    counts: dict[str, int]
    #: worst classification across the site's objects.
    classification: str
    #: total payload bytes of the site's cross-thread-shared objects.
    shared_bytes: int
    class_names: tuple[str, ...]


class SharingAnalysis:
    """The sharing analysis result: per-object + per-site views."""

    def __init__(self, ir, objects: dict[int, ObjectSharing]) -> None:
        self.ir = ir
        self.objects = objects
        self.sites = self._summarize_sites()

    def _summarize_sites(self) -> dict[str, SiteSummary]:
        by_site: dict[str, list[ObjectSharing]] = {}
        for obj in self.objects.values():
            by_site.setdefault(obj.site, []).append(obj)
        out: dict[str, SiteSummary] = {}
        for site in sorted(by_site):
            objs = by_site[site]
            counts: dict[str, int] = {}
            shared_bytes = 0
            worst = "unaccessed"
            for obj in objs:
                counts[obj.classification] = counts.get(obj.classification, 0) + 1
                if _RANK[obj.classification] > _RANK[worst]:
                    worst = obj.classification
                if len(obj.accessors) >= 2:
                    shared_bytes += obj.size_bytes
            out[site] = SiteSummary(
                site=site,
                n_objects=len(objs),
                counts=counts,
                classification=worst,
                shared_bytes=shared_bytes,
                class_names=tuple(sorted({o.class_name for o in objs})),
            )
        return out

    def predicted_tcm(self):
        """Predicted thread correlation matrix: shared payload bytes per
        thread pair (every co-accessed object contributes its size to
        each accessor pair — the same ground-truth structure
        ``GroupSharingWorkload.true_tcm`` computes and the dynamic
        correlation profiler estimates)."""
        import numpy as np

        n = self.ir.n_threads
        tcm = np.zeros((n, n))
        for obj in self.objects.values():
            acc = sorted(obj.accessors)
            if len(acc) < 2:
                continue
            for i in acc:
                for j in acc:
                    if i != j:
                        tcm[i, j] += obj.size_bytes
        return tcm

    def rate_preseeds(self) -> dict[str, float]:
        """Per-class sampling-rate pre-seeds: each class takes the rate
        of its worst-classified object (see :data:`PRESEED_RATES`);
        entirely unaccessed classes are omitted."""
        worst: dict[str, str] = {}
        for obj in self.objects.values():
            prev = worst.get(obj.class_name, "unaccessed")
            if _RANK[obj.classification] > _RANK[prev]:
                worst[obj.class_name] = obj.classification
        out: dict[str, float] = {}
        for name in sorted(worst):
            rate = PRESEED_RATES[worst[name]]
            if rate is not None:
                out[name] = rate
        return out

    def counts(self) -> dict[str, int]:
        """Objects per classification across the whole workload."""
        out: dict[str, int] = {name: 0 for name in CLASS_ORDER}
        for obj in self.objects.values():
            out[obj.classification] += 1
        return out


def _classify(obj: ObjectSharing, node_of_thread: dict[int, int]) -> str:
    accessors = obj.accessors
    if not accessors:
        return "unaccessed"
    if len(obj.nodes(node_of_thread)) == 1:
        return "node-private"
    if not obj.writers:
        return "read-mostly-shared"
    if len(obj.writers) == 1:
        return "single-writer"
    return "ping-pong"


def analyze_sharing(ir, cfg) -> SharingAnalysis:
    """Run the sharing analysis over a built CFG.

    Walks every segment's access summary once, accumulates per-object
    reader/writer sets, and classifies each object per the module
    lattice (classification depends on the *placement*, so the same
    workload built with a different thread->node map can legitimately
    classify differently — exactly what the placement optimizer wants
    to exploit).
    """
    objects: dict[int, ObjectSharing] = {}
    for obj_id in sorted(ir.objects):
        info = ir.objects[obj_id]
        objects[obj_id] = ObjectSharing(
            obj_id=obj_id,
            class_name=info.class_name,
            site=info.site,
            home_node=info.home_node,
            size_bytes=info.size_bytes,
        )
    for seg in cfg.segments():
        for obj_id, count in seg.reads.items():
            obj = objects.get(obj_id)
            if obj is not None:
                obj.readers.add(seg.thread_id)
                obj.read_count += count
        for obj_id, count in seg.writes.items():
            obj = objects.get(obj_id)
            if obj is not None:
                obj.writers.add(seg.thread_id)
                obj.write_count += count
    for obj in objects.values():
        obj.classification = _classify(obj, ir.node_of_thread)
    return SharingAnalysis(ir, objects)
