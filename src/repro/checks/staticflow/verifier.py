"""The workload IR verifier: well-formedness checks over pre-decoded
thread programs, plus the structural hard gate in front of the
batched/vectorized replay engines.

Two tiers, two costs:

* :func:`verify_structure` — the **gate tier**: the structural
  invariants the stack machine and the vector replay engine rely on
  (opcode range, CALL/RET balance, SETSLOT-in-frame, lock pairing),
  computed over the dense ``codes`` byte array with numpy cumulative
  sums plus a Python loop over only the (few) sync ops.  The
  interpreter calls :func:`gate_program` exactly where the vector
  engine engages; the result is cached on the compiled program
  (``CompiledProgram._verified``) so reuse across DJVM instances — the
  bench-harness pattern — verifies once.
* :func:`verify_ops` / :func:`verify_workload` — the **full tier** for
  the CLI and tests: per-op arity/field domains, lock-across-barrier,
  object-id domain against the allocated heap, thread placement, and
  cross-thread barrier pairing (every thread must issue the same
  barrier-id sequence, or the run deadlocks at the first divergence).

Problem codes
-------------

========  ============================================================
IR001     unknown opcode (outside ``OP_READ..OP_BARRIER``)
IR002     malformed op: wrong tuple arity or field outside its domain
IR003     CALL/RET imbalance (RET on empty stack / unpopped frames)
IR004     SETSLOT outside any frame
IR005     lock pairing: re-acquire of a held lock, release of an
          unheld lock, or program end while holding locks
IR006     barrier crossed while holding a lock (serializes the whole
          episode behind the holder and breaks phase alignment)
IR007     object id not allocated in the workload's object space
IR008     barrier-id sequences differ across threads (deadlock at the
          first divergence: barrier parties = all threads)
IR009     thread placed on a node outside the cluster
========  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.program import (
    OP_ACQUIRE,
    OP_BARRIER,
    OP_CALL,
    OP_COMPUTE,
    OP_READ,
    OP_RELEASE,
    OP_RET,
    OP_SETSLOT,
    OP_WRITE,
    OPCODE_NAMES,
    CompiledProgram,
)

try:  # pragma: no cover - numpy is a hard dep of the repo, but the
    import numpy as _np  # gate must not be the module that requires it
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None

__all__ = [
    "IRProblem",
    "IRVerificationError",
    "verify_structure",
    "verify_ops",
    "verify_workload",
    "gate_program",
]

#: expected tuple arity per opcode (see repro.runtime.program docstring).
_ARITY = {
    OP_READ: 5,
    OP_WRITE: 5,
    OP_COMPUTE: 2,
    OP_CALL: 4,
    OP_RET: 1,
    OP_SETSLOT: 3,
    OP_ACQUIRE: 2,
    OP_RELEASE: 2,
    OP_BARRIER: 2,
}


@dataclass(frozen=True, slots=True)
class IRProblem:
    """One verifier finding: where in which thread's program, and why."""

    code: str
    message: str
    thread_id: int | None = None
    pc: int | None = None

    def render(self) -> str:
        """Canonical ``[IRnnn] thread t op pc: message`` line."""
        where = []
        if self.thread_id is not None:
            where.append(f"thread {self.thread_id}")
        if self.pc is not None:
            where.append(f"op {self.pc}")
        prefix = " ".join(where)
        return f"[{self.code}] {prefix + ': ' if prefix else ''}{self.message}"


class IRVerificationError(RuntimeError):
    """Raised by the structural gate when a program fails verification."""

    def __init__(self, problems: list[IRProblem]) -> None:
        self.problems = problems
        lines = "\n  ".join(p.render() for p in problems)
        super().__init__(f"workload IR failed verification:\n  {lines}")


# ---------------------------------------------------------------------------
# gate tier: structural checks over the dense opcode array
# ---------------------------------------------------------------------------


def _structure_python(program: CompiledProgram, thread_id: int | None) -> list[IRProblem]:
    """Pure-Python structural scan (numpy-less fallback; same findings)."""
    problems: list[IRProblem] = []
    depth = 0
    held: set[int] = set()
    for pc, op in enumerate(program.ops):
        code = op[0]
        if code == OP_CALL:
            depth += 1
        elif code == OP_RET:
            depth -= 1
            if depth < 0:
                problems.append(
                    IRProblem("IR003", "RET with empty stack", thread_id, pc)
                )
                depth = 0
        elif code == OP_SETSLOT:
            if depth == 0:
                problems.append(
                    IRProblem("IR004", "SETSLOT outside any frame", thread_id, pc)
                )
        elif code == OP_ACQUIRE:
            lock = op[1]
            if lock in held:
                problems.append(
                    IRProblem("IR005", f"ACQUIRE of lock {lock} already held", thread_id, pc)
                )
            held.add(lock)
        elif code == OP_RELEASE:
            lock = op[1]
            if lock not in held:
                problems.append(
                    IRProblem("IR005", f"RELEASE of lock {lock} not held", thread_id, pc)
                )
            held.discard(lock)
    if depth > 0:
        problems.append(
            IRProblem("IR003", f"program ends with {depth} unpopped frame(s)", thread_id)
        )
    if held:
        problems.append(
            IRProblem("IR005", f"program ends holding locks {sorted(held)}", thread_id)
        )
    return problems


def verify_structure(
    program: CompiledProgram, thread_id: int | None = None
) -> list[IRProblem]:
    """Gate-tier structural verification of one compiled program.

    Checks IR001 (opcode range — re-asserted, though compilation already
    rejects it), IR003 (CALL/RET balance), IR004 (SETSLOT-in-frame) and
    IR005 (lock pairing).  The frame-depth scan runs as numpy cumulative
    sums over the dense opcode bytes; only the program's sync ops are
    touched from Python, so gating a program costs far less than one
    scalar execution of it.
    """
    codes = program.codes
    if not codes:
        return []
    if max(codes) > OP_BARRIER:  # unreachable via compile_program; raw safety
        pc = next(i for i, c in enumerate(codes) if c > OP_BARRIER)
        return [IRProblem("IR001", f"unknown opcode {codes[pc]}", thread_id, pc)]
    if _np is None:
        return _structure_python(program, thread_id)
    arr = _np.frombuffer(codes, dtype=_np.uint8)
    problems: list[IRProblem] = []
    # Frame depth after each op: +1 per CALL, -1 per RET, cumulative.
    delta = (arr == OP_CALL).astype(_np.int64)
    delta -= arr == OP_RET
    depth = _np.cumsum(delta)
    if bool((depth < 0).any()):
        pc = int(_np.argmax(depth < 0))
        problems.append(IRProblem("IR003", "RET with empty stack", thread_id, pc))
    elif int(depth[-1]) > 0:
        problems.append(
            IRProblem(
                "IR003",
                f"program ends with {int(depth[-1])} unpopped frame(s)",
                thread_id,
            )
        )
    # SETSLOT needs an enclosing frame (depth unchanged by SETSLOT, so
    # the cumulative value *at* the op is the depth it executes under).
    slots = _np.flatnonzero(arr == OP_SETSLOT)
    if slots.size:
        bad = slots[depth[slots] == 0]
        if bad.size:
            problems.append(
                IRProblem("IR004", "SETSLOT outside any frame", thread_id, int(bad[0]))
            )
    # Lock pairing: Python loop over only the sync ops.
    held: set[int] = set()
    ops = program.ops
    for pc in _np.flatnonzero((arr == OP_ACQUIRE) | (arr == OP_RELEASE)).tolist():
        op = ops[pc]
        lock = op[1]
        if op[0] == OP_ACQUIRE:
            if lock in held:
                problems.append(
                    IRProblem("IR005", f"ACQUIRE of lock {lock} already held", thread_id, pc)
                )
            held.add(lock)
        else:
            if lock not in held:
                problems.append(
                    IRProblem("IR005", f"RELEASE of lock {lock} not held", thread_id, pc)
                )
            held.discard(lock)
    if held:
        problems.append(
            IRProblem("IR005", f"program ends holding locks {sorted(held)}", thread_id)
        )
    return problems


def gate_program(program: CompiledProgram) -> None:
    """The vector-engine hard gate: verify once, cache on the program.

    Raises :class:`IRVerificationError` when the program's structure
    would break the batched/vectorized replay machinery; a clean result
    is memoized on the compiled program so every later run (including
    other DJVM instances reusing it) skips straight through.
    """
    if program._verified:
        return
    problems = verify_structure(program)
    if problems:
        raise IRVerificationError(problems)
    program._verified = True


# ---------------------------------------------------------------------------
# full tier: per-op domains + whole-workload checks
# ---------------------------------------------------------------------------


def _check_fields(op: tuple, pc: int, tid: int | None) -> list[IRProblem]:
    """IR002 field-domain checks for one op of known opcode and arity."""
    code = op[0]
    problems: list[IRProblem] = []

    def bad(msg: str) -> None:
        problems.append(IRProblem("IR002", msg, tid, pc))

    if code in (OP_READ, OP_WRITE):
        _, obj_id, n_elems, repeat, elem_off = op
        if not isinstance(obj_id, int) or obj_id < 0:
            bad(f"{OPCODE_NAMES[code]} obj_id {obj_id!r} is not a non-negative int")
        if not isinstance(n_elems, int) or n_elems < 0:
            bad(f"{OPCODE_NAMES[code]} n_elems {n_elems!r} is not a non-negative int")
        if not isinstance(repeat, int) or repeat < 0:
            bad(f"{OPCODE_NAMES[code]} repeat {repeat!r} is not a non-negative int")
        if not isinstance(elem_off, int) or elem_off < 0:
            bad(f"{OPCODE_NAMES[code]} elem_off {elem_off!r} is not a non-negative int")
    elif code == OP_COMPUTE:
        ns = op[1]
        if not isinstance(ns, int) or ns < 0:
            bad(f"COMPUTE ns {ns!r} is not a non-negative int")
    elif code == OP_CALL:
        _, method, n_slots, refs = op
        if not isinstance(method, str):
            bad(f"CALL method {method!r} is not a str")
        if not isinstance(n_slots, int) or n_slots < 0:
            bad(f"CALL n_slots {n_slots!r} is not a non-negative int")
        if not isinstance(refs, tuple):
            bad(f"CALL refs {refs!r} is not a tuple")
        else:
            for ref in refs:
                if (
                    not isinstance(ref, tuple)
                    or len(ref) != 2
                    or not isinstance(ref[0], int)
                    or not isinstance(ref[1], int)
                ):
                    bad(f"CALL ref {ref!r} is not a (slot, obj_id) int pair")
    elif code == OP_SETSLOT:
        _, slot, obj_id = op
        if not isinstance(slot, int) or slot < 0:
            bad(f"SETSLOT slot {slot!r} is not a non-negative int")
        if obj_id is not None and (not isinstance(obj_id, int) or obj_id < 0):
            bad(f"SETSLOT obj_id {obj_id!r} is neither None nor a non-negative int")
    elif code in (OP_ACQUIRE, OP_RELEASE, OP_BARRIER):
        ident = op[1]
        if not isinstance(ident, int) or ident < 0:
            bad(f"{OPCODE_NAMES[code]} id {ident!r} is not a non-negative int")
    return problems


def verify_ops(ops, thread_id: int | None = None) -> list[IRProblem]:
    """Full per-program verification of a raw op iterable.

    Adds the per-op checks the gate tier skips: IR001 on raw (possibly
    uncompilable) streams, IR002 arity/field domains, and IR006
    (barrier crossed while holding a lock).  Structure (IR003/IR004/
    IR005) is re-derived in the same pass.
    """
    problems: list[IRProblem] = []
    depth = 0
    held: set[int] = set()
    for pc, op in enumerate(ops):
        if not isinstance(op, tuple) or not op or not isinstance(op[0], int):
            problems.append(
                IRProblem("IR002", f"op {op!r} is not an opcode-led tuple", thread_id, pc)
            )
            continue
        code = op[0]
        if code not in _ARITY:
            problems.append(IRProblem("IR001", f"unknown opcode {code}", thread_id, pc))
            continue
        if len(op) != _ARITY[code]:
            problems.append(
                IRProblem(
                    "IR002",
                    f"{OPCODE_NAMES[code]} op has {len(op)} fields, expected {_ARITY[code]}",
                    thread_id,
                    pc,
                )
            )
            continue
        problems.extend(_check_fields(op, pc, thread_id))
        if code == OP_CALL:
            depth += 1
        elif code == OP_RET:
            depth -= 1
            if depth < 0:
                problems.append(IRProblem("IR003", "RET with empty stack", thread_id, pc))
                depth = 0
        elif code == OP_SETSLOT:
            if depth == 0:
                problems.append(
                    IRProblem("IR004", "SETSLOT outside any frame", thread_id, pc)
                )
        elif code == OP_ACQUIRE:
            if op[1] in held:
                problems.append(
                    IRProblem("IR005", f"ACQUIRE of lock {op[1]} already held", thread_id, pc)
                )
            held.add(op[1])
        elif code == OP_RELEASE:
            if op[1] not in held:
                problems.append(
                    IRProblem("IR005", f"RELEASE of lock {op[1]} not held", thread_id, pc)
                )
            held.discard(op[1])
        elif code == OP_BARRIER and held:
            problems.append(
                IRProblem(
                    "IR006",
                    f"BARRIER {op[1]} crossed while holding locks {sorted(held)}",
                    thread_id,
                    pc,
                )
            )
    if depth > 0:
        problems.append(
            IRProblem("IR003", f"program ends with {depth} unpopped frame(s)", thread_id)
        )
    if held:
        problems.append(
            IRProblem("IR005", f"program ends holding locks {sorted(held)}", thread_id)
        )
    return problems


def _object_ids_of(op: tuple):
    """Object ids an op references (accesses plus reference moves)."""
    code = op[0]
    if code in (OP_READ, OP_WRITE):
        yield op[1]
    elif code == OP_CALL:
        for _slot, obj_id in op[3]:
            yield obj_id
    elif code == OP_SETSLOT:
        if op[2] is not None:
            yield op[2]


def verify_workload(ir) -> list[IRProblem]:
    """Full whole-workload verification of a :class:`~repro.runtime.ir.
    WorkloadIR`: every per-program check plus object-id domains (IR007),
    cross-thread barrier pairing (IR008) and thread placement (IR009)."""
    problems: list[IRProblem] = []
    barrier_seqs: dict[int, tuple] = {}
    for tid in ir.thread_ids():
        program = ir.programs[tid]
        problems.extend(verify_ops(program.ops, tid))
        reported: set[int] = set()
        for pc, op in enumerate(program.ops):
            for obj_id in _object_ids_of(op):
                if isinstance(obj_id, int) and obj_id not in ir.objects and obj_id not in reported:
                    reported.add(obj_id)
                    problems.append(
                        IRProblem(
                            "IR007", f"object {obj_id} is not allocated", tid, pc
                        )
                    )
        barrier_seqs[tid] = tuple(
            program.ops[pc][1] for pc, code in program.sync_points() if code == OP_BARRIER
        )
        node = ir.node_of_thread.get(tid)
        if node is None or not 0 <= node < ir.n_nodes:
            problems.append(
                IRProblem(
                    "IR009",
                    f"thread placed on node {node!r} outside cluster of {ir.n_nodes}",
                    tid,
                )
            )
    tids = ir.thread_ids()
    if tids:
        reference = barrier_seqs[tids[0]]
        for tid in tids[1:]:
            seq = barrier_seqs[tid]
            if seq != reference:
                # Pinpoint the first divergence (where the run deadlocks).
                idx = next(
                    (
                        i
                        for i in range(max(len(seq), len(reference)))
                        if i >= len(seq)
                        or i >= len(reference)
                        or seq[i] != reference[i]
                    ),
                    0,
                )
                mine = seq[idx] if idx < len(seq) else "<none>"
                theirs = reference[idx] if idx < len(reference) else "<none>"
                problems.append(
                    IRProblem(
                        "IR008",
                        f"barrier sequence diverges from thread {tids[0]} at "
                        f"episode {idx}: {mine} vs {theirs}",
                        tid,
                    )
                )
    return problems
