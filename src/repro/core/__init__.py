"""The paper's contribution: adaptive sampling-based profiling.

* :mod:`repro.core.sampling` / :mod:`repro.core.array_sampling` —
  class-level adaptive object sampling with prime gaps and array
  amortization (Section II.B).
* :mod:`repro.core.access_profiler` / :mod:`repro.core.oal` /
  :mod:`repro.core.collector` / :mod:`repro.core.tcm` — fine-grained
  active correlation tracking: false-invalid resets, per-interval object
  access lists, and thread correlation map construction (Section II.A).
* :mod:`repro.core.accuracy` / :mod:`repro.core.adaptive` — the
  EUC/ABS accuracy metrics and the adaptive rate controller.
* :mod:`repro.core.footprint` / :mod:`repro.core.stack_sampler` /
  :mod:`repro.core.invariants` / :mod:`repro.core.resolution` /
  :mod:`repro.core.costmodel` — sticky-set profiling: footprinting,
  adaptive stack sampling, stack-invariant mining, landmark-guided
  resolution, and the migration cost model (Section III).
* :mod:`repro.core.profiler` — the :class:`ProfilerSuite` facade wiring
  everything into a DJVM.
"""

from repro.core.sampling import ClassSamplingState, SamplingPolicy
from repro.core.array_sampling import sampled_element_count, amortized_sample_bytes
from repro.core.oal import OALEntry, OALBatch
from repro.core.access_profiler import AccessProfiler
from repro.core.tcm import build_tcm, tcm_from_batches
from repro.core.accuracy import absolute_error, euclidean_error, accuracy
from repro.core.adaptive import (
    AdaptiveRateController,
    OfflineRateSearch,
    PerClassRateController,
    RateDecision,
)
from repro.core.collector import CorrelationCollector
from repro.core.distributed import DistributedCorrelationCollector
from repro.core.footprint import StickySetFootprinter
from repro.core.stack_sampler import StackSampler
from repro.core.invariants import mine_invariants
from repro.core.resolution import resolve_sticky_set, ResolutionStats
from repro.core.costmodel import MigrationCostModel, MigrationCostEstimate
from repro.core.prefetch import ConnectivityPrefetcher, PathProfile
from repro.core.profiler import ProfilerSuite

__all__ = [
    "ClassSamplingState",
    "SamplingPolicy",
    "sampled_element_count",
    "amortized_sample_bytes",
    "OALEntry",
    "OALBatch",
    "AccessProfiler",
    "build_tcm",
    "tcm_from_batches",
    "absolute_error",
    "euclidean_error",
    "accuracy",
    "AdaptiveRateController",
    "OfflineRateSearch",
    "PerClassRateController",
    "RateDecision",
    "CorrelationCollector",
    "DistributedCorrelationCollector",
    "StickySetFootprinter",
    "StackSampler",
    "mine_invariants",
    "resolve_sticky_set",
    "ResolutionStats",
    "MigrationCostModel",
    "MigrationCostEstimate",
    "ConnectivityPrefetcher",
    "PathProfile",
    "ProfilerSuite",
]
