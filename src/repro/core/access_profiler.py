"""Fine-grained active correlation tracking (paper Section II.A).

The profiler rides on the HLRC protocol's at-most-once property:

* On **interval open**, every sampled object the thread accessed in its
  previous interval is reset to *false-invalid* — the visible state bits
  are forced invalid while the real state moves to a side field — so the
  next access traps into the GOS service routine regardless of real
  coherence state.
* On an **access trap** to a sampled object (real fault or
  false-invalid), the access is appended to the thread's per-interval
  object access list (OAL), the false-invalid state is cancelled, and
  the real state is honoured.  Subsequent accesses in the same interval
  run the inlined fast path untouched.
* On **interval close**, the OAL is packed into a jumbo message for the
  master's correlation collector, piggybacked on the lock/barrier
  message when that synchronization already targets the master.

Cost accounting reproduces the paper's overhead decomposition: O1 (CPU
for generating OALs) lands in ``cpu.oal_logging_ns`` /
``cpu.oal_packing_ns``, O2 (network) in the OAL traffic counters, O3
(TCM construction) in the collector.
"""

from __future__ import annotations

from repro.core.oal import OALBatch, OALEntry

_tuple_new = tuple.__new__
from repro.core.sampling import SamplingPolicy
from repro.dsm.intervals import IntervalRecord
from repro.heap.objects import HeapObject
from repro.sim.cluster import Cluster
from repro.sim.network import MessageKind


class AccessProfiler:
    """Protocol hook implementing sampled, at-most-once access logging."""

    def __init__(
        self,
        policy: SamplingPolicy,
        cluster: Cluster,
        *,
        collector=None,
        send_oals: bool = True,
        piggyback: bool = True,
        enabled: bool = True,
    ) -> None:
        self.policy = policy
        self.cluster = cluster
        self.costs = cluster.costs
        # Hot-path aliases (the cost model is frozen; the policy's state
        # containers are mutated in place, never replaced).
        self._gap_table = policy.gap_table
        self._policy_states = policy._states
        self._backend = policy.backend
        self._log_ns_fault = self.costs.oal_log_ns
        self._log_ns_trap = self.costs.gos_trap_ns + self.costs.oal_log_ns
        #: transient decision table for stateless backends, filled by the
        #: vector engine's decide_batch lane (prime_batch) and keyed to
        #: the policy's change generation; never consulted by the
        #: default memoized backend, whose per-class epoch memo already
        #: serves the same role.
        self._primed: dict[int, tuple[bool, int, int]] = {}
        self._primed_gen = -1
        #: advertises the decide_batch lane to the vector engine.
        self.wants_batch_prime = not self._backend.memoized
        if self.wants_batch_prime:
            # Shadow the bound method with the stateless variant; the
            # protocol's single-hook fast dispatch resolves the hook via
            # getattr, so the instance attribute wins and the default
            # path stays branch-for-branch identical.
            self.fast_on_access = self._fast_on_access_stateless
        #: destination daemon; anything with a ``deliver(OALBatch)`` method.
        self.collector = collector
        #: when False, OALs are generated and costed but never sent (the
        #: paper's O1-isolation methodology for Table II).
        self.send_oals = send_oals
        self.piggyback = piggyback
        self.enabled = enabled
        #: thread_id -> {obj_id: OALEntry} for the open interval (entries
        #: are built at log time so interval close ships them verbatim).
        self._current: dict[int, dict[int, OALEntry]] = {}
        #: thread_id -> object ids logged in the *previous* interval
        #: (these are the ones reset to false-invalid at open).
        self._previous: dict[int, set[int]] = {}
        #: node_id -> class ids with a pending resampling pass.
        self._pending_resample: dict[int, set[int]] = {}
        #: counters for reporting.
        self.total_logged = 0
        self.total_batches = 0
        self.resample_passes = 0
        #: opt-in protocol sanitizer; observes OAL appends (at-most-once).
        self.sanitizer = None
        #: opt-in span tracer (repro.obs): pure observer emitting one
        #: ``oal_flush`` span per shipped batch.
        self.tracer = None
        #: opt-in object-centric profiler (repro.obs.objprof): pure
        #: observer fed each closed interval's OAL entries, whose
        #: ``scaled_bytes`` carry the backend's Horvitz–Thompson weights.
        self.objprof = None

    # ------------------------------------------------------------------
    # rate changes
    # ------------------------------------------------------------------

    def notify_rate_change(self, jclass) -> None:
        """Schedule the cluster-wide resampling pass a gap change requires:
        every node must re-tag its cached objects of the class.  The cost
        is charged to each node's next syncing thread (the paper measures
        this at under 0.1% of CPU time).  Stateless backends re-derive
        decisions from immutable object identity, so there are no
        per-object sample tags to re-tag — only the primed decision
        table is dropped and no pass is charged."""
        if not self._backend.needs_resample_pass:
            self._primed.clear()
            return
        for node in self.cluster.nodes:
            self._pending_resample.setdefault(node.node_id, set()).add(jclass.class_id)

    def _charge_pending_resample(self, thread) -> None:
        pending = self._pending_resample.get(thread.node_id)
        if not pending:
            return
        gos = getattr(self.collector, "gos", None)
        n_objects = 0
        # Sorted so the per-class registry walk is deterministic (SIM003).
        for class_id in sorted(pending):
            if gos is not None:
                jclass = gos.registry.by_id(class_id)
                n_objects += len(gos.objects_of_class(jclass))
            else:
                n_objects += 1
        pending.clear()
        ns = n_objects * self.costs.sample_check_ns
        thread.cpu.resampling_ns += ns
        thread.clock.advance(ns)
        self.resample_passes += 1

    # ------------------------------------------------------------------
    # ProtocolHooks interface
    # ------------------------------------------------------------------

    def on_interval_open(self, thread) -> None:
        """ProtocolHooks: a new HLRC interval just opened for ``thread``."""
        if not self.enabled:
            return
        tid = thread.thread_id
        self._current[tid] = {}
        self._charge_pending_resample(thread)
        # Reset last interval's logged objects to false-invalid.
        prev = self._previous.get(tid)
        if prev:
            ns = len(prev) * self.costs.false_invalid_reset_ns
            thread.cpu.oal_logging_ns += ns
            thread.clock.advance(ns)

    def on_access(
        self,
        thread,
        obj: HeapObject,
        *,
        is_write: bool,
        n_elems: int,
        elem_off: int,
        repeat: int,
        real_fault: bool,
    ) -> None:
        """ProtocolHooks: one access op executed (see class docstring)."""
        self.fast_on_access(thread, obj, real_fault)

    def fast_on_access(self, thread, obj: HeapObject, real_fault: bool) -> None:
        """Positional form of :meth:`on_access` (the sampled-logging
        decision depends only on the object and whether the access
        really faulted); the protocol's single-hook fast dispatch calls
        this directly."""
        if not self.enabled:
            return
        oal = self._current.get(thread.thread_id)
        if oal is None:
            return
        obj_id = obj.obj_id
        if obj_id in oal:
            return  # at-most-once per interval: fast path, zero extra cost
        jclass = obj.jclass
        class_id = jclass.class_id
        if self._gap_table.get(class_id, 1) == 1:
            # Fully-sampled class (the precomputed gap table answers this
            # without touching per-object state): every object is logged
            # and the Horvitz-Thompson scale factor is 1.
            scaled = obj.length * jclass.element_size if obj.is_array else jclass.instance_size
        else:
            # One memoized lookup answers sampled/logged/scaled together
            # (epoch-cached; see SamplingPolicy.decision).  Probe the
            # per-class memo inline; fall back to decision() on a miss
            # or a stale cache.
            st = self._policy_states[class_id]
            dec = st.decisions.get(obj_id) if st.cache_epoch == st.epoch else None
            if dec is None:
                dec = self.policy.decision(obj)
            sampled, _logged, scaled = dec
            if not sampled:
                return
        # Trap into the GOS service routine.  A real fault already paid
        # the trap on the coherence path; false-invalid pays it here.
        ns = self._log_ns_fault if real_fault else self._log_ns_trap
        thread.cpu.oal_logging_ns += ns
        thread.clock._now_ns += ns
        # tuple.__new__ skips the generated NamedTuple __new__ (a
        # Python-level function); this is the hottest allocation in a
        # fully-sampled run.
        oal[obj_id] = _tuple_new(OALEntry, (obj_id, scaled, class_id))
        self.total_logged += 1
        if self.sanitizer is not None:
            self.sanitizer.on_oal_log(
                thread, thread.current_interval.interval_id, obj_id
            )

    def _fast_on_access_stateless(self, thread, obj: HeapObject, real_fault: bool) -> None:
        """The stateless-backend twin of :meth:`fast_on_access`: probes
        the run-primed decision table (filled by the vector engine's
        decide_batch lane) instead of the per-class epoch memo, falling
        back to a fresh backend decision — a pure function of object
        identity — on a miss.  Installed as an instance attribute at
        construction when the policy's backend is not memoized."""
        if not self.enabled:
            return
        oal = self._current.get(thread.thread_id)
        if oal is None:
            return
        obj_id = obj.obj_id
        if obj_id in oal:
            return  # at-most-once per interval: fast path, zero extra cost
        jclass = obj.jclass
        class_id = jclass.class_id
        if self._gap_table.get(class_id, 1) == 1:
            # Fully-sampled class: identical across backends (every
            # scheme selects everything at gap 1 with scale factor 1).
            scaled = obj.length * jclass.element_size if obj.is_array else jclass.instance_size
        else:
            if self._primed_gen != self.policy.rate_changes:
                self._primed.clear()
                self._primed_gen = self.policy.rate_changes
            dec = self._primed.get(obj_id)
            if dec is None:
                dec = self._backend.decide(obj)
            sampled, _logged, scaled = dec
            if not sampled:
                return
        ns = self._log_ns_fault if real_fault else self._log_ns_trap
        thread.cpu.oal_logging_ns += ns
        thread.clock._now_ns += ns
        oal[obj_id] = _tuple_new(OALEntry, (obj_id, scaled, class_id))
        self.total_logged += 1
        if self.sanitizer is not None:
            self.sanitizer.on_oal_log(
                thread, thread.current_interval.interval_id, obj_id
            )

    def prime_batch(self, objs) -> None:
        """The vector engine's decide_batch lane: pre-compute sampling
        decisions for a run's distinct objects in one backend batch,
        cached until the next rate change.  Host-side only — simulated
        costs are charged where the decisions are consumed, so replay
        modes stay byte-identical."""
        if self._primed_gen != self.policy.rate_changes:
            self._primed.clear()
            self._primed_gen = self.policy.rate_changes
        primed = self._primed
        todo = [obj for obj in objs if obj.obj_id not in primed]
        if not todo:
            return
        for obj, dec in zip(todo, self._backend.decide_batch(todo)):
            primed[obj.obj_id] = dec

    def on_interval_close(
        self, thread, interval: IntervalRecord, sync_dst: int | None
    ) -> None:
        """ProtocolHooks: ``thread`` closed ``interval``."""
        if not self.enabled:
            return
        tid = thread.thread_id
        oal = self._current.pop(tid, None)
        if oal is None:
            return
        self._previous[tid] = set(oal)
        if not oal:
            return
        batch = OALBatch(
            thread_id=tid,
            interval_id=interval.interval_id,
            start_pc=interval.start_pc,
            end_pc=interval.end_pc,
        )
        batch.entries.extend(oal.values())
        flush_begin_ns = thread.clock.now_ns
        # Pack the jumbo message.
        pack_ns = len(batch) * self.costs.oal_pack_ns_per_entry
        thread.cpu.oal_packing_ns += pack_ns
        thread.clock.advance(pack_ns)
        self.total_batches += 1

        if self.send_oals:
            master = self.cluster.master_id
            piggy = self.piggyback and sync_dst == master
            self.cluster.network.send(
                MessageKind.OAL,
                thread.node_id,
                master,
                batch.wire_bytes,
                thread.clock.now_ns,
                piggybacked=piggy,
            )
            # OAL shipping is asynchronous (piggybacked on the outgoing
            # sync message when possible); the sender pays only the
            # serialization time, never the wire latency.
            serialize_ns = self.cluster.network.transfer_time_ns(
                batch.wire_bytes, piggybacked=True
            )
            thread.cpu.network_wait_ns += serialize_ns
            thread.clock.advance(serialize_ns)
            # The master's NIC must also serialize the burst before the
            # next barrier release can go out (remote senders only).
            if thread.node_id != master:
                self.cluster.network.add_ingress_backlog(master, serialize_ns)
        if self.tracer is not None:
            self.tracer.oal_flush(
                thread, len(batch), batch.wire_bytes, flush_begin_ns, thread.clock.now_ns
            )
        if self.objprof is not None:
            self.objprof.on_oal_batch(thread.node_id, batch.entries)
        if self.collector is not None:
            self.collector.deliver(batch, now_ns=thread.clock.now_ns)
