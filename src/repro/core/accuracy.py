"""Sampling accuracy metrics (paper Section II.B.2, formulae (1), (2)).

Given two correlation maps A (the estimate) and B (the reference), the
paper measures their distance by the Euclidean norm

    E_EUC = sqrt( sum (a_ij - b_ij)^2 ) / sqrt( sum b_ij^2 )

and by absolute value

    E_ABS = sum |a_ij - b_ij| / sum b_ij

**Absolute accuracy** compares an estimate against the full-sampling
map; **relative accuracy** compares two sampled maps where A samples
less frequently than B.  The paper's finding — reproduced by the Fig. 9
benchmark — is that E_ABS is the more stable signal and that relative
accuracy tracks absolute accuracy closely enough to drive the adaptive
controller, which only ever has relative information.
"""

from __future__ import annotations

import math

import numpy as np


def _as_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def euclidean_error(a: np.ndarray, b: np.ndarray) -> float:
    """Formula (1): Frobenius distance normalized by ||B||."""
    a, b = _as_pair(a, b)
    denom = math.sqrt(float((b * b).sum()))
    if denom == 0.0:
        return 0.0 if float((a * a).sum()) == 0.0 else math.inf
    return math.sqrt(float(((a - b) ** 2).sum())) / denom


def absolute_error(a: np.ndarray, b: np.ndarray) -> float:
    """Formula (2): L1 distance normalized by sum(B)."""
    a, b = _as_pair(a, b)
    denom = float(np.abs(b).sum())
    if denom == 0.0:
        return 0.0 if float(np.abs(a).sum()) == 0.0 else math.inf
    return float(np.abs(a - b).sum()) / denom


def error_summary(a: np.ndarray, b: np.ndarray) -> dict[str, float]:
    """Both paper metrics of estimate ``a`` against reference ``b`` in
    one record — the accuracy row the sampling-backend frontier bench
    publishes per backend x workload."""
    e_abs = absolute_error(a, b)
    e_euc = euclidean_error(a, b)
    return {
        "e_abs": e_abs,
        "e_euc": e_euc,
        "accuracy_abs": 0.0 if math.isinf(e_abs) else max(0.0, 1.0 - e_abs),
        "accuracy_euc": 0.0 if math.isinf(e_euc) else max(0.0, 1.0 - e_euc),
    }


def accuracy(a: np.ndarray, b: np.ndarray, metric: str = "abs") -> float:
    """Accuracy = 1 - error, floored at 0 (the paper plots percentages)."""
    if metric == "abs":
        err = absolute_error(a, b)
    elif metric == "euc":
        err = euclidean_error(a, b)
    else:
        raise ValueError(f"unknown metric {metric!r}; use 'abs' or 'euc'")
    if math.isinf(err):
        return 0.0
    return max(0.0, 1.0 - err)
