"""Adaptive sampling-rate control (paper Section II.B.1-2).

The controller's problem: find the lowest sampling rate whose TCM is
"accurate enough", knowing only *relative* accuracy (distances between
maps sampled at different rates) because the full-sampling reference is
exactly what sampling avoids computing.  The paper's procedure:

    begin with a rough sampling rate, increase it stepwise (halving the
    gap) and compare the distance between successive correlation
    matrices; when the distance converges under a threshold, stop.

Two drivers are provided:

* :class:`OfflineRateSearch` — functional form used by experiments: give
  it a ``tcm_at(rate)`` callable and it walks the rate ladder.
* :class:`AdaptiveRateController` — online form: observe successive TCM
  windows as the system runs, request rate changes (which trigger
  cluster resampling passes via the access profiler), and settle once
  converged.  It can also *back off* (lengthen the gap) when a workload's
  sharing pattern drifts and the map at the settled rate stops matching
  recent windows — the "applications whose sharing patterns could change
  dynamically" case from the abstract.

Controllers speak page-relative *rates* only; what applying a rate
physically means belongs to the policy's sampling backend.  Under the
default prime-gap backend a rate change mutates the class gap and
charges a cluster-wide resampling pass; under the stateless backends
the same ``set_rate`` realizes a new hash threshold or Poisson λ (both
derived from the realized gap) and the access profiler charges no
resampling pass — there are no per-object sample tags to re-tag (see
:func:`describe_rate_update`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.accuracy import absolute_error, euclidean_error

#: the standard rate ladder, coarse to fine (paper Fig. 9 x-axis reversed).
DEFAULT_RATE_LADDER: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def describe_rate_update(policy, jclass) -> str:
    """One-line account of what the last applied rate realized for a
    class under the policy's active backend — gap mutation (prime_gap),
    selection threshold (hash/hybrid), or Poisson λ.  Diagnostic only;
    used by the frontier bench and CLI summaries."""
    st = policy.state(jclass)
    backend = policy.backend
    gap = st.real_gap
    if backend.memoized:
        return f"gap={gap} (epoch {st.epoch}, resample pass due on change)"
    unit = policy._sampling_unit_size(jclass)
    if backend.name == "poisson" and unit > 0:
        return f"lambda=1/{gap * unit}B (epoch {st.epoch}, no resample pass)"
    return f"threshold=1/{gap} (epoch {st.epoch}, no resample pass)"


def _distance(a: np.ndarray, b: np.ndarray, metric: str) -> float:
    if metric == "abs":
        return absolute_error(a, b)
    if metric == "euc":
        return euclidean_error(a, b)
    raise ValueError(f"unknown metric {metric!r}")


@dataclass
class RateDecision:
    """One step of the adaptive search."""

    rate: float
    relative_error: float | None
    converged: bool


@dataclass
class OfflineRateSearch:
    """Walk the rate ladder until successive TCMs converge.

    ``tcm_at(rate)`` must return the correlation map measured at a given
    rate (the experiment harness re-runs or re-filters profiling output
    per rate).  The search never consults full sampling — mirroring the
    deployment constraint — unless the ladder's last rung happens to be
    full.
    """

    threshold: float = 0.05
    metric: str = "abs"
    ladder: Sequence[float] = DEFAULT_RATE_LADDER
    history: list[RateDecision] = field(default_factory=list)

    def run(self, tcm_at: Callable[[float], np.ndarray]) -> float:
        """Returns the chosen rate (the first rung whose successor map is
        within ``threshold``); falls back to the finest rung."""
        self.history.clear()
        prev_tcm: np.ndarray | None = None
        prev_rate: float | None = None
        for rate in self.ladder:
            tcm = tcm_at(rate)
            if prev_tcm is None:
                self.history.append(RateDecision(rate, None, False))
            else:
                err = _distance(prev_tcm, tcm, self.metric)
                converged = err <= self.threshold
                self.history.append(RateDecision(rate, err, converged))
                if converged:
                    # The coarser of the pair already captures the map.
                    assert prev_rate is not None
                    return prev_rate
            prev_tcm, prev_rate = tcm, rate
        return self.ladder[-1]


class PerClassRateController:
    """Per-class rate adaptation — the paper's actual granularity
    ("upon receiving a change notice for a specific class, every thread
    will iterate through all objects of that class...").

    Maintains one :class:`AdaptiveRateController` per class; each window
    it observes the per-class TCMs (built from only that class's OAL
    entries) and returns the classes whose rates should change.  Classes
    with no entries in a window are left untouched (no evidence).
    """

    def __init__(
        self,
        *,
        threshold: float = 0.05,
        metric: str = "abs",
        ladder: Sequence[float] = DEFAULT_RATE_LADDER,
        drift_threshold: float | None = None,
    ) -> None:
        self._make = lambda: AdaptiveRateController(
            threshold=threshold,
            metric=metric,
            ladder=ladder,
            drift_threshold=drift_threshold,
        )
        self._controllers: dict[int, AdaptiveRateController] = {}

    def controller_for(self, class_id: int) -> AdaptiveRateController:
        """Get (or lazily create) the class's own controller."""
        ctrl = self._controllers.get(class_id)
        if ctrl is None:
            ctrl = self._make()
            self._controllers[class_id] = ctrl
        return ctrl

    def rate_of(self, class_id: int) -> float:
        """Current rate of one class."""
        return self.controller_for(class_id).rate

    def observe(self, class_tcms: dict[int, np.ndarray]) -> dict[int, float]:
        """Digest one window's per-class maps; returns {class_id: new
        rate} for classes whose rate changed this window."""
        changes: dict[int, float] = {}
        for class_id, tcm in sorted(class_tcms.items()):
            ctrl = self.controller_for(class_id)
            before = ctrl.rate
            after = ctrl.observe(tcm)
            if after != before:
                changes[class_id] = after
        return changes

    @property
    def settled(self) -> bool:
        """True once every observed class has settled."""
        return bool(self._controllers) and all(  # simlint: disable=SIM003 (pure all() predicate; order cannot leak)
            c.settled for c in self._controllers.values()
        )

    def rates(self) -> dict[int, float]:
        """Current rate per observed class."""
        return {cid: c.rate for cid, c in sorted(self._controllers.items())}


class AdaptiveRateController:
    """Online controller: feed it TCM windows, it proposes rate moves.

    Protocol: call :meth:`observe` with each freshly computed window TCM.
    The return value is the rate the system should use for the *next*
    window (the caller applies it via ``SamplingPolicy.set_rate_all`` and
    notifies the access profiler so resampling costs are charged).
    """

    def __init__(
        self,
        *,
        threshold: float = 0.05,
        metric: str = "abs",
        ladder: Sequence[float] = DEFAULT_RATE_LADDER,
        drift_threshold: float | None = None,
    ) -> None:
        if not ladder:
            raise ValueError("rate ladder cannot be empty")
        self.threshold = threshold
        self.metric = metric
        self.ladder = list(ladder)
        #: when set, a settled controller re-opens the search if a new
        #: window drifts this far from the settled map.
        self.drift_threshold = drift_threshold
        self._idx = 0
        self._settled = False
        self._prev_tcm: np.ndarray | None = None
        self._settled_tcm: np.ndarray | None = None
        self.decisions: list[RateDecision] = []
        #: rate last applied by the driving ProfilerSuite (None until the
        #: first application); the suite compares against this instead of
        #: stashing state on a closure.
        self.applied_rate: float | None = None

    @property
    def rate(self) -> float:
        """Rate currently in force."""
        return self.ladder[self._idx]

    @property
    def settled(self) -> bool:
        """True once adaptation has converged."""
        return self._settled

    def observe(self, window_tcm: np.ndarray) -> float:
        """Digest one window's TCM measured at :attr:`rate`; returns the
        rate to use next."""
        tcm = np.asarray(window_tcm, dtype=np.float64)
        if self._settled:
            if self.drift_threshold is not None and self._settled_tcm is not None:
                drift = _distance(tcm, self._settled_tcm, self.metric)
                if drift > self.drift_threshold:
                    # Sharing pattern changed: restart the search from the
                    # current rung.
                    self._settled = False
                    self._prev_tcm = tcm
                    self.decisions.append(RateDecision(self.rate, drift, False))
                    if self._idx + 1 < len(self.ladder):
                        self._idx += 1
                    return self.rate
                self._settled_tcm = tcm  # track the evolving map
            return self.rate

        if self._prev_tcm is None:
            self._prev_tcm = tcm
            self.decisions.append(RateDecision(self.rate, None, False))
            if self._idx + 1 < len(self.ladder):
                self._idx += 1
            return self.rate

        err = _distance(self._prev_tcm, tcm, self.metric)
        converged = err <= self.threshold
        self.decisions.append(RateDecision(self.rate, err, converged))
        if converged:
            # Settle at the *previous* (coarser) rung: it already agreed
            # with this finer measurement.
            self._idx = max(0, self._idx - 1)
            self._settled = True
            self._settled_tcm = tcm
            return self.rate
        self._prev_tcm = tcm
        if self._idx + 1 < len(self.ladder):
            self._idx += 1
        else:
            # Ladder exhausted: run at the finest rate permanently.
            self._settled = True
            self._settled_tcm = tcm
        return self.rate
