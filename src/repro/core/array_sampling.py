"""Array sampling with amortization (paper Section II.B.3, Fig. 3b).

Arrays are treated as groups of elements, each with its own (implicit)
sequence number derived from the stored first-element number.  An array
is *sampled* iff at least one of its elements is logically sampled, and
a sampled array's logged ("amortized") size is

    sampled elements x element type size

rather than the full array size.  This keeps sampling statistically
uniform over heap bytes (a long array cannot dodge sampling entirely)
while preventing the correlation map from being skewed towards large
arrays (the T2/T3 overestimation example in the paper).
"""

from __future__ import annotations

from repro.heap.objects import HeapObject


def sampled_element_count(seq_start: int, length: int, gap: int) -> int:
    """Number of logically sampled elements of an array whose elements
    carry consecutive sequence numbers ``seq_start .. seq_start+length-1``
    under sampling gap ``gap`` (an element is sampled iff its sequence
    number is divisible by the gap).

    Exact count — the paper's "array size divided by the sampling gap"
    is the expectation of this quantity over random phase.
    """
    if gap < 1:
        raise ValueError(f"gap must be >= 1, got {gap}")
    if length < 0:
        raise ValueError(f"length must be >= 0, got {length}")
    if length == 0:
        return 0
    if gap == 1:
        return length
    last = seq_start + length - 1
    return last // gap - (seq_start - 1) // gap


def is_array_sampled(seq_start: int, length: int, gap: int) -> bool:
    """True iff at least one element of the array is logically sampled."""
    return sampled_element_count(seq_start, length, gap) > 0


def amortized_sample_bytes(obj: HeapObject, gap: int) -> int:
    """Amortized logged size of a sampled array: sampled elements times
    element size.

    Per the paper, "per-element sampling is needless and we can easily
    get the number of sampled elements from dividing the array size by
    the current sampling gap" — so the logged count is the *deterministic*
    ``round(length / gap)`` (floored at one element for a sampled array)
    rather than the exact divisibility count.  Determinism matters: all
    same-length arrays of a class log identical amortized sizes, so the
    estimator carries no per-instance quantization noise (this is what
    makes SOR's equal-length rows profile near-perfectly at every rate).
    At gap 1 the amortized size equals the full element payload.
    """
    if not obj.is_array:
        raise TypeError(f"object {obj.obj_id} is not an array")
    if gap < 1:
        raise ValueError(f"gap must be >= 1, got {gap}")
    if obj.length == 0:
        return 0
    if gap == 1:
        return obj.length * obj.jclass.element_size
    count = max(1, round(obj.length / gap))
    return count * obj.jclass.element_size
