"""The master-side correlation collector daemon.

Receives OAL batches from every worker, and — once enough intervals are
gathered — reorganizes them into per-object thread lists and builds the
thread correlation map (paper Section II.A, the "correlation computing
daemon" of Fig. 2).  The CPU cost of that computation (overhead class
O3, the dominant one in Table III) is modelled from the daemon's actual
work: O(MN) reorganization over OAL entries plus O(M N^2) pair accrual,
and charged to the master node's CPU account.
"""

from __future__ import annotations

import numpy as np

from repro.core.oal import OALBatch
from repro.core.tcm import window_accrual
from repro.heap.heap import GlobalObjectSpace
from repro.sim.cluster import Cluster


class CorrelationCollector:
    """Accumulates OAL batches and computes TCMs on demand or per window."""

    def __init__(
        self,
        n_threads: int,
        cluster: Cluster,
        gos: GlobalObjectSpace | None = None,
        *,
        window_batches: int | None = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError(f"need at least one thread, got {n_threads}")
        self.n_threads = n_threads
        self.cluster = cluster
        self.costs = cluster.costs
        #: exposed so the access profiler can price resampling passes.
        self.gos = gos
        #: when set, a TCM is built automatically every ``window_batches``
        #: delivered batches (windowed accrual); otherwise on demand.
        self.window_batches = window_batches
        self._pending: list[OALBatch] = []
        self.batches_received = 0
        self.entries_received = 0
        #: cumulative TCM accrued over completed windows.
        self._accrued = np.zeros((n_threads, n_threads), dtype=np.float64)
        #: per-window TCMs (kept for adaptive-controller consumption).
        self.window_tcms: list[np.ndarray] = []
        #: when True, each processed window also yields per-class maps
        #: (consumed by the per-class adaptive controller).
        self.track_per_class = False
        #: per-window {class_id: tcm} dicts (only when track_per_class).
        self.window_class_tcms: list[dict[int, np.ndarray]] = []
        #: modelled daemon CPU time (overhead O3), nanoseconds.
        self.tcm_compute_ns = 0
        #: opt-in span tracer (repro.obs): pure observer emitting one
        #: ``tcm_window`` span per processed window on the daemon track.
        self.tracer = None
        #: simulated time of the latest delivered batch — anchors window
        #: spans; bookkeeping only, never fed back into the simulation.
        self._last_deliver_ns = 0

    # ------------------------------------------------------------------

    def deliver(self, batch: OALBatch, *, now_ns: int | None = None) -> None:
        """Accept one OAL batch from a worker (``now_ns`` = simulated
        delivery time, used only to anchor trace spans)."""
        if now_ns is not None and now_ns > self._last_deliver_ns:
            self._last_deliver_ns = now_ns
        self._pending.append(batch)
        self.batches_received += 1
        self.entries_received += len(batch)
        if self.window_batches is not None and len(self._pending) >= self.window_batches:
            self.process_window()

    def process_window(self) -> np.ndarray:
        """Fold all pending batches into the accrued TCM; returns the
        window's own TCM.  Charges the modelled daemon cost."""
        batches = self._pending
        self._pending = []
        # One traversal computes the window TCM, the naive-daemon pair
        # count, and (when tracked) per-class maps together.
        acc = window_accrual(batches, self.n_threads, per_class=self.track_per_class)
        cost = (
            acc.n_entries * self.costs.tcm_reorg_ns_per_entry
            + acc.pair_count * self.costs.tcm_accrue_ns_per_pair
        )
        self.tcm_compute_ns += cost
        self.cluster.master.cpu.extra["tcm_compute_ns"] = (
            self.cluster.master.cpu.extra.get("tcm_compute_ns", 0) + cost
        )
        window = acc.tcm
        if self.tracer is not None:
            self.tracer.tcm_window(
                self.cluster.master_id,
                self._last_deliver_ns,
                cost,
                acc.n_entries,
                len(self.window_tcms),
            )
        # Incremental accrual: the running TCM is updated in place.
        self._accrued += window
        self.window_tcms.append(window)
        if self.track_per_class:
            self.window_class_tcms.append(acc.class_tcms)
        return window

    def tcm(self) -> np.ndarray:
        """The full accrued TCM (processing any pending batches first)."""
        if self._pending:
            self.process_window()
        return self._accrued.copy()

    @property
    def tcm_compute_ms(self) -> float:
        """Modelled daemon CPU time in milliseconds (Table III column)."""
        return self.tcm_compute_ns / 1e6

    def reset(self) -> None:
        """Drop all state (e.g. between measurement phases)."""
        self._pending = []
        self._accrued = np.zeros((self.n_threads, self.n_threads), dtype=np.float64)
        self.window_tcms = []
        self.batches_received = 0
        self.entries_received = 0
        self.tcm_compute_ns = 0
