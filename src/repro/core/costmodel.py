"""Thread migration cost model (paper Section III).

The *direct* cost of a migration is shipping the thread context (stack
frames).  The *indirect* cost — usually dominant — is the remote object
faults the thread suffers after landing, which the sticky-set footprint
predicts: every sticky object is one fault round trip unless prefetched
along with the migration, in which case it rides a bulk transfer.

The model prices all three quantities so a load balancer can compare
    gain  (communication saved by co-locating correlated threads, from
           the TCM) against
    cost  (direct + indirect or direct + prefetch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.migration import MIGRATION_OVERHEAD_BYTES, SLOT_WIRE_BYTES
from repro.sim.costs import CostModel
from repro.sim.network import Network

#: assumed average object count per class footprint byte when the object
#: population is unknown (used only by the coarse fault-count fallback).
FALLBACK_OBJ_BYTES = 256


def object_fault_ns(costs: CostModel, network: Network, size_bytes: int) -> int:
    """Simulated cost of one remote object fault: GOS trap plus the
    fetch round trip (16-byte request, object + 16-byte reply header).

    Shared by the migration cost model's indirect-fault pricing and the
    object-centric inefficiency report's pattern scoring, so both layers
    agree on what one avoidable fault is worth.
    """
    return costs.gos_trap_ns + network.round_trip_ns(16, int(size_bytes) + 16)


@dataclass
class MigrationCostEstimate:
    """Priced migration alternatives, nanoseconds."""

    direct_ns: int
    #: post-migration fault cost if nothing is prefetched.
    indirect_fault_ns: int
    #: cost of bundling the sticky set with the migration instead.
    prefetch_ns: int
    sticky_bytes: int
    sticky_objects: int

    @property
    def total_without_prefetch_ns(self) -> int:
        """Direct cost plus every post-migration fault."""
        return self.direct_ns + self.indirect_fault_ns

    @property
    def total_with_prefetch_ns(self) -> int:
        """Direct cost plus the bulk prefetch transfer."""
        return self.direct_ns + self.prefetch_ns

    @property
    def prefetch_saving_ns(self) -> int:
        """How much prefetching the sticky set saves (can be negative for
        tiny sticky sets where the bundle overhead loses)."""
        return self.indirect_fault_ns - self.prefetch_ns


class MigrationCostModel:
    """Prices migrations from profiling output."""

    def __init__(self, network: Network, costs: CostModel) -> None:
        self.network = network
        self.costs = costs

    def estimate(
        self,
        *,
        stack_slots: int,
        sticky_footprint: dict[str, float],
        object_sizes: dict[str, float] | None = None,
    ) -> MigrationCostEstimate:
        """Price a migration.

        ``sticky_footprint`` maps class name -> predicted sticky bytes.
        ``object_sizes`` maps class name -> average object size, used to
        convert bytes into fault *counts* (each fault pays a full round
        trip); when absent a coarse default applies.
        """
        if stack_slots < 0:
            raise ValueError(f"stack_slots must be >= 0, got {stack_slots}")
        costs = self.costs
        direct = (
            costs.migration_fixed_ns
            + stack_slots * costs.migration_ns_per_slot
            + self.network.transfer_time_ns(
                MIGRATION_OVERHEAD_BYTES + stack_slots * SLOT_WIRE_BYTES
            )
        )
        sticky_bytes = int(sum(max(0.0, b) for b in sticky_footprint.values()))  # simlint: disable=SIM003 (float sum; reordering perturbs rounding, insertion order is deterministic)
        n_objects = 0
        fault_ns = 0
        for cname, b in sorted(sticky_footprint.items()):
            if b <= 0:
                continue
            size = None if object_sizes is None else object_sizes.get(cname)
            if size is None or size <= 0:
                size = FALLBACK_OBJ_BYTES
            count = max(1, int(round(b / size)))
            n_objects += count
            fault_ns += count * object_fault_ns(costs, self.network, size)
        prefetch = self.network.transfer_time_ns(sticky_bytes + 16 * n_objects) if sticky_bytes else 0
        return MigrationCostEstimate(
            direct_ns=direct,
            indirect_fault_ns=fault_ns,
            prefetch_ns=prefetch,
            sticky_bytes=sticky_bytes,
            sticky_objects=n_objects,
        )

    # ------------------------------------------------------------------
    # placement gain side
    # ------------------------------------------------------------------

    def migration_gain_ns(
        self,
        tcm: np.ndarray,
        thread_id: int,
        src_node: int,
        dst_node: int,
        placement: dict[int, int],
        *,
        horizon_intervals: int = 1,
    ) -> float:
        """Communication-time change (positive = saving) of moving
        ``thread_id`` from ``src_node`` to ``dst_node`` given the current
        thread placement and the TCM's shared-byte estimates.

        Bytes shared with threads on the destination stop crossing the
        wire; bytes shared with threads left behind start crossing it.
        """
        tcm = np.asarray(tcm, dtype=np.float64)
        n = tcm.shape[0]
        if placement.get(thread_id) != src_node:
            raise ValueError(
                f"placement says thread {thread_id} is on "
                f"{placement.get(thread_id)}, not {src_node}"
            )
        gained = 0.0
        lost = 0.0
        for other in range(n):
            if other == thread_id:
                continue
            shared = float(tcm[thread_id, other])
            if shared <= 0:
                continue
            where = placement.get(other)
            if where == dst_node:
                gained += shared
            elif where == src_node:
                lost += shared
        net_bytes = (gained - lost) * horizon_intervals
        return net_bytes / self.network.bandwidth_bytes_per_s * 1e9
