"""Distributed correlation-map computation — the paper's Section VI wish
("it is desirable to have distributed algorithms for deducing
correlation maps in a more scalable way"), realized.

The centralized daemon's cost is O(MN) reorganization plus O(MN^2)
accrual on one master (Table III's dominant overhead).  The distributed
scheme partitions the work **by object**: objects are hashed to owner
nodes; the master scatters each window's OAL entries to the owners, each
owner reorganizes and accrues the pairs of *its* objects into a partial
N x N map, and the master reduces the ``n_nodes`` partials.  Per-object
partitioning is exact — an object's pairwise contributions depend only
on its own accessor set — so the distributed map equals the centralized
one bit for bit, while the wall-clock compute drops to the slowest
owner's share plus a small reduce.
"""

from __future__ import annotations

import numpy as np

from repro.core.collector import CorrelationCollector
from repro.core.oal import ENTRY_WIRE_BYTES, OALBatch
from repro.core.tcm import accrual_pair_count, tcm_from_batches
from repro.heap.heap import GlobalObjectSpace
from repro.sim.cluster import Cluster
from repro.sim.network import MessageKind

#: wire bytes per partial-TCM cell in the reduce step.
CELL_WIRE_BYTES = 8
#: per-cell merge cost at the master, nanoseconds.
MERGE_NS_PER_CELL = 4


class DistributedCorrelationCollector(CorrelationCollector):
    """Drop-in collector whose window processing is object-partitioned
    across the cluster.

    Produces byte-identical TCMs to :class:`CorrelationCollector`; only
    the *cost model* changes: each node is charged for its own objects'
    reorganization and accrual, scatter/reduce traffic is accounted, and
    :attr:`tcm_compute_wall_ns` records the critical-path time (max over
    owners + reduce) instead of the centralized sum.
    """

    def __init__(
        self,
        n_threads: int,
        cluster: Cluster,
        gos: GlobalObjectSpace | None = None,
        *,
        window_batches: int | None = None,
    ) -> None:
        super().__init__(n_threads, cluster, gos, window_batches=window_batches)
        #: wall-clock (critical path) compute time of the distributed daemon.
        self.tcm_compute_wall_ns = 0
        #: per-node compute shares of the last processed window.
        self.last_window_node_ns: dict[int, int] = {}

    def owner_of(self, obj_id: int) -> int:
        """Owner node for an object's correlation work (hash partition)."""
        return obj_id % len(self.cluster)

    def process_window(self) -> np.ndarray:
        """Process pending batches with the distributed cost model."""
        batches = self._pending
        self._pending = []
        n_nodes = len(self.cluster)
        costs = self.costs
        master = self.cluster.master_id

        # Partition entries (and hence work) by owner.
        per_owner_batches: dict[int, list[OALBatch]] = {k: [] for k in range(n_nodes)}
        scatter_bytes = {k: 0 for k in range(n_nodes)}
        for batch in batches:
            split: dict[int, OALBatch] = {}
            for entry in batch.entries:
                owner = self.owner_of(entry.obj_id)
                frag = split.get(owner)
                if frag is None:
                    frag = OALBatch(batch.thread_id, batch.interval_id)
                    split[owner] = frag
                frag.entries.append(entry)
            for owner, frag in sorted(split.items()):
                per_owner_batches[owner].append(frag)
                scatter_bytes[owner] += len(frag) * ENTRY_WIRE_BYTES

        # Scatter (master -> owners), owner-local compute, reduce back.
        node_ns: dict[int, int] = {}
        for owner in range(n_nodes):
            owned = per_owner_batches[owner]
            n_entries = sum(len(b) for b in owned)
            pairs = accrual_pair_count(owned)
            compute = (
                n_entries * costs.tcm_reorg_ns_per_entry
                + pairs * costs.tcm_accrue_ns_per_pair
            )
            node_ns[owner] = compute
            self.cluster[owner].cpu.extra["tcm_compute_ns"] = (
                self.cluster[owner].cpu.extra.get("tcm_compute_ns", 0) + compute
            )
            if scatter_bytes[owner]:
                self.network_scatter(master, owner, scatter_bytes[owner])
            if n_entries:
                # Partial map back to the master (dense N x N).
                self.network_scatter(owner, master, self.n_threads**2 * CELL_WIRE_BYTES)

        merge_ns = n_nodes * self.n_threads**2 * MERGE_NS_PER_CELL
        self.cluster.master.cpu.extra["tcm_merge_ns"] = (
            self.cluster.master.cpu.extra.get("tcm_merge_ns", 0) + merge_ns
        )
        wall = (max(node_ns.values()) if node_ns else 0) + merge_ns
        self.tcm_compute_wall_ns += wall
        self.tcm_compute_ns += sum(node_ns.values()) + merge_ns
        self.last_window_node_ns = node_ns

        window = tcm_from_batches(batches, self.n_threads)
        self._accrued += window
        self.window_tcms.append(window)
        return window

    def network_scatter(self, src: int, dst: int, size: int) -> None:
        """Account one scatter/reduce message (no thread blocks on it)."""
        self.cluster.network.send(MessageKind.OAL, src, dst, size, 0)

    @property
    def tcm_compute_wall_ms(self) -> float:
        """Critical-path daemon time (what replaces Table III's column)."""
        return self.tcm_compute_wall_ns / 1e6

    def speedup_vs_centralized(self) -> float:
        """Aggregate-compute / critical-path ratio achieved so far."""
        if self.tcm_compute_wall_ns == 0:
            return 1.0
        return self.tcm_compute_ns / self.tcm_compute_wall_ns
