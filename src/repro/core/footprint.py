"""Sticky-set footprinting (paper Section III.A step 1).

The *sticky set* of a migrant thread is the set of objects that would
predictably fault again after a migration: objects accessed both before
and after the migration point within one HLRC interval.  Correlation
tracking cannot see this — it logs each object at most once per interval
— so footprinting tracks sampled objects *repeatedly* within the
interval to capture access frequency, yielding a per-class byte estimate
(the **sticky-set footprint**) of what migrating the thread would drag
across the network.

Because repeated tracking is strictly more expensive than at-most-once
logging, two throttles from the paper apply:

* a **lower bound on the sampling gap** (set via
  ``SamplingPolicy.set_min_gap``; under a stateless sampling backend
  the same clamp caps each class's inclusion probability at
  ``1/min_gap``, since backends derive λ / thresholds from the realized
  gap), and
* a **timer** alternating tracking-on and tracking-off phases
  (``period_ms`` with ``duty`` fraction on); accesses during off phases
  are invisible, trading accuracy for cost — exactly the Nonstop vs
  Timer-based columns of the paper's overhead table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sampling import SamplingPolicy
from repro.dsm.intervals import IntervalRecord
from repro.heap.objects import HeapObject
from repro.sim.costs import CostModel

NS_PER_MS = 1_000_000


@dataclass(slots=True)
class _ObjStats:
    """Per-(thread, interval, object) tracking statistics."""

    count: int = 0
    first_ns: int = 0
    last_ns: int = 0
    phases: set[int] = field(default_factory=set)


class StickySetFootprinter:
    """Protocol hook performing repeated sampled access tracking."""

    __slots__ = (
        "policy",
        "costs",
        "timer_period_ns",
        "duty",
        "min_accesses",
        "enabled",
        "_stats",
        "_interval_start",
        "interval_footprints",
        "interval_tracked",
        "tracked_accesses",
        "_gos",
    )

    def __init__(
        self,
        policy: SamplingPolicy,
        costs: CostModel,
        *,
        timer_period_ms: float | None = None,
        duty: float = 0.5,
        min_accesses: int = 2,
        enabled: bool = True,
    ) -> None:
        if timer_period_ms is not None and timer_period_ms <= 0:
            raise ValueError(f"timer period must be > 0 ms, got {timer_period_ms}")
        if not 0 < duty <= 1:
            raise ValueError(f"duty cycle must be in (0, 1], got {duty}")
        if min_accesses < 1:
            raise ValueError(f"min_accesses must be >= 1, got {min_accesses}")
        self.policy = policy
        self.costs = costs
        #: None = nonstop tracking; otherwise on/off phases of this period.
        self.timer_period_ns = None if timer_period_ms is None else int(timer_period_ms * NS_PER_MS)
        self.duty = duty
        #: accesses needed within an interval for an object to count as sticky.
        self.min_accesses = min_accesses
        self.enabled = enabled
        #: thread_id -> {obj_id: _ObjStats} for the open interval.
        self._stats: dict[int, dict[int, _ObjStats]] = {}
        #: thread_id -> interval start time (phase reference).
        self._interval_start: dict[int, int] = {}
        #: completed-interval footprints kept for averaging:
        #: thread_id -> list of {class_name: bytes}.
        self.interval_footprints: dict[int, list[dict[str, int]]] = {}
        #: completed-interval tracked sampled object ids (landmark
        #: candidates for resolution): thread_id -> list of sets.
        self.interval_tracked: dict[int, list[set[int]]] = {}
        self.tracked_accesses = 0
        #: attached by the ProfilerSuite (needed to resolve object classes).
        self._gos = None

    # ------------------------------------------------------------------

    def _tracking_on(self, thread_id: int, now_ns: int) -> bool:
        if self.timer_period_ns is None:
            return True
        start = self._interval_start.get(thread_id, 0)
        phase_pos = ((now_ns - start) % self.timer_period_ns) / self.timer_period_ns
        return phase_pos < self.duty

    def _phase_id(self, thread_id: int, now_ns: int) -> int:
        if self.timer_period_ns is None:
            # Nonstop mode: synthesize phases at 1 ms so the multi-phase
            # stickiness signal still exists.
            return now_ns // NS_PER_MS
        start = self._interval_start.get(thread_id, 0)
        return (now_ns - start) // self.timer_period_ns

    # ------------------------------------------------------------------
    # ProtocolHooks interface
    # ------------------------------------------------------------------

    def on_interval_open(self, thread) -> None:
        """ProtocolHooks: a new HLRC interval just opened for ``thread``."""
        if not self.enabled:
            return
        self._stats[thread.thread_id] = {}
        self._interval_start[thread.thread_id] = thread.clock.now_ns

    def on_access(
        self,
        thread,
        obj: HeapObject,
        *,
        is_write: bool,
        n_elems: int,
        elem_off: int,
        repeat: int,
        real_fault: bool,
    ) -> None:
        """ProtocolHooks: one access op executed (see class docstring)."""
        if not self.enabled:
            return
        tid = thread.thread_id
        stats = self._stats.get(tid)
        if stats is None:
            return
        now = thread.clock.now_ns
        if not self._tracking_on(tid, now):
            return
        if not self.policy.is_sampled(obj):
            return
        # Repeated tracking works by re-resetting sampled objects to
        # false-invalid at each tracking phase: the first access of each
        # phase traps (and is what gets counted — the access-frequency
        # signal has phase granularity); later accesses in the same phase
        # run the fast path free of charge.
        phase = self._phase_id(tid, now)
        entry = stats.get(obj.obj_id)
        if entry is None:
            entry = _ObjStats(first_ns=now)
            stats[obj.obj_id] = entry
        entry.last_ns = now
        if phase in entry.phases:
            return
        entry.phases.add(phase)
        entry.count += 1
        ns = self.costs.gos_trap_ns + self.costs.footprint_track_ns
        thread.cpu.footprinting_ns += ns
        thread.clock.advance(ns)
        self.tracked_accesses += 1

    def on_interval_close(self, thread, interval: IntervalRecord, sync_dst: int | None) -> None:
        """ProtocolHooks: ``thread`` closed ``interval``."""
        if not self.enabled:
            return
        tid = thread.thread_id
        stats = self._stats.pop(tid, None)
        self._interval_start.pop(tid, None)
        if stats is None:
            return
        fp = self._footprint_from_stats(stats)
        # Record even empty footprints: the average must be taken over
        # *all* intervals or estimates at different sampling rates get
        # different denominators and stop being comparable.
        self.interval_footprints.setdefault(tid, []).append(fp)
        self.interval_tracked.setdefault(tid, []).append(set(stats))

    # ------------------------------------------------------------------
    # footprint estimation
    # ------------------------------------------------------------------

    def _footprint_from_stats(self, stats: dict[int, _ObjStats]) -> dict[str, int]:
        """Per-class sticky bytes: sampled objects accessed at least
        ``min_accesses`` times (or spanning >= 2 tracking phases), scaled
        by the gap (Horvitz-Thompson) to estimate the class total."""
        fp: dict[str, int] = {}
        gos = self._gos
        if gos is None:
            if stats:
                raise RuntimeError(
                    "StickySetFootprinter has tracked accesses but no global "
                    "object space attached — call attach_gos() (the "
                    "ProfilerSuite does this automatically)"
                )
            return fp
        for obj_id, entry in stats.items():  # simlint: disable=SIM003 (float footprint accrual; stats follow the deterministic access-recording order)
            if entry.count < self.min_accesses and len(entry.phases) < 2:
                continue
            obj = gos.get(obj_id)
            fp[obj.jclass.name] = fp.get(obj.jclass.name, 0) + self.policy.scaled_bytes(obj)
        return fp

    def attach_gos(self, gos) -> None:
        """Attach the global object space (needed to resolve classes)."""
        self._gos = gos

    def live_footprint(self, thread) -> dict[str, int]:
        """Footprint of the thread's *open* interval at the current
        instant — what the load balancer consults when weighing a
        migration (objects already accessed >= min_accesses times are the
        predicted re-fetch set)."""
        stats = self._stats.get(thread.thread_id, {})
        return self._footprint_from_stats(stats)

    def live_sticky_candidates(self, thread) -> list[int]:
        """Object ids currently qualifying as sticky in the open interval."""
        stats = self._stats.get(thread.thread_id, {})
        return [  # simlint: disable=SIM003 (result order must mirror the open interval's access-recording order)
            oid
            for oid, entry in stats.items()
            if entry.count >= self.min_accesses or len(entry.phases) >= 2
        ]

    def recent_tracked_ids(self, thread, *, window: int = 3) -> set[int]:
        """Sampled object ids the footprinting pass tracked recently —
        the landmark candidates resolution should trust.  Combines the
        live open-interval stats with the last ``window`` non-empty
        closed-interval sets."""
        out: set[int] = set(self._stats.get(thread.thread_id, {}))
        closed = [s for s in self.interval_tracked.get(thread.thread_id, []) if s]
        for s in closed[-window:]:
            out |= s
        return out

    def average_footprint(self, thread_id: int) -> dict[str, float]:
        """Average per-class footprint over *all* of the thread's closed
        intervals (the quantity Table IV's accuracy comparison uses)."""
        fps = self.interval_footprints.get(thread_id, [])
        if not fps:
            return {}
        classes: set[str] = set()
        for fp in fps:
            classes.update(fp)
        return {c: sum(fp.get(c, 0) for fp in fps) / len(fps) for c in sorted(classes)}

    def recent_footprint(self, thread_id: int, *, window: int = 3) -> dict[str, float]:
        """Per-class element-wise maximum over the last ``window``
        non-empty interval footprints — the budget estimator sticky-set
        resolution uses.  A migrating thread's re-fetch cost is governed
        by the interval it is *in* (typically a heavy compute phase), so
        short synchronization-only intervals must not dilute the budget
        the way they do in a lifetime average."""
        fps = [fp for fp in self.interval_footprints.get(thread_id, []) if fp]
        if not fps:
            return {}
        recent = fps[-window:]
        classes: set[str] = set()
        for fp in recent:
            classes.update(fp)
        return {c: float(max(fp.get(c, 0) for fp in recent)) for c in sorted(classes)}
