"""Stack-invariant mining utilities (paper Section III.A step 2).

The :class:`~repro.core.stack_sampler.StackSampler` already maintains
per-frame samples whose surviving slots are invariant candidates.  This
module offers a standalone miner over an explicit sequence of stack
snapshots — used by tests (ground truth for the sampler) and by offline
analysis of recorded runs — plus helpers for classifying frames as
stable or temporary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

#: a snapshot is a list of frames bottom-up; each frame is
#: (frame_uid, method, {slot_idx: obj_id_or_None}).
Snapshot = list[tuple[int, str, dict[int, int | None]]]


@dataclass(frozen=True)
class InvariantRef:
    """One mined invariant: a (frame, slot) that held the same object in
    every snapshot where the frame appeared (appearing at least
    ``min_occurrences`` times)."""

    frame_uid: int
    method: str
    slot: int
    obj_id: int
    occurrences: int


def mine_invariants(
    snapshots: list[Snapshot], *, min_occurrences: int = 2
) -> list[InvariantRef]:
    """Exhaustively mine invariant references from full stack snapshots.

    A slot qualifies if its frame shows up in at least ``min_occurrences``
    snapshots and the slot held the *same* non-None object id every time.
    This is the information-theoretic best case the sampling-based miner
    approximates; the property tests check the sampler never reports an
    invariant this miner rejects (no false invariants — missing some is
    allowed, inventing them is not).
    """
    if min_occurrences < 2:
        raise ValueError("an invariant needs at least 2 observations")
    appearances: Counter[int] = Counter()
    #: (frame_uid, slot) -> set of values seen; None poisons the slot.
    values: dict[tuple[int, int], set[int | None]] = {}
    methods: dict[int, str] = {}
    for snap in snapshots:
        for frame_uid, method, slots in snap:
            appearances[frame_uid] += 1
            methods[frame_uid] = method
            for slot, obj_id in sorted(slots.items()):
                values.setdefault((frame_uid, slot), set()).add(obj_id)
    out: list[InvariantRef] = []
    for (frame_uid, slot), seen in sorted(values.items()):
        if appearances[frame_uid] < min_occurrences:
            continue
        if len(seen) != 1:
            continue
        (only,) = seen
        if only is None:
            continue
        out.append(
            InvariantRef(
                frame_uid=frame_uid,
                method=methods[frame_uid],
                slot=slot,
                obj_id=only,
                occurrences=appearances[frame_uid],
            )
        )
    return out


def frame_lifetimes(snapshots: list[Snapshot]) -> dict[int, int]:
    """Number of snapshots each frame uid appears in — the paper's
    stable-vs-temporary frame distinction made quantitative."""
    counts: Counter[int] = Counter()
    for snap in snapshots:
        for frame_uid, _method, _slots in snap:
            counts[frame_uid] += 1
    return dict(counts)


def stable_frames(snapshots: list[Snapshot], *, min_fraction: float = 0.5) -> set[int]:
    """Frame uids present in at least ``min_fraction`` of the snapshots."""
    if not snapshots:
        return set()
    if not 0 < min_fraction <= 1:
        raise ValueError(f"min_fraction must be in (0, 1], got {min_fraction}")
    need = min_fraction * len(snapshots)
    return {uid for uid, n in frame_lifetimes(snapshots).items() if n >= need}  # simlint: disable=SIM003 (builds a set; iteration order cannot leak)
