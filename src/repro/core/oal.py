"""Object access lists (OALs).

An OAL is the per-thread, per-interval record the access profiler ships
to the master: the ids and (amortized, gap-scaled) sizes of the sampled
objects the thread accessed during one HLRC interval, plus the interval
context.  The HLRC at-most-once property bounds the OAL to one entry per
object per interval regardless of how often the object was accessed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

#: wire bytes per OAL entry (object id + logged size).
ENTRY_WIRE_BYTES = 8
#: wire bytes of the interval context header (thread, interval id, PCs).
BATCH_HEADER_BYTES = 16


class OALEntry(NamedTuple):
    """One logged object access.

    A named tuple rather than a dataclass: profiled runs create one per
    logged (object, interval) pair, and tuple construction is the
    cheapest immutable record CPython offers.
    """

    obj_id: int
    #: logged bytes, already gap-scaled (Horvitz-Thompson weight applied).
    scaled_bytes: int
    class_id: int


@dataclass(slots=True)
class OALBatch:
    """One thread-interval's OAL plus its interval context."""

    thread_id: int
    interval_id: int
    start_pc: int = 0
    end_pc: int = 0
    entries: list[OALEntry] = field(default_factory=list)

    def add(self, obj_id: int, scaled_bytes: int, class_id: int) -> None:
        """Append one entry."""
        self.entries.append(OALEntry(obj_id, scaled_bytes, class_id))

    @property
    def wire_bytes(self) -> int:
        """Serialized size of the jumbo-message fragment for this batch."""
        return BATCH_HEADER_BYTES + len(self.entries) * ENTRY_WIRE_BYTES

    def __len__(self) -> int:
        return len(self.entries)
