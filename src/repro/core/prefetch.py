"""Inter-object affinity: access-path-driven connectivity prefetching.

The paper's affinity taxonomy (Section II) has three members: (1)
thread-thread, (2) thread-object — both handled by its two profilers —
and (3) **inter-object** affinity, "dealt with object prefetching and
home migration", whose profiling technique ("access path analysis") the
authors present in the companion paper [19].  This module supplies the
natural realization over this reproduction's substrate:

* **Learning** (:class:`PathProfile`): after a thread faults an object,
  watch which of that object's *reference fields* the thread follows
  within the next ``window`` accesses.  Statistics aggregate per
  (class, field index) — "threads that fault a ``Body`` dereference its
  position vector 93% of the time" — which is exactly the class-level
  path signal access-path analysis extracts.
* **Acting** (:class:`ConnectivityPrefetcher`): on a remote fault, walk
  the faulted object's hot fields (heat >= ``threshold``) transitively
  up to ``max_depth`` and bundle those objects into the same fault
  reply.  One round trip replaces several; mispredictions only cost
  reply bytes, never extra latency.

The engine consults :attr:`HomeBasedLRC.prefetcher` at fault time, so
enabling this is one assignment on a built DJVM.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.heap.heap import GlobalObjectSpace
from repro.heap.objects import HeapObject


@dataclass
class _PendingWatch:
    """One recently faulted object whose field-follows are being watched."""

    obj_id: int
    class_id: int
    #: ref field index -> target object id.
    targets: dict[int, int]
    remaining: int


@dataclass
class FieldHeat:
    """Per-(class, field) follow statistics."""

    follows: int = 0
    faults: int = 0

    @property
    def heat(self) -> float:
        """Observed P(field followed shortly after a fault of its class)."""
        return self.follows / self.faults if self.faults else 0.0


class PathProfile:
    """Learns which reference fields are followed after faults."""

    def __init__(self, *, window: int = 32) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        #: (class_id, field_idx) -> FieldHeat
        self.stats: dict[tuple[int, int], FieldHeat] = defaultdict(FieldHeat)
        #: thread_id -> active watches.
        self._watches: dict[int, list[_PendingWatch]] = defaultdict(list)

    def observe_fault(self, thread_id: int, obj: HeapObject) -> None:
        """A thread just faulted ``obj``: open a watch on its ref fields."""
        targets = {i: ref for i, ref in enumerate(obj.refs)}
        for i in targets:
            self.stats[(obj.jclass.class_id, i)].faults += 1
        if targets:
            self._watches[thread_id].append(
                _PendingWatch(
                    obj_id=obj.obj_id,
                    class_id=obj.jclass.class_id,
                    targets=targets,
                    remaining=self.window,
                )
            )

    def observe_access(self, thread_id: int, obj_id: int) -> None:
        """Record one access: credit any watch whose target it hits and
        age the watches out."""
        watches = self._watches.get(thread_id)
        if not watches:
            return
        survivors = []
        for watch in watches:
            hit = [i for i, target in sorted(watch.targets.items()) if target == obj_id]
            for i in hit:
                self.stats[(watch.class_id, i)].follows += 1
                del watch.targets[i]
            watch.remaining -= 1
            if watch.remaining > 0 and watch.targets:
                survivors.append(watch)
        self._watches[thread_id] = survivors

    def heat(self, class_id: int, field_idx: int) -> float:
        """Learned follow probability of one (class, field)."""
        return self.stats[(class_id, field_idx)].heat

    def hot_fields(self, class_id: int, n_fields: int, threshold: float) -> list[int]:
        """Field indices of a class whose heat meets ``threshold``."""
        return [
            i
            for i in range(n_fields)
            if self.stats[(class_id, i)].heat >= threshold
            and self.stats[(class_id, i)].faults > 0
        ]


class ConnectivityPrefetcher:
    """Fault-time prefetcher: bundle hot-path successors into the reply.

    Implements both halves of the ProtocolHooks surface it needs (access
    observation for learning) and the engine's ``prefetcher`` interface
    (:meth:`bundle_for`, called while servicing a fault).
    """

    def __init__(
        self,
        gos: GlobalObjectSpace,
        *,
        threshold: float = 0.5,
        max_depth: int = 2,
        max_objects: int = 16,
        min_faults: int = 3,
        window: int = 32,
    ) -> None:
        if not 0 < threshold <= 1:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.gos = gos
        self.profile = PathProfile(window=window)
        self.threshold = threshold
        self.max_depth = max_depth
        self.max_objects = max_objects
        #: faults a (class, field) must witness before its heat is trusted.
        self.min_faults = min_faults
        self.bundled_objects = 0
        self.bundled_bytes = 0

    # -- engine interface ----------------------------------------------------

    def bundle_for(self, thread, obj: HeapObject) -> list[HeapObject]:
        """Objects to piggyback on the fault reply for ``obj``.

        Walks learned-hot reference fields breadth-first up to
        ``max_depth``, skipping objects already valid at the thread's
        node; also feeds the fault into the learner.
        """
        self.profile.observe_fault(thread.thread_id, obj)
        bundle: list[HeapObject] = []
        seen = {obj.obj_id}
        frontier = [(obj, 0)]
        while frontier and len(bundle) < self.max_objects:
            current, depth = frontier.pop(0)
            if depth >= self.max_depth:
                continue
            cid = current.jclass.class_id
            for i in self.profile.hot_fields(cid, len(current.refs), self.threshold):
                stat = self.profile.stats[(cid, i)]
                if stat.faults < self.min_faults:
                    continue
                target_id = current.refs[i]
                if target_id in seen:
                    continue
                seen.add(target_id)
                target = self.gos.get(target_id)
                if target.home_node != obj.home_node:
                    # Only the faulted object's home can serve this reply.
                    continue
                bundle.append(target)
                frontier.append((target, depth + 1))
                if len(bundle) >= self.max_objects:
                    break
        self.bundled_objects += len(bundle)
        self.bundled_bytes += sum(o.size_bytes for o in bundle)
        return bundle

    # -- ProtocolHooks interface (learning side) -------------------------------

    def on_interval_open(self, thread) -> None:
        """ProtocolHooks: nothing to do at interval open."""

    def on_access(self, thread, obj, **kwargs) -> None:
        """ProtocolHooks: feed the access into the path learner."""
        self.profile.observe_access(thread.thread_id, obj.obj_id)

    def on_interval_close(self, thread, interval, sync_dst) -> None:
        """ProtocolHooks: nothing to do at interval close."""
