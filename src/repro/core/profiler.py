"""ProfilerSuite: one object wiring every profiling subsystem into a
DJVM — the simulated counterpart of booting JESSICA2 with the paper's
Access Profiler, Stack Profiler and Correlation Analyzer enabled
(Fig. 2).

Typical use::

    djvm = DJVM(n_nodes=8)
    ... define classes, allocate, spawn threads ...
    suite = ProfilerSuite(djvm, correlation=True, stack=True, footprint=True)
    suite.set_rate_all(4)          # 4X sampling: 4 objects per 4 KB page
    result = djvm.run(programs)
    tcm = suite.tcm()              # thread correlation map
    refs = suite.stack_sampler.invariant_refs(thread)
    fp = suite.footprinter.average_footprint(thread_id)
"""

from __future__ import annotations

import numpy as np

from repro.core.access_profiler import AccessProfiler
from repro.core.adaptive import AdaptiveRateController, PerClassRateController
from repro.core.collector import CorrelationCollector
from repro.core.footprint import StickySetFootprinter
from repro.core.resolution import ResolutionStats, resolve_sticky_set
from repro.core.sampling import SamplingPolicy
from repro.core.stack_sampler import StackSampler
from repro.runtime.djvm import DJVM
from repro.runtime.thread import SimThread


class ProfilerSuite:
    """Facade bundling sampling policy, access profiler, correlation
    collector, sticky-set footprinter and stack sampler."""

    def __init__(
        self,
        djvm: DJVM,
        *,
        correlation: bool = True,
        footprint: bool = False,
        stack: bool = False,
        send_oals: bool = True,
        piggyback: bool = True,
        window_batches: int | None = None,
        stack_gap_ms: float = 16.0,
        lazy_extraction: bool = True,
        footprint_timer_ms: float | None = None,
        footprint_min_gap: int = 1,
        use_prime_gaps: bool = True,
        sampling_backend=None,
    ) -> None:
        if not djvm.threads:
            raise ValueError("spawn threads before constructing the ProfilerSuite")
        self.djvm = djvm
        costs = djvm.costs
        if sampling_backend is None:
            # DJVM(sampling_backend=...) is the user-facing switch; an
            # explicit constructor argument overrides it.
            sampling_backend = getattr(djvm, "sampling_backend", None)
        self.policy = SamplingPolicy(
            page_size=costs.page_size,
            use_prime_gaps=use_prime_gaps,
            backend=sampling_backend,
        )
        self.collector = CorrelationCollector(
            n_threads=len(djvm.threads),
            cluster=djvm.cluster,
            gos=djvm.gos,
            window_batches=window_batches,
        )
        self.access_profiler: AccessProfiler | None = None
        self.footprinter: StickySetFootprinter | None = None
        self.stack_sampler: StackSampler | None = None

        sanitizer = getattr(djvm, "sanitizer", None)
        if correlation:
            self.access_profiler = AccessProfiler(
                self.policy,
                djvm.cluster,
                collector=self.collector,
                send_oals=send_oals,
                piggyback=piggyback,
            )
            if sanitizer is not None:
                self.access_profiler.sanitizer = sanitizer
            objprof = getattr(djvm, "objprof", None)
            if objprof is not None:
                # HT-weighted OAL feed for the object-centric report.
                self.access_profiler.objprof = objprof
            djvm.add_hook(self.access_profiler)
        if footprint:
            self.footprinter = StickySetFootprinter(
                self.policy,
                costs,
                timer_period_ms=footprint_timer_ms,
            )
            self.footprinter.attach_gos(djvm.gos)
            if sanitizer is not None:
                sanitizer.attach_footprinter(self.footprinter)
            if footprint_min_gap > 1:
                for jclass in djvm.registry:
                    self.policy.set_min_gap(jclass, footprint_min_gap)
            djvm.add_hook(self.footprinter)
        if stack:
            self.stack_sampler = StackSampler(
                costs, gap_ms=stack_gap_ms, lazy=lazy_extraction
            )
            djvm.add_timer(self.stack_sampler)
        telemetry = getattr(djvm, "telemetry", None)
        if telemetry is not None:
            telemetry.attach_suite(self)

    # ------------------------------------------------------------------
    # sampling-rate management
    # ------------------------------------------------------------------

    def set_rate_all(self, rate: float | str) -> None:
        """Apply one page-relative sampling rate to every defined class,
        charging resampling passes for classes whose gap changed."""
        changed = self.policy.set_rate_all(list(self.djvm.registry), rate)
        if self.access_profiler is not None:
            for jclass in changed:
                self.access_profiler.notify_rate_change(jclass)

    def set_full_sampling(self) -> None:
        """Shortcut: apply the 'full' rate to every defined class."""
        self.set_rate_all("full")

    def attach_controller(self, controller: AdaptiveRateController) -> None:
        """Drive rates adaptively: requires a windowed collector.  After
        each processed window the controller observes the window TCM and
        the suite applies any rate change it requests."""
        if self.collector.window_batches is None:
            raise ValueError("adaptive control needs window_batches set on the collector")
        suite = self
        original = self.collector.process_window

        def process_and_control():
            window = original()
            new_rate = controller.observe(window)
            # The controller itself remembers what the suite last applied
            # (mirroring how attach_per_class_controller keeps state in
            # the per-class controllers).
            if new_rate != controller.applied_rate:
                suite.set_rate_all(new_rate)
                controller.applied_rate = new_rate
            return window

        self.collector.process_window = process_and_control  # type: ignore[method-assign]

    def attach_per_class_controller(self, controller: PerClassRateController) -> None:
        """Drive rates adaptively *per class* (the paper's granularity):
        after each processed window, the controller observes each class's
        own sub-map and the suite applies any per-class rate changes,
        charging the per-class resampling passes."""
        if self.collector.window_batches is None:
            raise ValueError("adaptive control needs window_batches set on the collector")
        self.collector.track_per_class = True
        suite = self
        original = self.collector.process_window

        def process_and_control():
            window = original()
            class_tcms = suite.collector.window_class_tcms[-1]
            changes = controller.observe(class_tcms)
            for class_id, rate in sorted(changes.items()):
                jclass = suite.djvm.registry.by_id(class_id)
                if suite.policy.set_rate(jclass, rate) and suite.access_profiler:
                    suite.access_profiler.notify_rate_change(jclass)
            return window

        self.collector.process_window = process_and_control  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------

    def tcm(self) -> np.ndarray:
        """The accrued thread correlation map."""
        return self.collector.tcm()

    def resolve_sticky_set(
        self,
        thread: SimThread,
        *,
        tolerance: float = 2.0,
        use_landmarks: bool = True,
        min_comparisons: int = 1,
        charge_cost: bool = True,
    ) -> ResolutionStats:
        """Run sticky-set resolution for a thread about to migrate, using
        the stack sampler's invariants as entry points and the live
        footprint as the per-class budget."""
        if self.stack_sampler is None or self.footprinter is None:
            raise RuntimeError("resolution needs both stack and footprint profiling enabled")
        entry = self.stack_sampler.invariant_refs(thread, min_comparisons=min_comparisons)
        footprint = self.footprinter.live_footprint(thread)
        if not footprint:
            # Fall back to recent closed intervals (element-wise max):
            # migration cost is governed by the heavy interval being
            # interrupted, not by a lifetime average diluted with short
            # synchronization-only intervals.
            footprint = self.footprinter.recent_footprint(thread.thread_id)
        return resolve_sticky_set(
            self.djvm.gos,
            self.policy,
            entry,
            footprint,
            tolerance=tolerance,
            use_landmarks=use_landmarks,
            landmark_ids=self.footprinter.recent_tracked_ids(thread),
            thread=thread if charge_cost else None,
            costs=self.djvm.costs if charge_cost else None,
        )
