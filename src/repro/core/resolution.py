"""Sticky-set resolution (paper Section III.A step 3).

Invoked lazily when a thread migration is decided: starting from the
thread's stack-invariant references (topmost first), trace the object
graph selecting prefetch candidates until the per-class sticky-set
footprint estimated by object sampling is met.  Two paper-specific
guards distinguish this from plain connectivity prefetching:

* **Landmark guidance** — sampled objects are scattered uniformly over
  the true sticky set, so a traced path that goes ``tolerance x gap``
  objects of a class without meeting a sampled ("landmark") object is
  probably heading out of the sticky set; the trace stops that path and
  switches to the next entry point.  ``gap`` here is the policy's
  *expected* inter-sample spacing (``SamplingPolicy.expected_gap``), so
  the guard calibrates itself to whichever sampling backend selected
  the landmarks.
* **Per-class budgets** — the footprint gives the expected byte
  composition per class; each class stops contributing once its budget
  is met, and resolution ends when every budgeted class is satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sampling import SamplingPolicy
from repro.heap.heap import GlobalObjectSpace


@dataclass
class ResolutionStats:
    """What one resolution pass did."""

    selected: list[int] = field(default_factory=list)
    visited: int = 0
    edges_traced: int = 0
    #: paths abandoned by the landmark guard.
    landmark_stops: int = 0
    #: per-class bytes selected (scaled estimate, comparable to footprint).
    selected_bytes: dict[str, int] = field(default_factory=dict)
    cost_ns: int = 0


def resolve_sticky_set(
    gos: GlobalObjectSpace,
    policy: SamplingPolicy,
    entry_refs: list[int],
    footprint: dict[str, float],
    *,
    tolerance: float = 2.0,
    use_landmarks: bool = True,
    landmark_ids: set[int] | None = None,
    max_visits: int = 1_000_000,
    thread=None,
    costs=None,
) -> ResolutionStats:
    """Trace from ``entry_refs`` until the per-class ``footprint`` byte
    budgets are met; returns the selected object ids and statistics.

    ``tolerance`` is the paper's ``t`` parameter (> 1): a path is
    abandoned after seeing ``t * gap`` objects of some class without one
    being a landmark.  ``landmark_ids``, when given, restricts landmarks
    to sampled objects the footprinting pass actually *tracked* (the
    paper's landmarks are sampled members of the sticky set — an object
    merely tagged sampled by the policy but never accessed by the thread
    lends no evidence the trace is inside the set); without it, the
    policy's sampling tag is used.  When ``thread``/``costs`` are given,
    the trace's CPU cost is charged to the thread (``cpu.resolution_ns``).
    """
    if tolerance <= 1:
        raise ValueError(f"tolerance must be > 1, got {tolerance}")
    stats = ResolutionStats()
    budgets = {c: float(b) for c, b in footprint.items() if b > 0}  # simlint: disable=SIM003 (budget order mirrors the caller's footprint accrual order the walk is calibrated against)
    if not budgets:
        return stats
    selected_set: set[int] = set()
    #: sampled bytes met so far per class (resolution's stop signal is the
    #: reachable *sampled* footprint hitting the estimate).
    met: dict[str, float] = {c: 0.0 for c in budgets}
    visited_global: set[int] = set()

    def is_landmark(obj, sampled: bool) -> bool:
        if not sampled:
            return False
        return landmark_ids is None or obj.obj_id in landmark_ids

    def budget_done() -> bool:
        return all(met[c] >= budgets[c] for c in budgets)

    for root in entry_refs:
        if budget_done() or stats.visited >= max_visits:
            break
        # Depth-first trace from this entry point; per-path per-class
        # "objects since last landmark" counters implement the guard.
        stack: list[int] = [root]
        since_landmark: dict[str, int] = {}
        abandoned = False
        while stack and not abandoned:
            obj_id = stack.pop()
            if obj_id in visited_global:
                continue
            visited_global.add(obj_id)
            stats.visited += 1
            if stats.visited >= max_visits:
                break
            obj = gos.get(obj_id)
            cname = obj.jclass.name
            # The guard's tolerance unit is the *expected* spacing
            # between samples under the active backend: the prime gap
            # for divisibility/hash selection, the inverse inclusion
            # probability for Poisson.
            gap = policy.expected_gap(obj.jclass)
            sampled = policy.is_sampled(obj)
            landmark = is_landmark(obj, sampled)

            class_open = cname in budgets and met[cname] < budgets[cname]
            if class_open or obj.refs:
                # Select the object if its class still has budget;
                # structural objects (with outgoing refs) are traversed
                # regardless so interior classes can be reached.
                if class_open and obj_id not in selected_set:
                    selected_set.add(obj_id)
                    stats.selected.append(obj_id)
                    stats.selected_bytes[cname] = (
                        stats.selected_bytes.get(cname, 0) + obj.size_bytes
                    )
                    if landmark:
                        met[cname] += policy.scaled_bytes(obj)

            # Landmark bookkeeping (applies to every class traced: a long
            # landmark-free stretch of *any* class means the trace has
            # probably left the sticky set).
            if use_landmarks:
                if landmark:
                    since_landmark[cname] = 0
                else:
                    seen = since_landmark.get(cname, 0) + 1
                    since_landmark[cname] = seen
                    if seen > tolerance * gap:
                        stats.landmark_stops += 1
                        abandoned = True
                        break

            if budget_done():
                break
            for ref in reversed(obj.refs):
                stats.edges_traced += 1
                if ref not in visited_global:
                    stack.append(ref)

    if thread is not None and costs is not None:
        ns = stats.edges_traced * costs.resolve_trace_ns + stats.visited * costs.resolve_trace_ns
        stats.cost_ns = ns
        thread.cpu.resolution_ns += ns
        thread.clock.advance(ns)
    return stats
