"""Class-level adaptive object sampling (paper Section II.B).

Every class carries its own *sampling gap*: an object is sampled iff its
per-class sequence number is divisible by the gap.  Nominal gaps are
powers of two; the **real** gap is the nearest prime (Section II.B.1) so
cyclic allocation patterns cannot alias with the gap.  Rates are
expressed page-relative as ``nX`` — "sample n objects per 4 KB page" —
so for a class of size ``s`` the nominal gap at rate ``nX`` is
``page_size / (s * n)``; classes at least a page large are therefore
always fully sampled at any rate (the reason SOR behaves as if fully
sampled throughout the paper's tables).

Sampled contributions are scaled by the gap (a Horvitz-Thompson
estimator): each sampled object stands for ``gap`` allocated peers, so
TCMs estimated at any rate are directly comparable with the
full-sampling reference — which is what the paper's accuracy formulas
(1)/(2) compare.

Sampling backends
-----------------

The *decision* — given an object and the class's current gap, is it
sampled, how many bytes are logged, and what Horvitz-Thompson weight do
they carry — is pluggable through :class:`SamplingBackend`
(``decide`` / ``decide_batch`` / ``epoch`` / ``snapshot``).  The
:class:`SamplingPolicy` keeps owning the per-class *configuration*
(rate ladder -> nominal gap -> realized prime gap, min-gap clamps,
epochs) so every backend answers the same page-relative rate semantics;
backends differ only in how they select objects at that rate:

* :class:`PrimeGapBackend` (default) — the paper's scheme: sequence
  divisibility, memoized per class and keyed by the gap epoch.  Needs
  the per-class allocation sequence counter and a cluster resampling
  pass on every rate change.
* :class:`HashBackend` — a pure function of the object id (xorshift
  mix), matching the prime-gap inclusion probability per class with no
  mutable per-class decision state and no resampling passes.  Rate
  changes are a threshold update.
* :class:`PoissonByteBackend` — a Poisson process over the allocation
  byte stream (rate ``λ = 1 / (gap · unit_bytes)``): an object is
  sampled iff at least one arrival lands in its byte extent, so
  inter-sample byte distances are Exp(λ) (discretized at object
  granularity).  Rate changes are a λ update.
* :class:`HybridBackend` — Poisson for small scalars, hash for arrays
  and large objects (the Continuous-Memory-Profiler HYBRID shape).

Stateless selections are deterministic across runs and processes: the
per-backend key is derived from :func:`repro.util.rng.seeded_rng`.
They carry a known failure mode (the snippet's PAGE_HASH dead zone):
a hash over immutable identities excludes a fixed subset of objects
forever, so a class whose live population times its inclusion
probability is below ~1 can be *entirely* unsampled.
:meth:`StatelessBackend.dead_zone_report` flags such classes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.array_sampling import amortized_sample_bytes, sampled_element_count
from repro.heap.jclass import JClass
from repro.heap.objects import HeapObject
from repro.util.primes import prime_gap_for_nominal
from repro.util.rng import seeded_rng
from repro.util.validation import check_positive

#: rate sentinel for full sampling.
FULL = "full"

_M64 = (1 << 64) - 1
_ONE64 = 1 << 64
#: odd multiplier decorrelating consecutive object ids before mixing.
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a xorshift-multiply bijection on 64-bit
    ints.  Pure integer arithmetic — identical on every host/process."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def _mix64_array(ids: np.ndarray, key: int) -> np.ndarray:
    """Vectorized :func:`_mix64` over ``(ids * GOLDEN) ^ key``; uint64
    wraparound matches the scalar mod-2^64 arithmetic exactly."""
    x = (ids * np.uint64(_GOLDEN)) ^ np.uint64(key)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


@dataclass
class ClassSamplingState:
    """Per-class sampling metadata (the paper stores this "as close to
    subclasses as possible")."""

    jclass: JClass
    nominal_gap: int = 1
    real_gap: int = 1
    #: bumped on every gap change; lets caches detect staleness.
    epoch: int = 0
    #: lower bound on the gap (used by sticky-set footprinting).
    min_gap: int = 1
    history: list[int] = field(default_factory=list)
    #: epoch the memoized decisions below were computed under; any
    #: mismatch with ``epoch`` invalidates the whole cache.
    cache_epoch: int = -1
    #: obj_id -> (sampled, logged_bytes, scaled_bytes) memo, valid only
    #: while ``cache_epoch == epoch``.
    decisions: dict[int, tuple[bool, int, int]] = field(default_factory=dict)

    def set_nominal(self, nominal: int) -> bool:
        """Set a new nominal gap; returns True if the real gap changed."""
        check_positive(nominal, "nominal gap")
        nominal = max(nominal, self.min_gap)
        real = prime_gap_for_nominal(nominal)
        changed = real != self.real_gap
        self.nominal_gap = nominal
        if changed:
            self.real_gap = real
            self.epoch += 1
            self.history.append(real)
        return changed


# ---------------------------------------------------------------------------
# backend protocol
# ---------------------------------------------------------------------------


class SamplingBackend:
    """One sampling-decision scheme, pluggable under a SamplingPolicy.

    The protocol is four methods — :meth:`decide`, :meth:`decide_batch`,
    :meth:`epoch`, :meth:`snapshot` — plus two capability flags:

    * ``memoized`` — decisions are cached in the per-class state
      (``ClassSamplingState.decisions``) keyed by the gap epoch; hot
      paths may probe that memo directly.
    * ``needs_resample_pass`` — a gap change requires the cluster-wide
      object re-tagging pass the paper charges (stateless backends
      recompute decisions from immutable identity instead and skip it).

    Every backend observes its own sample/skip counters per class
    (evaluated decisions only: the memoized backend counts each cold
    compute once; stateless backends count every evaluation).  Those
    feed the obs registry's ``sampling_decisions_total`` /
    ``sampling_realized_rate`` families.
    """

    name = "abstract"
    memoized = False
    needs_resample_pass = False

    def __init__(self) -> None:
        self.policy: SamplingPolicy | None = None
        #: class_id -> decisions that selected the object.
        self.sample_counts: dict[int, int] = {}
        #: class_id -> decisions that skipped the object.
        self.skip_counts: dict[int, int] = {}

    def bind(self, policy: "SamplingPolicy") -> "SamplingBackend":
        """Attach to the policy owning the per-class gap configuration."""
        self.policy = policy
        return self

    # -- protocol ------------------------------------------------------

    def decide(self, obj: HeapObject) -> tuple[bool, int, int]:
        """``(sampled, logged_bytes, scaled_bytes)`` for one object."""
        raise NotImplementedError

    def decide_batch(self, objs) -> list[tuple[bool, int, int]]:
        """:meth:`decide` over an iterable, in input order.  Backends
        override when a batch can be computed cheaper than a loop."""
        decide = self.decide
        return [decide(obj) for obj in objs]

    def epoch(self, class_id: int | None = None) -> int:
        """Staleness token for cached decisions: the class's gap epoch,
        or (``class_id=None``) the policy-wide change generation."""
        policy = self.policy
        if class_id is None:
            return policy.rate_changes
        st = policy._states.get(class_id)
        return -1 if st is None else st.epoch

    def snapshot(self) -> dict:
        """Deterministically ordered digest of the backend's view: the
        per-class realized parameters plus the decision counters."""
        policy = self.policy
        classes = {}
        for cid in sorted(policy._states):
            st = policy._states[cid]
            classes[st.jclass.name] = {
                "gap": st.real_gap,
                "epoch": st.epoch,
                "samples": self.sample_counts.get(cid, 0),
                "skips": self.skip_counts.get(cid, 0),
            }
        return {"backend": self.name, "memoized": self.memoized, "classes": classes}

    # -- shared helpers ------------------------------------------------

    def _fresh_memo(self, st: ClassSamplingState) -> dict[int, tuple[bool, int, int]]:
        """The one epoch-check/memo helper shared by the scalar and batch
        decision paths: validate the class's decision cache against its
        gap epoch, clearing a stale cache, and return it."""
        if st.cache_epoch != st.epoch:
            st.decisions.clear()
            st.cache_epoch = st.epoch
        return st.decisions

    def _count(self, class_id: int, sampled: bool) -> None:
        counts = self.sample_counts if sampled else self.skip_counts
        counts[class_id] = counts.get(class_id, 0) + 1

    def class_stats(self) -> dict[int, tuple[int, int]]:
        """class_id -> (samples, skips) over evaluated decisions."""
        out: dict[int, tuple[int, int]] = {}
        for cid in sorted(set(self.sample_counts) | set(self.skip_counts)):
            out[cid] = (self.sample_counts.get(cid, 0), self.skip_counts.get(cid, 0))
        return out

    def totals(self) -> tuple[int, int]:
        """(samples, skips) summed over every class."""
        stats = self.class_stats()
        return (
            sum(s for s, _ in stats.values()),  # simlint: disable=SIM003 (commutative sum; class_stats() is sorted-key anyway)
            sum(k for _, k in stats.values()),  # simlint: disable=SIM003 (commutative sum; class_stats() is sorted-key anyway)
        )

    def realized_rates(self) -> dict[int, float]:
        """class_id -> sampled fraction among evaluated decisions."""
        return {  # simlint: disable=SIM003 (class_stats() builds its dict in sorted-class_id order)
            cid: s / (s + k)
            for cid, (s, k) in self.class_stats().items()
            if s + k > 0
        }

    def expected_gap(self, st: ClassSamplingState) -> int:
        """Mean object spacing between samples of the class (the
        landmark-guard tolerance unit in sticky-set resolution)."""
        return st.real_gap


class PrimeGapBackend(SamplingBackend):
    """The paper's per-class prime-gap scheme (the default): sequence
    divisibility for scalars, any-element divisibility for arrays,
    memoized per class under the gap epoch."""

    name = "prime_gap"
    memoized = True
    needs_resample_pass = True

    def decide(self, obj: HeapObject) -> tuple[bool, int, int]:
        policy = self.policy
        st = policy._states.get(obj.jclass.class_id)
        if st is None:
            st = policy.state(obj.jclass)
        memo = self._fresh_memo(st)
        cached = memo.get(obj.obj_id)
        if cached is not None:
            return cached
        result = self._compute(st, obj)
        memo[obj.obj_id] = result
        return result

    def decide_batch(self, objs) -> list[tuple[bool, int, int]]:
        """Hoists the per-class state lookup and epoch check out of the
        per-object loop: consecutive objects of the same class pay one
        dict probe each.  The memo is shared with the scalar path, so
        mixing the two APIs stays coherent."""
        policy = self.policy
        states = policy._states
        out: list[tuple[bool, int, int]] = []
        st = None
        class_id = -1
        memo: dict[int, tuple[bool, int, int]] = {}
        for obj in objs:
            cid = obj.jclass.class_id
            if cid != class_id:
                st = states.get(cid)
                if st is None:
                    st = policy.state(obj.jclass)
                memo = self._fresh_memo(st)
                class_id = cid
            cached = memo.get(obj.obj_id)
            if cached is None:
                cached = self._compute(st, obj)
                memo[obj.obj_id] = cached
            out.append(cached)
        return out

    def _compute(self, st: ClassSamplingState, obj: HeapObject) -> tuple[bool, int, int]:
        gap = st.real_gap
        if obj.is_array:
            if gap == 1:
                sampled = True
            else:
                sampled = sampled_element_count(obj.seq, obj.length, gap) > 0
            logged = amortized_sample_bytes(obj, gap)
        else:
            sampled = True if gap == 1 else obj.seq % gap == 0
            logged = obj.jclass.instance_size
        self._count(st.jclass.class_id, sampled)
        return (sampled, logged, logged * gap)


class StatelessBackend(SamplingBackend):
    """Base for backends whose decision is a pure function of the
    object's immutable identity and the class's current gap — no memo,
    no per-object tags, no cluster resampling passes.  The selection
    key is derived from :func:`repro.util.rng.seeded_rng`, so runs and
    processes agree on which objects are selected."""

    needs_resample_pass = False

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = int(seed)
        self._key = int(
            seeded_rng(self.seed, "sampling", self.name).integers(
                0, _ONE64, dtype=np.uint64
            )
        )

    def decide(self, obj: HeapObject) -> tuple[bool, int, int]:
        st = self.policy.state(obj.jclass)
        result = self._kernel(obj, st)
        self._count(st.jclass.class_id, result[0])
        return result

    def sampled_raw(self, obj: HeapObject) -> bool:
        """The bare selection bit, without touching the counters (used
        by :meth:`dead_zone_report` so probing is side-effect free)."""
        return self._kernel(obj, self.policy.state(obj.jclass))[0]

    def _kernel(self, obj: HeapObject, st: ClassSamplingState) -> tuple[bool, int, int]:
        raise NotImplementedError

    def probability(self, obj: HeapObject) -> float:
        """The object's inclusion probability under the current gap."""
        raise NotImplementedError

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["seed"] = self.seed
        snap["key"] = self._key
        return snap

    def dead_zone_report(self, gos, *, min_expected: float = 2.0) -> list[dict]:
        """Flag classes whose live working set is below the backend's
        resolvable population — the snippet's PAGE_HASH failure mode.

        A stateless selection over immutable identities excludes a fixed
        subset of objects for the lifetime of the run; when a class's
        expected sample count (``Σ inclusion probability`` over its live
        objects) falls under ``min_expected``, or no live object hashes
        into the selection at all, the class's TCM contribution is
        structurally biased (possibly zero) rather than noisy.  Returns
        one record per flagged class, definition order.
        """
        out: list[dict] = []
        for jclass in gos.registry:
            objs = gos.objects_of_class(jclass)
            if not objs:
                continue
            gap = self.policy.state(jclass).real_gap
            if gap == 1:
                continue
            expected = 0.0
            actual = 0
            for obj in objs:
                expected += self.probability(obj)
                if self.sampled_raw(obj):
                    actual += 1
            if expected < min_expected or actual == 0:
                out.append(
                    {
                        "class": jclass.name,
                        "population": len(objs),
                        "gap": gap,
                        "expected_samples": round(expected, 6),
                        "actual_samples": actual,
                    }
                )
        return out


class HashBackend(StatelessBackend):
    """Stateless object-id hash selection (the snippet's STATELESS_HASH).

    An object is selected iff a xorshift mix of its id falls under a
    threshold realizing the class's prime-gap inclusion probability:
    ``1/gap`` for scalars, ``min(1, length/gap)`` for arrays (matching
    the element-wise scheme's any-element-sampled probability), with the
    same amortized logged bytes and Horvitz-Thompson weights as the
    default backend.  Rate changes are a pure threshold update — no
    per-class decision state, no resampling pass.  All comparisons are
    exact integer arithmetic (``h * gap < length << 64``), so scalar and
    vectorized batch decisions agree bit-for-bit.
    """

    name = "hash"

    def _kernel(self, obj: HeapObject, st: ClassSamplingState) -> tuple[bool, int, int]:
        jclass = obj.jclass
        gap = st.real_gap
        if obj.is_array:
            logged = amortized_sample_bytes(obj, gap)
            if gap == 1:
                return (True, logged, logged)
            h = _mix64((obj.obj_id * _GOLDEN) ^ self._key)
            sampled = obj.length >= gap or h * gap < (obj.length << 64)
        else:
            logged = jclass.instance_size
            if gap == 1:
                return (True, logged, logged)
            h = _mix64((obj.obj_id * _GOLDEN) ^ self._key)
            sampled = h * gap < _ONE64
        return (sampled, logged, logged * gap)

    def probability(self, obj: HeapObject) -> float:
        gap = self.policy.state(obj.jclass).real_gap
        if gap == 1:
            return 1.0
        if obj.is_array:
            return min(1.0, obj.length / gap)
        return 1.0 / gap

    def decide_batch(self, objs) -> list[tuple[bool, int, int]]:
        """The decide_batch lane: one Python pass gathers per-object
        (id, gap, length, unit) arrays, then numpy does the rest — the
        splitmix mix, an exact 128-bit threshold comparison, and the
        amortized logged/scaled byte arithmetic — bit-identical to the
        scalar kernel.

        The selection test unifies scalars and arrays: with ``L = 1``
        for scalars and the element count for arrays,
        ``h·gap < L·2^64  ⟺  floor(h·gap / 2^64) < L``, and the high
        word of the 64x32-bit product is computed exactly in uint64
        (``gap`` is far below 2^32).  The ``length >= gap`` and
        ``gap == 1`` scalar-path short-circuits are subsumed: both make
        the high word smaller than ``L`` for every hash.
        """
        objs = objs if isinstance(objs, list) else list(objs)
        n = len(objs)
        if n < 64:
            return [self.decide(o) for o in objs]
        policy = self.policy
        ids = np.fromiter((o.obj_id for o in objs), dtype=np.uint64, count=n)
        cids = np.fromiter((o.jclass.class_id for o in objs), dtype=np.int64, count=n)
        raw_len = np.fromiter((o.length for o in objs), dtype=np.uint64, count=n)

        # Per-class metadata goes through small class-id-indexed tables
        # so the per-object work stays in C-level gathers no matter how
        # classes interleave in the stream.
        classes = {o.jclass.class_id: o.jclass for o in objs}
        top = max(classes) + 1
        gap_table = np.ones(top, dtype=np.uint64)
        unit_table = np.zeros(top, dtype=np.int64)
        arr_table = np.zeros(top, dtype=bool)
        for cid, jclass in classes.items():  # simlint: disable=SIM003 (each cid writes its own table slot exactly once; order cannot matter)
            st = policy.state(jclass)
            gap_table[cid] = st.real_gap
            arr_table[cid] = jclass.is_array
            unit_table[cid] = (
                jclass.element_size if jclass.is_array else jclass.instance_size
            )
        gaps = gap_table[cids]
        units = unit_table[cids]
        is_arr = arr_table[cids]
        # Effective count L in the unified test h*gap < L*2^64: one for
        # scalars, the element count for arrays (zero-length arrays are
        # never sampled, matching the scalar kernel).
        lengths = np.where(is_arr, raw_len, np.uint64(1))
        h = _mix64_array(ids, self._key)
        # High 64 bits of h*gap, exactly: h*gap = (h>>32)*gap*2^32 + lo.
        lo = (h & np.uint64(0xFFFFFFFF)) * gaps
        high64 = (((h >> np.uint64(32)) * gaps) + (lo >> np.uint64(32))) >> np.uint64(32)
        sampled = high64 < lengths
        # Amortized logged bytes: round-half-even element count for
        # arrays at gap > 1 (np.rint matches round()), floored at one
        # element; the element payload at gap 1; the instance size for
        # scalars.
        flen = lengths.astype(np.float64)
        counts = np.where(
            gaps == np.uint64(1),
            flen,
            np.where(
                flen == 0.0,
                0.0,
                np.maximum(1.0, np.rint(flen / gaps.astype(np.float64))),
            ),
        ).astype(np.int64)
        logged = np.where(is_arr, counts * units, units)
        scaled = logged * gaps.astype(np.int64)
        # Fold the decision counters in per class (identical totals to
        # per-object _count calls).
        uniq, inv = np.unique(cids, return_inverse=True)
        per_class = np.bincount(inv, weights=sampled)
        per_total = np.bincount(inv)
        for j, cid in enumerate(uniq.tolist()):
            s = int(per_class[j])
            t = int(per_total[j])
            self.sample_counts[cid] = self.sample_counts.get(cid, 0) + s
            self.skip_counts[cid] = self.skip_counts.get(cid, 0) + (t - s)
        return list(zip(sampled.tolist(), logged.tolist(), scaled.tolist()))


class PoissonByteBackend(StatelessBackend):
    """Stateless Poisson sampling over the allocation byte stream (the
    snippet's POISSON_HEADER).

    A Poisson process of rate ``λ = 1 / (gap · unit_bytes)`` runs over
    allocated bytes; an object is sampled iff at least one arrival lands
    in its extent, i.e. with probability ``1 − exp(−size·λ)``, realized
    as a deterministic per-object uniform draw (seeded xorshift mix of
    the object id).  Inter-sample byte distances are therefore Exp(λ)
    up to object-granularity discretization.  The Horvitz-Thompson
    weight is ``size / p`` — unbiased for any object size.  Rate changes
    are a pure λ update.
    """

    name = "poisson"

    def _kernel(self, obj: HeapObject, st: ClassSamplingState) -> tuple[bool, int, int]:
        jclass = obj.jclass
        gap = st.real_gap
        if obj.is_array:
            size = obj.length * jclass.element_size
            unit = jclass.element_size
            logged = amortized_sample_bytes(obj, gap)
        else:
            size = jclass.instance_size
            unit = jclass.instance_size
            logged = jclass.instance_size
        if gap == 1:
            return (True, logged, logged)
        h = _mix64((obj.obj_id * _GOLDEN) ^ self._key)
        if size <= 0 or unit <= 0:
            # Degenerate zero-byte class: fall back to plain 1/gap
            # selection; there is no byte extent to weigh.
            return (h * gap < _ONE64, 0, 0)
        p = -math.expm1(-size / (gap * unit))
        sampled = h < int(p * 18446744073709551616.0)  # p * 2^64
        return (sampled, logged, int(round(size / p)))

    def probability(self, obj: HeapObject) -> float:
        jclass = obj.jclass
        gap = self.policy.state(jclass).real_gap
        if gap == 1:
            return 1.0
        if obj.is_array:
            size, unit = obj.length * jclass.element_size, jclass.element_size
        else:
            size = unit = jclass.instance_size
        if size <= 0 or unit <= 0:
            return 1.0 / gap
        return -math.expm1(-size / (gap * unit))

    def expected_gap(self, st: ClassSamplingState) -> int:
        gap = st.real_gap
        if gap == 1:
            return 1
        return max(1, round(-1.0 / math.expm1(-1.0 / gap)))


class HybridBackend(SamplingBackend):
    """Poisson for small scalars, hash for arrays and large objects (the
    snippet's HYBRID): header-byte Poisson keeps small-object estimates
    low-variance while big, coarse-grained objects take the cheaper
    hash test.  ``split_bytes`` is the routing boundary for scalars."""

    name = "hybrid"
    needs_resample_pass = False

    def __init__(self, seed: int = 0, *, split_bytes: int = 256) -> None:
        super().__init__()
        check_positive(split_bytes, "split_bytes")
        self.seed = int(seed)
        self.split_bytes = int(split_bytes)
        self.poisson = PoissonByteBackend(seed)
        self.hash = HashBackend(seed)

    def bind(self, policy: "SamplingPolicy") -> "HybridBackend":
        super().bind(policy)
        self.poisson.bind(policy)
        self.hash.bind(policy)
        return self

    def route(self, obj: HeapObject) -> StatelessBackend:
        """Which sub-backend decides this object."""
        jclass = obj.jclass
        if jclass.is_array or jclass.instance_size >= self.split_bytes:
            return self.hash
        return self.poisson

    def decide(self, obj: HeapObject) -> tuple[bool, int, int]:
        return self.route(obj).decide(obj)

    def sampled_raw(self, obj: HeapObject) -> bool:
        return self.route(obj).sampled_raw(obj)

    def probability(self, obj: HeapObject) -> float:
        return self.route(obj).probability(obj)

    def dead_zone_report(self, gos, *, min_expected: float = 2.0):
        return StatelessBackend.dead_zone_report(self, gos, min_expected=min_expected)

    def class_stats(self) -> dict[int, tuple[int, int]]:
        out: dict[int, tuple[int, int]] = {}
        for sub in (self.poisson, self.hash):
            for cid, (s, k) in sub.class_stats().items():  # simlint: disable=SIM003 (sub class_stats() is sorted-key; merge re-sorts below)
                ps, pk = out.get(cid, (0, 0))
                out[cid] = (ps + s, pk + k)
        return dict(sorted(out.items()))

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["seed"] = self.seed
        snap["split_bytes"] = self.split_bytes
        snap["poisson"] = self.poisson.snapshot()
        snap["hash"] = self.hash.snapshot()
        return snap


#: backend name -> constructor (the ``DJVM(sampling_backend="...")`` registry).
BACKENDS: dict[str, type[SamplingBackend]] = {
    PrimeGapBackend.name: PrimeGapBackend,
    PoissonByteBackend.name: PoissonByteBackend,
    HashBackend.name: HashBackend,
    HybridBackend.name: HybridBackend,
}


def resolve_backend(spec) -> SamplingBackend:
    """Normalize a backend spec — None (default), a registry name, or a
    ready instance — into an unbound backend instance."""
    if spec is None:
        return PrimeGapBackend()
    if isinstance(spec, SamplingBackend):
        return spec
    if isinstance(spec, str):
        ctor = BACKENDS.get(spec)
        if ctor is None:
            raise ValueError(
                f"unknown sampling backend {spec!r}; known: {sorted(BACKENDS)}"
            )
        return ctor()
    raise TypeError(f"sampling backend must be None, a name or a SamplingBackend, got {spec!r}")


class SamplingPolicy:
    """Cluster-wide sampling configuration: one gap per class, plus the
    pluggable decision backend that realizes it."""

    def __init__(
        self,
        page_size: int = 4096,
        *,
        use_prime_gaps: bool = True,
        backend=None,
    ) -> None:
        check_positive(page_size, "page_size")
        self.page_size = int(page_size)
        #: disable to ablate the prime-gap design choice.
        self.use_prime_gaps = use_prime_gaps
        self._states: dict[int, ClassSamplingState] = {}
        #: total gap-change events (each triggers cluster-wide resampling
        #: under the memoized backend; stateless backends treat it as a
        #: λ / threshold update generation).
        self.rate_changes = 0
        #: class_id -> current real gap; a precomputed table the hot
        #: profiling path reads instead of re-deriving gaps per access.
        self.gap_table: dict[int, int] = {}
        #: the pluggable decision scheme.
        self.backend: SamplingBackend = resolve_backend(backend).bind(self)
        #: True once :meth:`preseed` applied static-analysis rates.
        self.preseeded = False

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def state(self, jclass: JClass) -> ClassSamplingState:
        """Get (or lazily create) the class's sampling state."""
        st = self._states.get(jclass.class_id)
        if st is None:
            st = ClassSamplingState(jclass=jclass)
            self._states[jclass.class_id] = st
            self.gap_table[jclass.class_id] = st.real_gap
        return st

    def gap(self, jclass: JClass) -> int:
        """Current real (prime) sampling gap of a class."""
        return self.state(jclass).real_gap

    def expected_gap(self, jclass: JClass) -> int:
        """Mean object spacing between samples of a class under the
        active backend — the prime gap for divisibility/hash selection,
        the rounded inverse inclusion probability for Poisson."""
        return self.backend.expected_gap(self.state(jclass))

    def _sampling_unit_size(self, jclass: JClass) -> int:
        """Byte size of the sampling unit: the element for array classes
        (elements carry the sequence numbers), the instance otherwise."""
        return jclass.element_size if jclass.is_array else jclass.instance_size

    def nominal_gap_for_rate(self, jclass: JClass, rate: float | str) -> int:
        """Nominal gap realizing page-relative rate ``rate`` (``nX`` with
        ``n = rate``, or the string ``"full"``)."""
        if rate == FULL:
            return 1
        check_positive(rate, "sampling rate")
        unit = self._sampling_unit_size(jclass)
        nominal = int(self.page_size // (unit * rate))
        return max(nominal, 1)

    def set_rate(self, jclass: JClass, rate: float | str) -> bool:
        """Set a class's gap from a page-relative rate; returns True when
        the real gap changed (a cluster resampling pass is then due
        under the memoized backend; stateless backends just see a new
        λ / threshold through the gap)."""
        return self.set_nominal_gap(jclass, self.nominal_gap_for_rate(jclass, rate))

    def set_nominal_gap(self, jclass: JClass, nominal: int) -> bool:
        """Set a nominal gap directly; returns True if the real gap changed."""
        return self._realize_gap(self.state(jclass), nominal)

    def _realize_gap(self, st: ClassSamplingState, nominal: int) -> bool:
        """Clamp ``nominal`` to the class's min gap and realize it — the
        nearest prime normally, the nominal itself in the prime-gap
        ablation — updating epoch, history, the gap table, and the
        policy-wide change counter on an actual change."""
        check_positive(nominal, "nominal gap")
        nominal = max(nominal, st.min_gap)
        real = prime_gap_for_nominal(nominal) if self.use_prime_gaps else nominal
        changed = real != st.real_gap
        st.nominal_gap = nominal
        if changed:
            st.real_gap = real
            st.epoch += 1
            st.history.append(real)
            self.gap_table[st.jclass.class_id] = real
            self.rate_changes += 1
        return changed

    def set_rate_all(self, classes, rate: float | str) -> list[JClass]:
        """Apply one rate to many classes; returns classes whose gap changed."""
        changed = []
        for jclass in classes:
            if self.set_rate(jclass, rate):
                changed.append(jclass)
        return changed

    def preseed(self, rates: dict[str, float], classes) -> list[JClass]:
        """Pre-seed per-class rates from a static sharing analysis
        (``StaticReport.preseeds``): ``rates`` maps class *names* to
        page-relative rates, ``classes`` is the class iterable (e.g. the
        DJVM's :class:`~repro.core.model.ClassRegistry`).  Classes absent
        from ``rates`` keep their defaults.  Off by default — nothing in
        the runtime calls this; opting in replaces the cold-start uniform
        rate with the statically predicted sharing structure, so the
        adaptive controller starts its descent from a warmer point.
        Returns the classes whose gap actually changed."""
        by_name = {jclass.name: jclass for jclass in classes}
        changed = []
        for name in sorted(rates):
            jclass = by_name.get(name)
            if jclass is not None and self.set_rate(jclass, rates[name]):
                changed.append(jclass)
        self.preseeded = True
        return changed

    def set_min_gap(self, jclass: JClass, min_gap: int) -> None:
        """Lower-bound a class's gap (sticky-set footprinting's guard
        against runaway repeated-tracking cost).  Under stateless
        backends the clamp caps the inclusion probability at
        ``1/min_gap`` through the same gap realization."""
        check_positive(min_gap, "min_gap")
        st = self.state(jclass)
        st.min_gap = int(min_gap)
        if st.real_gap < st.min_gap:
            self.set_nominal_gap(jclass, st.min_gap)

    # ------------------------------------------------------------------
    # sampling decisions (delegated to the backend)
    # ------------------------------------------------------------------

    def decision(self, obj: HeapObject) -> tuple[bool, int, int]:
        """The full sampling decision for one object:
        ``(sampled, logged_bytes, scaled_bytes)``.

        Decisions are pure functions of the object's immutable identity
        (class, seq/id, length) and the class's current gap, delegated
        to the active :class:`SamplingBackend`.  The default memoized
        backend caches them per class keyed by the gap *epoch*: any gap
        change bumps :attr:`ClassSamplingState.epoch`, which invalidates
        the whole class cache on the next lookup, so between rate
        changes the hot profiling path pays one dict probe per object.
        """
        return self.backend.decide(obj)

    def decide_batch(self, objs) -> list[tuple[bool, int, int]]:
        """Vectorized :meth:`decision` over an iterable of objects, in
        input order (the backend's batch lane)."""
        return self.backend.decide_batch(objs)

    def is_sampled(self, obj: HeapObject) -> bool:
        """Is this object currently sampled?

        Scalars: sequence number divisible by the class gap.  Arrays:
        at least one element logically sampled (Fig. 3b).  Other
        backends substitute their own selection at the same rate.
        """
        return self.backend.decide(obj)[0]

    def logged_bytes(self, obj: HeapObject) -> int:
        """Bytes recorded in the OAL for one sampled object: the full
        instance size for scalars, the amortized sample size for arrays."""
        return self.backend.decide(obj)[1]

    def scaled_bytes(self, obj: HeapObject) -> int:
        """Horvitz-Thompson estimate this sample contributes: logged
        bytes times the gap (each sample stands for ``gap`` units), or
        the backend's equivalent inverse-probability weight."""
        return self.backend.decide(obj)[2]

    def effective_rate(self, jclass: JClass) -> float:
        """Realized samples-per-page for a class under its current gap."""
        unit = self._sampling_unit_size(jclass)
        return self.page_size / (unit * self.gap(jclass))

    def classes(self) -> list[ClassSamplingState]:
        """All per-class sampling states created so far."""
        return list(self._states.values())
