"""Class-level adaptive object sampling (paper Section II.B).

Every class carries its own *sampling gap*: an object is sampled iff its
per-class sequence number is divisible by the gap.  Nominal gaps are
powers of two; the **real** gap is the nearest prime (Section II.B.1) so
cyclic allocation patterns cannot alias with the gap.  Rates are
expressed page-relative as ``nX`` — "sample n objects per 4 KB page" —
so for a class of size ``s`` the nominal gap at rate ``nX`` is
``page_size / (s * n)``; classes at least a page large are therefore
always fully sampled at any rate (the reason SOR behaves as if fully
sampled throughout the paper's tables).

Sampled contributions are scaled by the gap (a Horvitz-Thompson
estimator): each sampled object stands for ``gap`` allocated peers, so
TCMs estimated at any rate are directly comparable with the
full-sampling reference — which is what the paper's accuracy formulas
(1)/(2) compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.array_sampling import amortized_sample_bytes, sampled_element_count
from repro.heap.jclass import JClass
from repro.heap.objects import HeapObject
from repro.util.primes import prime_gap_for_nominal
from repro.util.validation import check_positive

#: rate sentinel for full sampling.
FULL = "full"


@dataclass
class ClassSamplingState:
    """Per-class sampling metadata (the paper stores this "as close to
    subclasses as possible")."""

    jclass: JClass
    nominal_gap: int = 1
    real_gap: int = 1
    #: bumped on every gap change; lets caches detect staleness.
    epoch: int = 0
    #: lower bound on the gap (used by sticky-set footprinting).
    min_gap: int = 1
    history: list[int] = field(default_factory=list)
    #: epoch the memoized decisions below were computed under; any
    #: mismatch with ``epoch`` invalidates the whole cache.
    cache_epoch: int = -1
    #: obj_id -> (sampled, logged_bytes, scaled_bytes) memo, valid only
    #: while ``cache_epoch == epoch``.
    decisions: dict[int, tuple[bool, int, int]] = field(default_factory=dict)

    def set_nominal(self, nominal: int) -> bool:
        """Set a new nominal gap; returns True if the real gap changed."""
        check_positive(nominal, "nominal gap")
        nominal = max(nominal, self.min_gap)
        real = prime_gap_for_nominal(nominal)
        changed = real != self.real_gap
        self.nominal_gap = nominal
        if changed:
            self.real_gap = real
            self.epoch += 1
            self.history.append(real)
        return changed


class SamplingPolicy:
    """Cluster-wide sampling configuration: one gap per class."""

    def __init__(self, page_size: int = 4096, *, use_prime_gaps: bool = True) -> None:
        check_positive(page_size, "page_size")
        self.page_size = int(page_size)
        #: disable to ablate the prime-gap design choice.
        self.use_prime_gaps = use_prime_gaps
        self._states: dict[int, ClassSamplingState] = {}
        #: total gap-change events (each triggers cluster-wide resampling).
        self.rate_changes = 0
        #: class_id -> current real gap; a precomputed table the hot
        #: profiling path reads instead of re-deriving gaps per access.
        self.gap_table: dict[int, int] = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def state(self, jclass: JClass) -> ClassSamplingState:
        """Get (or lazily create) the class's sampling state."""
        st = self._states.get(jclass.class_id)
        if st is None:
            st = ClassSamplingState(jclass=jclass)
            self._states[jclass.class_id] = st
            self.gap_table[jclass.class_id] = st.real_gap
        return st

    def gap(self, jclass: JClass) -> int:
        """Current real (prime) sampling gap of a class."""
        return self.state(jclass).real_gap

    def _sampling_unit_size(self, jclass: JClass) -> int:
        """Byte size of the sampling unit: the element for array classes
        (elements carry the sequence numbers), the instance otherwise."""
        return jclass.element_size if jclass.is_array else jclass.instance_size

    def nominal_gap_for_rate(self, jclass: JClass, rate: float | str) -> int:
        """Nominal gap realizing page-relative rate ``rate`` (``nX`` with
        ``n = rate``, or the string ``"full"``)."""
        if rate == FULL:
            return 1
        check_positive(rate, "sampling rate")
        unit = self._sampling_unit_size(jclass)
        nominal = int(self.page_size // (unit * rate))
        return max(nominal, 1)

    def set_rate(self, jclass: JClass, rate: float | str) -> bool:
        """Set a class's gap from a page-relative rate; returns True when
        the real gap changed (a cluster resampling pass is then due)."""
        return self.set_nominal_gap(jclass, self.nominal_gap_for_rate(jclass, rate))

    def set_nominal_gap(self, jclass: JClass, nominal: int) -> bool:
        """Set a nominal gap directly; returns True if the real gap changed."""
        return self._realize_gap(self.state(jclass), nominal)

    def _realize_gap(self, st: ClassSamplingState, nominal: int) -> bool:
        """Clamp ``nominal`` to the class's min gap and realize it — the
        nearest prime normally, the nominal itself in the prime-gap
        ablation — updating epoch, history, the gap table, and the
        policy-wide change counter on an actual change."""
        check_positive(nominal, "nominal gap")
        nominal = max(nominal, st.min_gap)
        real = prime_gap_for_nominal(nominal) if self.use_prime_gaps else nominal
        changed = real != st.real_gap
        st.nominal_gap = nominal
        if changed:
            st.real_gap = real
            st.epoch += 1
            st.history.append(real)
            self.gap_table[st.jclass.class_id] = real
            self.rate_changes += 1
        return changed

    def set_rate_all(self, classes, rate: float | str) -> list[JClass]:
        """Apply one rate to many classes; returns classes whose gap changed."""
        changed = []
        for jclass in classes:
            if self.set_rate(jclass, rate):
                changed.append(jclass)
        return changed

    def set_min_gap(self, jclass: JClass, min_gap: int) -> None:
        """Lower-bound a class's gap (sticky-set footprinting's guard
        against runaway repeated-tracking cost)."""
        check_positive(min_gap, "min_gap")
        st = self.state(jclass)
        st.min_gap = int(min_gap)
        if st.real_gap < st.min_gap:
            self.set_nominal_gap(jclass, st.min_gap)

    # ------------------------------------------------------------------
    # sampling decisions
    # ------------------------------------------------------------------

    def decision(self, obj: HeapObject) -> tuple[bool, int, int]:
        """The full sampling decision for one object:
        ``(sampled, logged_bytes, scaled_bytes)``.

        Decisions are pure functions of the object's immutable identity
        (class, seq, length) and the class's current gap, so they are
        memoized per class and keyed by the gap *epoch*: any gap change
        bumps :attr:`ClassSamplingState.epoch`, which invalidates the
        whole class cache on the next lookup.  Between rate changes the
        hot profiling path therefore pays one dict probe per object.
        """
        st = self._states.get(obj.jclass.class_id)
        if st is None:
            st = self.state(obj.jclass)
        if st.cache_epoch != st.epoch:
            st.decisions.clear()
            st.cache_epoch = st.epoch
        cached = st.decisions.get(obj.obj_id)
        if cached is not None:
            return cached
        gap = st.real_gap
        if obj.is_array:
            if gap == 1:
                sampled = True
            else:
                sampled = sampled_element_count(obj.seq, obj.length, gap) > 0
            logged = amortized_sample_bytes(obj, gap)
        else:
            sampled = True if gap == 1 else obj.seq % gap == 0
            logged = obj.jclass.instance_size
        result = (sampled, logged, logged * gap)
        st.decisions[obj.obj_id] = result
        return result

    def decide_batch(self, objs) -> list[tuple[bool, int, int]]:
        """Vectorized :meth:`decision` over an iterable of objects.

        Hoists the per-class state lookup and epoch check out of the
        per-object loop: consecutive objects of the same class pay one
        dict probe each instead of two plus an attribute dance.  Returns
        decisions in input order; the per-class memo is shared with the
        scalar path, so mixing the two APIs stays coherent.
        """
        out: list[tuple[bool, int, int]] = []
        st = None
        class_id = -1
        decisions: dict[int, tuple[bool, int, int]] = {}
        for obj in objs:
            cid = obj.jclass.class_id
            if cid != class_id:
                st = self._states.get(cid)
                if st is None:
                    st = self.state(obj.jclass)
                if st.cache_epoch != st.epoch:
                    st.decisions.clear()
                    st.cache_epoch = st.epoch
                decisions = st.decisions
                class_id = cid
            cached = decisions.get(obj.obj_id)
            if cached is None:
                cached = self.decision(obj)
            out.append(cached)
        return out

    def is_sampled(self, obj: HeapObject) -> bool:
        """Is this object currently sampled?

        Scalars: sequence number divisible by the class gap.  Arrays:
        at least one element logically sampled (Fig. 3b).
        """
        return self.decision(obj)[0]

    def logged_bytes(self, obj: HeapObject) -> int:
        """Bytes recorded in the OAL for one sampled object: the full
        instance size for scalars, the amortized sample size for arrays."""
        return self.decision(obj)[1]

    def scaled_bytes(self, obj: HeapObject) -> int:
        """Horvitz-Thompson estimate this sample contributes: logged
        bytes times the gap (each sample stands for ``gap`` units)."""
        return self.decision(obj)[2]

    def effective_rate(self, jclass: JClass) -> float:
        """Realized samples-per-page for a class under its current gap."""
        unit = self._sampling_unit_size(jclass)
        return self.page_size / (unit * self.gap(jclass))

    def classes(self) -> list[ClassSamplingState]:
        """All per-class sampling states created so far."""
        return list(self._states.values())
