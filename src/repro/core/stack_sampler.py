"""Adaptive stack sampling (paper Section III.B, Fig. 8).

Takes periodic snapshots of a thread's Java stack to find
**stack-invariant references** — slots that keep pointing at the same
object across samples.  Those references are the likely entry points of
the thread's sticky set (a linked list's head, a tree's root, ...).

All four of the paper's optimizations are implemented:

1. **Timer-based sampling** — the sampler fires only when the owning
   thread's simulated clock passes the sampling gap (4-16 ms).
2. **Two-phase stack scanning** — top-down until the first *visited*
   frame (everything below is untouched since its last sample because
   only the top frame executes), then bottom-up over the unvisited
   frames, marking them visited and capturing first samples.
3. **Lazy extraction** — a frame's first sample is kept in cheap "raw"
   form; slot extraction (reflection + layout decode + GC pointer check,
   the expensive part) is deferred until the frame survives to a second
   visit.  Frames that die young — almost all of them — never pay it.
4. **Comparison by probing** — an old sample probes the live frame slot
   by slot; mismatched slots are *removed from the old sample*, so
   comparisons shrink monotonically and frequently-visited frames get
   cheaper to compare over time.  Surviving slots are the invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.stack import Frame
from repro.runtime.thread import SimThread
from repro.sim.costs import CostModel

NS_PER_MS = 1_000_000


@dataclass
class FrameSample:
    """Stored sample of one frame activation."""

    frame_uid: int
    method: str
    #: raw samples defer extraction: slots is then the full slot snapshot
    #: (all slots, unexamined); extracted samples keep only candidate
    #: invariant reference slots.
    raw: bool
    slots: dict[int, int | None] = field(default_factory=dict)
    #: how many probing comparisons this sample has survived.
    comparisons: int = 0


class StackSampler:
    """Timer-driven stack sampler for every thread it observes."""

    def __init__(
        self,
        costs: CostModel,
        *,
        gap_ms: float = 16.0,
        lazy: bool = True,
        enabled: bool = True,
    ) -> None:
        if gap_ms <= 0:
            raise ValueError(f"sampling gap must be > 0 ms, got {gap_ms}")
        self.costs = costs
        self.gap_ns = int(gap_ms * NS_PER_MS)
        #: lazy extraction on first visit (the paper's optimization 3);
        #: False reproduces the "Immediate Extraction" baseline column.
        self.lazy = lazy
        self.enabled = enabled
        #: thread_id -> frame_uid -> FrameSample.
        self._samples: dict[int, dict[int, FrameSample]] = {}
        #: thread_id -> next fire time (ns).
        self._next_fire: dict[int, int] = {}
        self.samples_taken = 0
        self.frames_extracted = 0
        self.frames_raw_captured = 0

    # ------------------------------------------------------------------
    # TimerHook interface
    # ------------------------------------------------------------------

    def maybe_fire(self, thread: SimThread) -> None:
        """TimerHook: fire if the thread's clock passed the next deadline."""
        if not self.enabled:
            return
        now = thread.clock.now_ns
        nxt = self._next_fire.get(thread.thread_id)
        if nxt is None:
            self._next_fire[thread.thread_id] = now + self.gap_ns
            return
        if now < nxt:
            return
        # One sample per deadline passed (no catch-up storm after long ops).
        self._next_fire[thread.thread_id] = now + self.gap_ns
        self.sample_stack(thread)

    def next_fire_ns(self, thread: SimThread) -> int:
        """Absolute deadline of the next fire for ``thread`` (ns).

        Deadline API for the event kernel's fast path: the interpreter
        compares the running thread's clock against the minimum deadline
        instead of calling :meth:`maybe_fire` after every op.  Returns 0
        while the thread's deadline is uninitialized (forcing one poll,
        which initializes it exactly like the legacy first call did) and
        a far-future sentinel when sampling is disabled.
        """
        if not self.enabled:
            return 1 << 62
        nxt = self._next_fire.get(thread.thread_id)
        return 0 if nxt is None else nxt

    # ------------------------------------------------------------------
    # SAMPLE-STACK (Fig. 8)
    # ------------------------------------------------------------------

    def sample_stack(self, thread: SimThread) -> None:
        """Take one stack sample of ``thread``."""
        samples = self._samples.setdefault(thread.thread_id, {})
        costs = self.costs
        stack = thread.stack
        if len(stack) == 0:
            return
        self.samples_taken += 1

        # --- top-down phase: walk until the first visited frame ---------
        walk_cost = 0
        first_visited: Frame | None = None
        unvisited: list[Frame] = []
        for frame in stack.frames_top_down():
            walk_cost += costs.frame_walk_ns
            if frame.visited:
                first_visited = frame
                break
            unvisited.append(frame)

        # --- process the first visited frame ----------------------------
        if first_visited is not None:
            old = samples.get(first_visited.frame_uid)
            if old is None:
                # The visited flag survived from an activation whose
                # sample was discarded; re-capture below as if unvisited.
                unvisited.append(first_visited)
            else:
                if old.raw:
                    # CONVERT-RAW-SAMPLE: extract the deferred content.
                    walk_cost += len(old.slots) * costs.extract_ns_per_slot
                    old.raw = False
                    self.frames_extracted += 1
                    # Non-reference slots are discarded at extraction.
                    old.slots = {i: v for i, v in old.slots.items() if v is not None}  # simlint: disable=SIM003 (hot path; slot dicts are keyed and built in slot-index order)
                # COMPARE-BY-PROBING: probe old slots into the live frame.
                walk_cost += len(old.slots) * costs.probe_ns_per_slot
                dead = [  # simlint: disable=SIM003 (hot path; slot dicts are keyed and built in slot-index order)
                    idx
                    for idx, ref in old.slots.items()
                    if idx >= len(first_visited.slots) or first_visited.slots[idx] != ref
                ]
                for idx in dead:
                    del old.slots[idx]
                old.comparisons += 1

        # --- bottom-up phase: first samples for the unvisited frames ----
        for frame in reversed(unvisited):
            frame.visited = True
            snapshot = {i: v for i, v in enumerate(frame.slots)}
            if self.lazy:
                walk_cost += len(snapshot) * costs.raw_capture_ns_per_slot
                samples[frame.frame_uid] = FrameSample(
                    frame.frame_uid, frame.method, raw=True, slots=snapshot
                )
                self.frames_raw_captured += 1
            else:
                # Immediate extraction: pay the full cost now.
                walk_cost += len(snapshot) * costs.extract_ns_per_slot
                refs = {i: v for i, v in snapshot.items() if v is not None}  # simlint: disable=SIM003 (hot path; snapshot is keyed and built in slot-index order)
                samples[frame.frame_uid] = FrameSample(
                    frame.frame_uid, frame.method, raw=False, slots=refs
                )
                self.frames_extracted += 1

        # --- discard samples of dead frames ------------------------------
        live_uids = {f.frame_uid for f in stack}
        dead_uids = [uid for uid in samples if uid not in live_uids]
        for uid in dead_uids:
            del samples[uid]

        thread.cpu.stack_sampling_ns += walk_cost
        thread.clock.advance(walk_cost)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def samples_for(self, thread_id: int) -> dict[int, FrameSample]:
        """Current per-frame samples of one thread (live frames only)."""
        return dict(self._samples.get(thread_id, {}))

    def invariant_refs(self, thread: SimThread, *, min_comparisons: int = 1) -> list[int]:
        """Stack-invariant object references for a thread, ordered from
        the **topmost** frame down (the paper's resolution heuristic:
        topmost invariants are the most recent), deduplicated."""
        samples = self._samples.get(thread.thread_id, {})
        ordered: list[int] = []
        seen: set[int] = set()
        for frame in thread.stack.frames_top_down():
            sample = samples.get(frame.frame_uid)
            if sample is None or sample.raw or sample.comparisons < min_comparisons:
                continue
            for idx in sorted(sample.slots):
                ref = sample.slots[idx]
                if ref is not None and ref not in seen:
                    seen.add(ref)
                    ordered.append(ref)
        return ordered
