"""Thread correlation map (TCM) construction.

The TCM is an N x N histogram: cell (i, j) accumulates the bytes of
objects both thread i and thread j accessed (paper Section II.A).  The
master's daemon reorganizes per-thread OALs into per-object thread
lists, then accrues each object's bytes into every co-accessing thread
pair — O(MN) reorganization plus O(MN^2) accrual, the scalability
bottleneck sampling attacks.

The builder is vectorized per the hpc guides: with an (M x N) indicator
matrix ``X`` of co-access and the per-object byte vector ``s``, the
accrual is one rank-M update ``TCM += (X * s).T @ X`` instead of a
Python triple loop.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.oal import OALBatch


def build_tcm(
    entries: Iterable[tuple[int, int, float]],
    n_threads: int,
    *,
    include_diagonal: bool = False,
) -> np.ndarray:
    """Build a TCM from (thread_id, object_id, bytes) tuples.

    Each distinct (thread, object) pair contributes once with the
    *maximum* bytes seen for it (re-accesses across intervals do not
    multiply an object's size into the map; the histogram accrues per
    processing window, and callers wanting per-window accrual call this
    once per window and sum).
    """
    if n_threads < 1:
        raise ValueError(f"need at least one thread, got {n_threads}")
    per_pair: dict[tuple[int, int], float] = {}
    obj_index: dict[int, int] = {}
    for tid, oid, size in entries:
        if not 0 <= tid < n_threads:
            raise ValueError(f"thread id {tid} out of range 0..{n_threads - 1}")
        if oid not in obj_index:
            obj_index[oid] = len(obj_index)
        key = (obj_index[oid], tid)
        prev = per_pair.get(key)
        if prev is None or size > prev:
            per_pair[key] = float(size)
    n_objects = len(obj_index)
    tcm = np.zeros((n_threads, n_threads), dtype=np.float64)
    if n_objects == 0:
        return tcm
    bytes_mat = np.zeros((n_objects, n_threads), dtype=np.float64)
    for (row, tid), size in per_pair.items():
        bytes_mat[row, tid] = size
    # An object's size is logged identically by every accessor (the
    # amortized sample size is a property of the object, not the thread),
    # so take the row-wise max as the object's byte weight.
    sizes = bytes_mat.max(axis=1)
    indicator = (bytes_mat > 0).astype(np.float64)
    tcm = (indicator * sizes[:, None]).T @ indicator
    if not include_diagonal:
        np.fill_diagonal(tcm, 0.0)
    return tcm


def tcm_from_batches(
    batches: Iterable[OALBatch],
    n_threads: int,
    *,
    include_diagonal: bool = False,
) -> np.ndarray:
    """Build a TCM from collected OAL batches (one processing window)."""
    def gen():
        for batch in batches:
            for entry in batch.entries:
                yield batch.thread_id, entry.obj_id, entry.scaled_bytes

    return build_tcm(gen(), n_threads, include_diagonal=include_diagonal)


def tcm_by_class(
    batches: Iterable[OALBatch],
    n_threads: int,
    *,
    include_diagonal: bool = False,
) -> dict[int, np.ndarray]:
    """Per-class TCMs from one window's batches: class_id -> map built
    from only that class's entries.  The full map is their sum; per-class
    maps are what per-class rate adaptation compares across windows."""
    by_class: dict[int, list[tuple[int, int, float]]] = {}
    for batch in batches:
        for entry in batch.entries:
            by_class.setdefault(entry.class_id, []).append(
                (batch.thread_id, entry.obj_id, entry.scaled_bytes)
            )
    return {
        cid: build_tcm(entries, n_threads, include_diagonal=include_diagonal)
        for cid, entries in by_class.items()
    }


def accrual_pair_count(batches: Iterable[OALBatch]) -> int:
    """Number of (object, thread-pair) accrual steps the naive O(MN^2)
    daemon would execute — the quantity the TCM-computing cost model
    charges for."""
    threads_per_obj: dict[int, set[int]] = {}
    for batch in batches:
        for entry in batch.entries:
            threads_per_obj.setdefault(entry.obj_id, set()).add(batch.thread_id)
    return sum(len(ts) * len(ts) for ts in threads_per_obj.values())


def normalize_tcm(tcm: np.ndarray) -> np.ndarray:
    """Scale a TCM so its maximum cell is 1 (for heatmap rendering)."""
    peak = tcm.max()
    if peak <= 0:
        return np.zeros_like(tcm)
    return tcm / peak
