"""Thread correlation map (TCM) construction.

The TCM is an N x N histogram: cell (i, j) accumulates the bytes of
objects both thread i and thread j accessed (paper Section II.A).  The
master's daemon reorganizes per-thread OALs into per-object thread
lists, then accrues each object's bytes into every co-accessing thread
pair — O(MN) reorganization plus O(MN^2) accrual, the scalability
bottleneck sampling attacks.

The builder is vectorized per the hpc guides: with an (M x N) indicator
matrix ``X`` of co-access and the per-object byte vector ``s``, the
accrual is one rank-M update ``TCM += (X * s).T @ X`` instead of a
Python triple loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Iterable

import numpy as np

from repro.core.oal import OALBatch


def _tcm_from_arrays(
    tids: np.ndarray,
    oids: np.ndarray,
    sizes: np.ndarray,
    n_threads: int,
    include_diagonal: bool,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Vectorized TCM core over parallel entry arrays.

    Returns ``(tcm, rows, n_objects)`` where ``rows`` maps each entry to
    its dense object row in first-occurrence order (the order the old
    dict-of-pairs pass produced, kept so the accrual matmul sums rows in
    the identical sequence).
    """
    tcm = np.zeros((n_threads, n_threads), dtype=np.float64)
    if tids.size == 0:
        return tcm, tids, 0
    bad = (tids < 0) | (tids >= n_threads)
    if bad.any():
        tid = int(tids[int(np.argmax(bad))])
        raise ValueError(f"thread id {tid} out of range 0..{n_threads - 1}")
    uniq, first_idx, inv = np.unique(oids, return_index=True, return_inverse=True)
    n_objects = int(uniq.size)
    # np.unique sorts by object id; re-rank rows by first occurrence.
    rank = np.empty(n_objects, dtype=np.int64)
    rank[np.argsort(first_idx, kind="stable")] = np.arange(n_objects)
    rows = rank[inv]
    bytes_mat = np.zeros((n_objects, n_threads), dtype=np.float64)
    np.maximum.at(bytes_mat, (rows, tids), sizes)
    # An object's size is logged identically by every accessor (the
    # amortized sample size is a property of the object, not the thread),
    # so take the row-wise max as the object's byte weight.
    obj_sizes = bytes_mat.max(axis=1)
    indicator = (bytes_mat > 0).astype(np.float64)
    tcm = (indicator * obj_sizes[:, None]).T @ indicator
    if not include_diagonal:
        np.fill_diagonal(tcm, 0.0)
    return tcm, rows, n_objects


def _entry_arrays(
    entries: Iterable[tuple[int, int, float]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode (thread_id, object_id, bytes) tuples into parallel arrays
    with a single buffered pass (no per-entry Python bookkeeping)."""
    flat = np.fromiter(chain.from_iterable(entries), dtype=np.float64)
    if flat.size % 3:
        raise ValueError("entries must be (thread_id, object_id, bytes) triples")
    arr = flat.reshape(-1, 3)
    return (
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        arr[:, 2],
    )


def _batch_arrays(
    batches: Iterable[OALBatch],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Decode OAL batches into parallel (tids, oids, sizes, class_ids)
    arrays with a single buffered pass over all entries."""
    def gen():
        for batch in batches:
            tid = batch.thread_id
            for entry in batch.entries:
                yield tid
                yield entry.obj_id
                yield entry.scaled_bytes
                yield entry.class_id

    flat = np.fromiter(gen(), dtype=np.float64)
    arr = flat.reshape(-1, 4)
    return (
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        arr[:, 2],
        arr[:, 3].astype(np.int64),
    )


def build_tcm(
    entries: Iterable[tuple[int, int, float]],
    n_threads: int,
    *,
    include_diagonal: bool = False,
) -> np.ndarray:
    """Build a TCM from (thread_id, object_id, bytes) tuples.

    Each distinct (thread, object) pair contributes once with the
    *maximum* bytes seen for it (re-accesses across intervals do not
    multiply an object's size into the map; the histogram accrues per
    processing window, and callers wanting per-window accrual call this
    once per window and sum).
    """
    if n_threads < 1:
        raise ValueError(f"need at least one thread, got {n_threads}")
    tids, oids, sizes = _entry_arrays(entries)
    tcm, _rows, _n = _tcm_from_arrays(tids, oids, sizes, n_threads, include_diagonal)
    return tcm


def tcm_from_batches(
    batches: Iterable[OALBatch],
    n_threads: int,
    *,
    include_diagonal: bool = False,
) -> np.ndarray:
    """Build a TCM from collected OAL batches (one processing window)."""
    if n_threads < 1:
        raise ValueError(f"need at least one thread, got {n_threads}")
    tids, oids, sizes, _cids = _batch_arrays(batches)
    tcm, _rows, _n = _tcm_from_arrays(tids, oids, sizes, n_threads, include_diagonal)
    return tcm


def _per_class_tcms(
    tids: np.ndarray,
    oids: np.ndarray,
    sizes: np.ndarray,
    cids: np.ndarray,
    n_threads: int,
    include_diagonal: bool,
) -> dict[int, np.ndarray]:
    """Per-class TCMs keyed in first-appearance order of the class ids."""
    by_class: dict[int, np.ndarray] = {}
    if cids.size == 0:
        return by_class
    uniq, first_idx = np.unique(cids, return_index=True)
    for cid in uniq[np.argsort(first_idx, kind="stable")]:
        mask = cids == cid
        tcm, _rows, _n = _tcm_from_arrays(
            tids[mask], oids[mask], sizes[mask], n_threads, include_diagonal
        )
        by_class[int(cid)] = tcm
    return by_class


def tcm_by_class(
    batches: Iterable[OALBatch],
    n_threads: int,
    *,
    include_diagonal: bool = False,
) -> dict[int, np.ndarray]:
    """Per-class TCMs from one window's batches: class_id -> map built
    from only that class's entries.  The full map is their sum; per-class
    maps are what per-class rate adaptation compares across windows."""
    tids, oids, sizes, cids = _batch_arrays(batches)
    return _per_class_tcms(tids, oids, sizes, cids, n_threads, include_diagonal)


def accrual_pair_count(batches: Iterable[OALBatch]) -> int:
    """Number of (object, thread-pair) accrual steps the naive O(MN^2)
    daemon would execute — the quantity the TCM-computing cost model
    charges for."""
    threads_per_obj: dict[int, set[int]] = {}
    for batch in batches:
        for entry in batch.entries:
            threads_per_obj.setdefault(entry.obj_id, set()).add(batch.thread_id)
    return sum(len(ts) * len(ts) for ts in threads_per_obj.values())  # simlint: disable=SIM003 (integer sum; order cannot leak)


@dataclass
class WindowAccrual:
    """Everything the collector needs from one processing window,
    computed in a single traversal of the window's batches."""

    #: the window's TCM.
    tcm: np.ndarray
    #: naive-daemon accrual steps (drives the O3 cost model).
    pair_count: int
    #: OAL entries in the window (drives the reorganization cost).
    n_entries: int
    #: class_id -> per-class TCM (only when requested).
    class_tcms: dict[int, np.ndarray] | None = None


def window_accrual(
    batches: Iterable[OALBatch],
    n_threads: int,
    *,
    per_class: bool = False,
    include_diagonal: bool = False,
) -> WindowAccrual:
    """Fold one window's batches into TCM + accrual statistics at once.

    Replaces the collector's separate ``accrual_pair_count`` +
    ``tcm_from_batches`` (+ optional ``tcm_by_class``) traversals with
    one decode pass and shared index arrays.
    """
    if n_threads < 1:
        raise ValueError(f"need at least one thread, got {n_threads}")
    if not isinstance(batches, (list, tuple)):
        batches = list(batches)
    tids, oids, sizes, cids = _batch_arrays(batches)
    tcm, rows, n_objects = _tcm_from_arrays(
        tids, oids, sizes, n_threads, include_diagonal
    )
    if n_objects == 0:
        pair_count = 0
    else:
        # Distinct (object, thread) pairs, bucketed per object: the
        # naive daemon accrues |threads(obj)|^2 steps per object.
        pair_keys = np.unique(rows * np.int64(n_threads) + tids)
        per_obj = np.bincount(pair_keys // n_threads, minlength=n_objects)
        pair_count = int((per_obj.astype(np.int64) ** 2).sum())
    class_tcms = (
        _per_class_tcms(tids, oids, sizes, cids, n_threads, include_diagonal)
        if per_class
        else None
    )
    return WindowAccrual(
        tcm=tcm,
        pair_count=pair_count,
        n_entries=int(tids.size),
        class_tcms=class_tcms,
    )


def normalize_tcm(tcm: np.ndarray) -> np.ndarray:
    """Scale a TCM so its maximum cell is 1 (for heatmap rendering)."""
    peak = tcm.max()
    if peak <= 0:
        return np.zeros_like(tcm)
    return tcm / peak
