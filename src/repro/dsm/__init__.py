"""Distributed-shared-memory substrate: object coherence states, HLRC
interval bookkeeping, the home-based lazy release consistency protocol
engine, distributed locks/barriers, and the page-based DSM baseline used
to reproduce the false-sharing comparison of Fig. 1."""

from repro.dsm.states import CopyRecord, RealState
from repro.dsm.intervals import IntervalRecord
from repro.dsm.sync import Barrier, DistributedLock, SyncRegistry
from repro.dsm.hlrc import HomeBasedLRC
from repro.dsm.pagedsm import PageGrainTracker
from repro.dsm.homemigration import DominantWriterPolicy, HomeMigrationEngine

__all__ = [
    "CopyRecord",
    "RealState",
    "IntervalRecord",
    "Barrier",
    "DistributedLock",
    "SyncRegistry",
    "HomeBasedLRC",
    "PageGrainTracker",
    "DominantWriterPolicy",
    "HomeMigrationEngine",
]
