"""Home-based lazy release consistency (HLRC) protocol engine.

This is the global object space (GOS) of the simulated DJVM.  Key
behaviours mirrored from JESSICA2 / the HLRC literature (Zhou, Iftode &
Li, OSDI'96), at *object* granularity:

* Every shared object has a **home node** (its creator).  Other nodes
  hold **cache copies** faulted in on demand.
* Execution is divided into **intervals** delimited by synchronization
  (acquire / release / barrier).
* A write to a cache copy creates a **twin** (first write per interval)
  and accumulates dirty bytes; at release/barrier the **diff** is sent
  to the home, which bumps the object's version and publishes a **write
  notice**.
* At acquire/barrier, a node applies outstanding write notices and
  invalidates stale cache copies; the next access faults the fresh copy
  from home.
* **At-most-once property**: within an interval, coherence work per
  object happens at most once — the property the paper's profiler
  exploits to bound logging cost.

Profiler integration: the engine accepts *hooks* (see
:class:`ProtocolHooks`) invoked on interval open/close and on each
access op.  Hooks do their own cost accounting into the thread's CPU
buckets, so overhead experiments can attribute every nanosecond.

Scheduling approximation: threads run between sync points without
preemption (legal under LRC, where remote writes become visible only at
synchronization), and the interpreter always resumes the runnable thread
with the smallest simulated clock.
"""

from __future__ import annotations

from typing import Protocol

from repro.dsm.intervals import AccessSummary, IntervalRecord
from repro.dsm.states import CopyRecord, RealState
from repro.dsm.sync import SyncRegistry
from repro.heap.heap import GlobalObjectSpace, LocalHeap
from repro.heap.objects import HeapObject
from repro.obs.metrics import MetricsRegistry
from repro.sim.cluster import Cluster
from repro.sim.network import MessageKind


class ProtocolHooks(Protocol):
    """Interface a profiler implements to observe the protocol."""

    def on_interval_open(self, thread) -> None:
        """A new HLRC interval just opened for ``thread``."""
        ...

    def on_access(
        self,
        thread,
        obj: HeapObject,
        *,
        is_write: bool,
        n_elems: int,
        elem_off: int,
        repeat: int,
        real_fault: bool,
    ) -> None:
        """One access op executed by ``thread`` on ``obj``."""
        ...

    def on_interval_close(self, thread, interval: IntervalRecord, sync_dst: int | None) -> None:
        """``thread`` closed ``interval`` (sync_dst = manager node, if any)."""
        ...


#: coherence states hoisted to module level for the access fast path.
_HOME = RealState.HOME
_VALID = RealState.VALID
_INVALID = RealState.INVALID

#: nullable observer slots on the engine, in attach order.  Every slot
#: shares one contract: the observer only *reads* simulated state and
#: writes its own — it never advances a simulated clock, charges CPU or
#: sends a message — so results are byte-identical with it attached
#: (certified by the EFF1xx purity gate; see repro.checks.effects).
#: sanitizer: protocol invariant checker (repro.checks.sanitizer).
#: racedetector: happens-before race detector (repro.checks.racedetect).
#: tracer: span tracer (repro.obs.tracing).
#: objprof: object-centric inefficiency profiler (repro.obs.objprof).
OBSERVER_SLOTS = ("sanitizer", "racedetector", "tracer", "objprof")

#: request/reply/control message payload sizes (bytes).
FETCH_REQ_BYTES = 16
FETCH_REPLY_OVERHEAD = 16
DIFF_OVERHEAD = 24
LOCK_MSG_BYTES = 32
BARRIER_MSG_BYTES = 32
NOTICE_BYTES = 8


class HomeBasedLRC:
    """The GOS protocol engine shared by all threads of one DJVM."""

    def __init__(
        self,
        gos: GlobalObjectSpace,
        cluster: Cluster,
        *,
        keep_interval_history: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.gos = gos
        self.cluster = cluster
        self.costs = cluster.costs
        self.network = cluster.network
        self.sync = SyncRegistry(master_node=cluster.master_id)
        self.heaps: dict[int, LocalHeap] = {}
        for node in cluster.nodes:
            heap = LocalHeap(node.node_id)
            node.heap = heap
            self.heaps[node.node_id] = heap
        # Hot-path aliases (the cost model is frozen and the heap/GOS
        # containers are mutated in place, never replaced).
        self._objects = gos._objects
        self._copies_by_node = {nid: heap.copies for nid, heap in sorted(self.heaps.items())}
        self._access_busy_ns = self.costs.state_check_ns + self.costs.access_ns
        #: global write-notice log: list of (obj_id, version).
        self.notices: list[tuple[int, int]] = []
        #: per-node index of the first unseen notice.
        self._notice_seen: dict[int, int] = {n.node_id: 0 for n in cluster.nodes}
        # Memoized (start, end, {obj_id: newest_version}) fold of the
        # notice range last applied — shared by every node draining the
        # same range at a barrier.
        self._latest_notices: tuple[int, int, dict[int, int]] | None = None
        self.hooks: list[ProtocolHooks] = []
        # Single-hook fast dispatch: when exactly one hook is attached
        # and it exposes ``fast_on_access`` (positional form), accesses
        # call it directly instead of the keyword fan-out.
        self._fast_src: ProtocolHooks | None = None
        self._fast_log = None
        # Companion cache for the vector engine's decide_batch lane: the
        # hook's ``prime_batch`` when it advertises ``wants_batch_prime``
        # (stateless sampling backends), else None.  Resolved together
        # with ``_fast_log`` so both caches always describe ``_fast_src``.
        self._fast_prime = None
        # Nullable observer slots (see OBSERVER_SLOTS): all None until
        # attach_observer wires one; hot paths check with `is not None`.
        for slot in OBSERVER_SLOTS:
            setattr(self, slot, None)
        #: optional connectivity prefetcher consulted at fault time
        #: (anything with ``bundle_for(thread, obj) -> list[HeapObject]``).
        #: NOT an observer slot — prefetching changes protocol behaviour.
        self.prefetcher = None
        self.keep_interval_history = keep_interval_history
        #: thread_id -> list of closed IntervalRecords (only when history kept).
        self.interval_history: dict[int, list[IntervalRecord]] = {}
        # Protocol event counters live in the metrics registry; the
        # engine keeps bound Counter handles so an increment on the
        # protocol path is a single attribute add.  Without an external
        # registry (no telemetry configured) a private one is used —
        # results always carry the counters either way.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._c_faults = self.metrics.counter(
            "hlrc_faults_total", "remote object faults (fetch round trips)"
        )
        self._c_invalidations = self.metrics.counter(
            "hlrc_invalidations_total", "cache copies invalidated by write notices"
        )
        self._c_diffs = self.metrics.counter(
            "hlrc_diffs_total", "diffs flushed to home nodes"
        )
        self._c_notices = self.metrics.counter(
            "hlrc_notices_total", "write notices published"
        )
        self._c_intervals = self.metrics.counter(
            "hlrc_intervals_total", "HLRC intervals closed"
        )

    @property
    def counters(self) -> dict[str, int]:
        """Legacy view of the protocol counters (the metrics registry is
        the source of truth; key order matches the historical dict so
        downstream checksums are stable)."""
        return {
            "faults": self._c_faults.value,
            "invalidations": self._c_invalidations.value,
            "diffs": self._c_diffs.value,
            "notices": self._c_notices.value,
            "intervals": self._c_intervals.value,
        }

    # ------------------------------------------------------------------
    # observer slots
    # ------------------------------------------------------------------

    def attach_observer(self, slot: str, observer) -> None:
        """Wire a pure observer into one of :data:`OBSERVER_SLOTS`.

        One attach point instead of per-slot assignment boilerplate; the
        slots stay plain attributes, so the hot paths' single
        ``is not None`` check (and the access path's single-hook fast
        dispatch) are untouched.  Attaching over an occupied slot is a
        wiring bug and is rejected."""
        if slot not in OBSERVER_SLOTS:
            raise ValueError(f"unknown observer slot {slot!r}; expected one of {OBSERVER_SLOTS}")
        if observer is None:
            raise ValueError(f"cannot attach None to observer slot {slot!r}; use detach_observer")
        if getattr(self, slot) is not None:
            raise ValueError(f"observer slot {slot!r} is already attached")
        setattr(self, slot, observer)

    def detach_observer(self, slot: str):
        """Clear one observer slot; returns the detached observer (or
        None when the slot was empty)."""
        if slot not in OBSERVER_SLOTS:
            raise ValueError(f"unknown observer slot {slot!r}; expected one of {OBSERVER_SLOTS}")
        observer = getattr(self, slot)
        setattr(self, slot, None)
        return observer

    # ------------------------------------------------------------------
    # copies & faults
    # ------------------------------------------------------------------

    def _ensure_copy(self, thread, obj: HeapObject) -> tuple[CopyRecord, bool]:
        """Make the object's copy on the thread's node accessible;
        returns (record, faulted)."""
        node_id = thread.node_id
        record: CopyRecord | None = self.heaps[node_id].copies.get(obj.obj_id)
        if record is not None and record.real_state is not RealState.INVALID:
            return record, False
        if obj.home_node == node_id:
            # Home copies materialize lazily and are always current.
            if record is None:
                record = CopyRecord(obj.obj_id, RealState.HOME)
                self.heaps[node_id].copies[obj.obj_id] = record
                return record, False
            # A home copy can never be INVALID.
            return record, False
        return self._fault_remote(thread, obj, record), True

    def _fault_remote(self, thread, obj: HeapObject, record: CopyRecord | None) -> CopyRecord:
        """Fault a remotely-homed object in: trap + request/reply round
        trip to the home (optionally bundling prefetched objects)."""
        node_id = thread.node_id
        heap = self.heaps[node_id]
        costs = self.costs
        clock = thread.clock
        cpu = thread.cpu
        refault = record is not None  # an invalidated copy is being replaced
        fault_begin_ns = clock._now_ns
        cpu.protocol_ns += costs.gos_trap_ns
        clock._now_ns += costs.gos_trap_ns

        # Connectivity prefetching (inter-object affinity): bundle
        # hot-path successors homed at the same node into the reply —
        # one round trip, bigger payload, fewer future faults.
        bundle: list[HeapObject] = []
        if self.prefetcher is not None:
            for extra in self.prefetcher.bundle_for(thread, obj):
                if extra.home_node != obj.home_node:
                    continue  # a different home cannot ride this reply
                existing: CopyRecord | None = heap.get(extra.obj_id)  # type: ignore[assignment]
                if existing is not None and existing.real_state is not RealState.INVALID:
                    continue
                bundle.append(extra)

        now = clock._now_ns
        reply_bytes = obj.size_bytes + FETCH_REPLY_OVERHEAD
        if bundle:
            reply_bytes += sum(o.size_bytes + FETCH_REPLY_OVERHEAD for o in bundle)
        send = self.network.send
        wait = send(MessageKind.OBJECT_FETCH_REQ, node_id, obj.home_node, FETCH_REQ_BYTES, now)
        wait += send(
            MessageKind.OBJECT_FETCH_DATA,
            obj.home_node,
            node_id,
            reply_bytes,
            now + wait,
        )
        cpu.network_wait_ns += wait
        clock._now_ns += wait
        if record is None:
            record = CopyRecord(obj.obj_id, RealState.VALID, fetched_version=obj.home_version)
            heap.copies[obj.obj_id] = record
        else:
            record.real_state = RealState.VALID
            record.fetched_version = obj.home_version
        for extra in bundle:
            existing = heap.get(extra.obj_id)  # type: ignore[assignment]
            if existing is None:
                heap.put(
                    extra.obj_id,
                    CopyRecord(
                        extra.obj_id, RealState.VALID, fetched_version=extra.home_version
                    ),
                )
            else:
                existing.real_state = RealState.VALID
                existing.fetched_version = extra.home_version
        self._c_faults.inc()
        if self.tracer is not None:
            self.tracer.fault(thread, obj.obj_id, fault_begin_ns, clock._now_ns, 1 + len(bundle))
        if self.objprof is not None:
            self.objprof.on_fault(thread, obj, refault)
        return record

    # ------------------------------------------------------------------
    # access fast path
    # ------------------------------------------------------------------

    def access(
        self,
        thread,
        obj_id: int,
        is_write: bool = False,
        n_elems: int = 1,
        repeat: int = 1,
        elem_off: int = 0,
    ) -> None:
        """Execute ``repeat`` accesses touching ``n_elems`` distinct
        elements of one object (the interpreter's READ/WRITE op).

        This is the protocol's per-op fast path: the common valid-copy /
        home-copy case resolves with one dict probe on the node's local
        heap (no wrapper calls, no fault machinery), the interval touch
        is inlined, and hook fan-out is skipped when no profiler is
        attached.
        """
        clock = thread.clock
        cpu = thread.cpu
        # JIT-inlined state check + the access itself, paid per access.
        busy = self._access_busy_ns * repeat
        cpu.access_ns += busy
        clock._now_ns += busy

        node_id = thread.node_id
        copies = self._copies_by_node[node_id]
        record: CopyRecord | None = copies.get(obj_id)
        if record is not None and record.real_state is not _INVALID:
            faulted = False  # valid cache copy or home copy: no coherence work
            obj = None  # resolved lazily; a plain hit never needs it
        else:
            obj = self._objects[obj_id]
            if obj.home_node == node_id:
                # Home copies materialize lazily and are always current
                # (a home copy can never be INVALID).
                if record is None:
                    record = CopyRecord(obj_id, _HOME)
                    copies[obj_id] = record
                faulted = False
            else:
                record = self._fault_remote(thread, obj, record)
                faulted = True

        if is_write and record.real_state is not _HOME:
            if obj is None:
                obj = self._objects[obj_id]
            if not record.has_twin:
                twin_ns = obj.size_bytes * self.costs.twin_ns_per_byte
                record.has_twin = True
                cpu.protocol_ns += twin_ns
                clock._now_ns += twin_ns
            if obj.is_array:
                written = n_elems * obj.jclass.element_size
            else:
                written = obj.jclass.instance_size
            record.dirty_bytes = min(record.dirty_bytes + written, obj.size_bytes)
            record.writers.add(thread.thread_id)

        # Inlined IntervalRecord.touch (one access-summary upsert per op).
        now = clock._now_ns
        interval: IntervalRecord = thread.current_interval
        summary = interval.accesses.get(obj_id)
        if summary is None:
            first_touch = True
            summary = AccessSummary(obj_id, 0, 0, now, now)
            interval.accesses[obj_id] = summary
        else:
            first_touch = False
        if is_write:
            summary.writes += repeat
            interval.written.add(obj_id)
        else:
            summary.reads += repeat
        summary.last_ns = now

        sanitizer = self.sanitizer
        if sanitizer is not None:
            sanitizer.on_access(thread, obj_id, record, obj, faulted)
        racedetector = self.racedetector
        if racedetector is not None:
            racedetector.on_access(thread, obj_id, is_write)

        hooks = self.hooks
        if not hooks:
            return
        if len(hooks) == 1:
            hook = hooks[0]
            if hook is self._fast_src:
                fast = self._fast_log
            else:
                self._fast_src = hook
                fast = self._fast_log = getattr(hook, "fast_on_access", None)
                self._fast_prime = (
                    getattr(hook, "prime_batch", None)
                    if getattr(hook, "wants_batch_prime", False)
                    else None
                )
            if fast is not None:
                # Only the first touch of an object in an interval can
                # trap (the false-invalid tag is cancelled by that first
                # access; later accesses run the inlined fast path
                # untouched), so the profiler hook fires once per
                # (interval, object).
                if first_touch:
                    if obj is None:
                        obj = self._objects[obj_id]
                    fast(thread, obj, faulted)
                return
        if obj is None:
            obj = self._objects[obj_id]
        for hook in hooks:
            hook.on_access(
                thread,
                obj,
                is_write=is_write,
                n_elems=n_elems,
                elem_off=elem_off,
                repeat=repeat,
                real_fault=faulted,
            )

    # ------------------------------------------------------------------
    # intervals
    # ------------------------------------------------------------------

    def open_interval(self, thread) -> None:
        """Begin a new interval for ``thread``."""
        costs = self.costs
        clock = thread.clock
        thread.cpu.protocol_ns += costs.interval_open_ns
        clock._now_ns += costs.interval_open_ns
        thread.interval_counter += 1
        thread.current_interval = IntervalRecord(
            thread_id=thread.thread_id,
            interval_id=thread.interval_counter,
            start_pc=thread.pc,
            start_ns=clock._now_ns,
        )
        if self.tracer is not None:
            self.tracer.interval_open(thread, clock._now_ns)
        for hook in self.hooks:
            hook.on_interval_open(thread)
        if self.sanitizer is not None:
            self.sanitizer.on_interval_open(thread)

    def close_interval(self, thread, reason: str, sync_dst: int | None = None) -> IntervalRecord:
        """Close the thread's current interval: flush diffs, publish write
        notices, then hand the interval record to the profiler hooks."""
        costs = self.costs
        interval: IntervalRecord = thread.current_interval
        interval.end_pc = thread.pc
        interval.close_reason = reason

        copies = self._copies_by_node[thread.node_id]
        objects = self._objects
        clock = thread.clock
        cpu = thread.cpu
        notices = self.notices
        c_diffs = self._c_diffs
        c_notices = self._c_notices
        sanitizer = self.sanitizer
        racedetector = self.racedetector
        tracer = self.tracer
        objprof = self.objprof
        # Flush diffs for cache copies this thread wrote.  Sorted: the
        # written set is hash-ordered, and diff/notice publication order
        # feeds network sends and the global notice log — iteration
        # order must not depend on interning accidents (SIM003).
        # Counter increments are batched per close, not per object.
        n_notices = n_diffs = 0
        for obj_id in sorted(interval.written):
            record: CopyRecord | None = copies.get(obj_id)
            obj = objects[obj_id]
            if record is None:
                continue
            if record.real_state is _HOME:
                obj.home_version += 1
                notices.append((obj_id, obj.home_version))
                n_notices += 1
                if sanitizer is not None:
                    sanitizer.on_notice(obj_id, obj.home_version)
                if racedetector is not None:
                    racedetector.on_notice_publish(thread, obj_id, obj.home_version)
                continue
            if thread.thread_id not in record.writers:
                continue
            dirty = max(record.dirty_bytes, 1)
            diff_begin_ns = clock._now_ns
            diff_ns = dirty * costs.diff_ns_per_byte
            cpu.protocol_ns += diff_ns
            clock._now_ns += diff_ns
            wait = self.network.send(
                MessageKind.DIFF,
                thread.node_id,
                obj.home_node,
                dirty + DIFF_OVERHEAD,
                clock._now_ns,
            )
            cpu.network_wait_ns += wait
            clock._now_ns += wait
            obj.home_version += 1
            # The writer's copy now reflects the applied diff.
            record.fetched_version = obj.home_version
            record.clear_interval_state()
            notices.append((obj_id, obj.home_version))
            n_diffs += 1
            n_notices += 1
            if tracer is not None:
                tracer.diff(thread, obj_id, dirty, diff_begin_ns, clock._now_ns)
            if objprof is not None:
                objprof.on_diff(thread, obj_id, dirty)
            if sanitizer is not None:
                sanitizer.on_notice(obj_id, obj.home_version)
            if racedetector is not None:
                racedetector.on_notice_publish(thread, obj_id, obj.home_version)

        if n_diffs:
            c_diffs.inc(n_diffs)
        if n_notices:
            c_notices.inc(n_notices)
        cpu.protocol_ns += costs.interval_close_ns
        clock._now_ns += costs.interval_close_ns
        interval.end_ns = clock._now_ns
        self._c_intervals.inc()

        for hook in self.hooks:
            hook.on_interval_close(thread, interval, sync_dst)
        if sanitizer is not None:
            sanitizer.on_interval_close(thread, interval)
        if objprof is not None:
            objprof.on_interval_close(thread, interval)
        # The interval *span* closes after the hooks so close-time work
        # (e.g. the profiler's OAL flush) nests inside it; the interval
        # *record*'s end_ns above stays the protocol-close instant.
        if tracer is not None:
            tracer.interval_close(thread, interval, clock._now_ns)

        if self.keep_interval_history:
            self.interval_history.setdefault(thread.thread_id, []).append(interval)
        return interval

    # ------------------------------------------------------------------
    # write-notice application
    # ------------------------------------------------------------------

    def apply_notices(self, thread) -> int:
        """Apply all unseen write notices on the thread's node, invalidating
        stale cache copies; returns the number of new notices consumed."""
        node_id = thread.node_id
        start = self._notice_seen[node_id]
        if self.racedetector is not None:
            # Diff-propagation edges flow even when no *new* notices are
            # pending: diffs applied at the node earlier are visible to
            # this thread too (node-shared cache copies).
            self.racedetector.on_apply_notices(thread, start, len(self.notices))
        end = len(self.notices)
        n_new = end - start
        if not n_new:
            return 0
        self._notice_seen[node_id] = end
        copies = self._copies_by_node[node_id]
        invalidated = 0
        objprof = self.objprof
        inv_ids: list[int] | None = [] if objprof is not None else None
        if len(copies) < n_new:
            # Few copies, many notices: invert the scan.  Notices are
            # append-ordered, so dict() keeps each object's newest
            # version, and invalidating against the newest version flips
            # exactly the copies the notice-ordered walk would.  At a
            # barrier every node applies the same range, so the folded
            # dict is memoized on (start, end) — the list is append-only,
            # which makes that key sound — and built once per range
            # instead of once per node.
            memo = self._latest_notices
            if memo is not None and memo[0] == start and memo[1] == end:
                latest = memo[2]
            else:
                latest = dict(self.notices[start:end])
                self._latest_notices = (start, end, latest)
            for obj_id, record in copies.items():  # simlint: disable=SIM003 (hot path; per-record state flips are independent, order cannot leak)
                if record.real_state is _VALID:
                    version = latest.get(obj_id)
                    if version is not None and record.fetched_version < version:
                        record.real_state = _INVALID
                        invalidated += 1
                        if inv_ids is not None:
                            inv_ids.append(obj_id)
        else:
            for obj_id, version in self.notices[start:end]:
                record: CopyRecord | None = copies.get(obj_id)
                if record is None:
                    continue
                if record.real_state is _VALID and record.fetched_version < version:
                    record.real_state = _INVALID
                    invalidated += 1
                    if inv_ids is not None:
                        inv_ids.append(obj_id)
        if invalidated:
            ns = invalidated * self.costs.invalidate_ns
            thread.cpu.protocol_ns += ns
            thread.clock._now_ns += ns
            self._c_invalidations.inc(invalidated)
            if inv_ids:
                objprof.on_invalidations(node_id, inv_ids)
        return n_new

    def pending_notices(self, node_id: int) -> int:
        """Number of notices the node has not applied yet."""
        return len(self.notices) - self._notice_seen[node_id]

    # ------------------------------------------------------------------
    # synchronization operations
    # ------------------------------------------------------------------

    def acquire(self, thread, lock_id: int) -> bool:
        """Lock acquire: closes the current interval and sends the request
        to the manager.  Returns True if the lock was granted immediately
        (write notices applied, new interval opened); False if the lock is
        held — the thread is then parked in the lock's wait queue and the
        scheduler must block it until :meth:`release` hands the lock over.
        """
        costs = self.costs
        lock = self.sync.lock(lock_id)
        # Acquire delimits intervals under LRC.
        self.close_interval(thread, "acquire", sync_dst=lock.manager_node)
        thread.cpu.protocol_ns += costs.lock_local_ns
        thread.clock.advance(costs.lock_local_ns)

        node_id = thread.node_id
        now = thread.clock.now_ns
        wait = self.network.send(MessageKind.LOCK, node_id, lock.manager_node, LOCK_MSG_BYTES, now)
        arrival = now + wait
        if lock.holder is not None:
            lock.waiters.append((thread.thread_id, arrival))
            return False
        self._grant(thread, lock, lock.grant_time(arrival))
        return True

    def _grant(self, thread, lock, granted_ns: int) -> None:
        """Complete a lock grant: reply message (carrying write notices),
        clock alignment, invalidations, and a fresh interval."""
        node_id = thread.node_id
        notice_payload = self.pending_notices(node_id) * NOTICE_BYTES
        wait_back = self.network.send(
            MessageKind.LOCK,
            lock.manager_node,
            node_id,
            LOCK_MSG_BYTES + notice_payload,
            granted_ns,
        )
        before = thread.clock.now_ns
        thread.clock.advance_to(granted_ns + wait_back)
        thread.cpu.network_wait_ns += thread.clock.now_ns - before
        lock.holder = thread.thread_id
        lock.acquisitions += 1
        if self.racedetector is not None:
            # release->acquire edge: join the last releaser's clock.
            self.racedetector.on_lock_acquire(thread, lock.lock_id)
        self.apply_notices(thread)
        self.open_interval(thread)

    def release(self, thread, lock_id: int, threads_by_id: dict | None = None) -> int | None:
        """Lock release: closes the interval (flushing diffs, publishing
        notices), notifies the manager, opens a new interval.  If waiters
        are queued, the lock is handed to the first one; its thread id is
        returned so the scheduler can unblock it (``threads_by_id`` is
        then required)."""
        costs = self.costs
        lock = self.sync.lock(lock_id)
        if lock.holder != thread.thread_id:
            raise RuntimeError(
                f"thread {thread.thread_id} released lock {lock_id} held by {lock.holder}"
            )
        self.close_interval(thread, "release", sync_dst=lock.manager_node)
        if self.racedetector is not None:
            # The interval's write notices were published with the
            # pre-release clock; snapshot it on the lock, then advance.
            self.racedetector.on_lock_release(thread, lock_id)
        thread.cpu.protocol_ns += costs.lock_local_ns
        thread.clock.advance(costs.lock_local_ns)
        now = thread.clock.now_ns
        wait = self.network.send(MessageKind.LOCK, thread.node_id, lock.manager_node, LOCK_MSG_BYTES, now)
        # Release is one-way: the thread does not block on the ack, but the
        # lock only becomes available when the message reaches the manager.
        lock.available_at_ns = now + wait
        lock.holder = None
        self.open_interval(thread)
        if lock.waiters:
            if threads_by_id is None:
                raise RuntimeError(
                    f"lock {lock_id} has waiters but no thread table was supplied"
                )
            waiter_id, arrival = lock.waiters.pop(0)
            waiter = threads_by_id[waiter_id]
            self._grant(waiter, lock, lock.grant_time(arrival))
            return waiter_id
        return None

    def barrier_arrive(self, thread, barrier_id: int, parties: int) -> bool:
        """Barrier arrival: closes the interval and registers at the
        barrier.  Returns True when the caller is the last arriver (the
        scheduler then schedules a ``BARRIER_RELEASE`` event whose
        dispatch calls :meth:`barrier_release`)."""
        barrier = self.sync.barrier(barrier_id, parties)
        self.close_interval(thread, "barrier", sync_dst=self.cluster.master_id)
        now = thread.clock.now_ns
        self.network.send(
            MessageKind.BARRIER, thread.node_id, self.cluster.master_id, BARRIER_MSG_BYTES, now
        )
        last = barrier.arrive(thread.thread_id, now)
        if self.tracer is not None:
            self.tracer.barrier_arrive(thread, barrier_id, now)
        if self.sanitizer is not None:
            self.sanitizer.on_barrier_arrive(barrier_id, thread.thread_id, parties, now)
        return last

    def barrier_release(self, threads_by_id: dict[int, object], barrier_id: int) -> int:
        """Complete a barrier episode: align clocks, distribute write
        notices, apply invalidations, and open fresh intervals.
        Returns the episode's release time (ns)."""
        costs = self.costs
        barrier = self.sync.barriers[barrier_id]
        release_ns, waiters = barrier.release_all()
        release_ns += costs.barrier_local_ns
        # Bursty asynchronous traffic that converged on the master (OAL
        # jumbo messages, prominently) must finish serializing before the
        # master's release messages go out — the paper's "rather bursty"
        # bandwidth consumption, surfacing as barrier latency.
        release_ns += self.network.drain_ingress_backlog(self.cluster.master_id)
        for thread_id in waiters:
            thread = threads_by_id[thread_id]
            notice_payload = self.pending_notices(thread.node_id) * NOTICE_BYTES
            wait_back = self.network.send(
                MessageKind.BARRIER,
                self.cluster.master_id,
                thread.node_id,
                BARRIER_MSG_BYTES + notice_payload,
                release_ns,
            )
            arrived_at = thread.clock.now_ns
            thread.clock.advance_to(release_ns + wait_back)
            thread.cpu.network_wait_ns += thread.clock.now_ns - arrived_at
            self.apply_notices(thread)
            if self.tracer is not None:
                self.tracer.barrier_resume(thread, barrier_id, thread.clock.now_ns)
            self.open_interval(thread)
        if self.sanitizer is not None:
            self.sanitizer.on_barrier_release(barrier_id, barrier.parties, waiters, release_ns)
        if self.racedetector is not None:
            # Barrier edge: join every participant's clock; per-waiter
            # diff-propagation joins already ran via apply_notices above.
            self.racedetector.on_barrier_release(threads_by_id, barrier_id, waiters, release_ns)
        if self.objprof is not None:
            # Lifetime phase boundary for the object-centric profiler.
            self.objprof.on_barrier_release(release_ns)
        return release_ns
