"""Object home migration — the paper's Section VI direction, realized.

JESSICA2's evaluation runs with home migration enabled: an object whose
accesses are dominated by one remote node should be *re-homed* there,
turning that node's diffs and faults into local operations.  The paper
defers the policy ("our active correlation tracking mechanism still
needs to be enhanced for taking home effect into account"); this module
supplies both the mechanism and a simple dominant-writer policy driven
by the same per-interval access statistics the profiler already gathers.

Mechanism (:meth:`HomeMigrationEngine.migrate_home`): re-homing an
object ships its current payload to the new home (one message), flips
the old home's copy into a cache copy, installs a HOME copy at the new
node, and publishes a write notice so every other cache revalidates
against the new authority.  A small control message updates the object's
home directory entry (the GOS is the directory in this simulation).

Policy (:class:`DominantWriterPolicy`): per closed interval, count each
node's writes per object; when one remote node's share of recent writes
exceeds ``threshold`` over at least ``min_writes`` writes, propose
re-homing to it.  Hysteresis (``cooldown_intervals``) prevents homes
from thrashing between alternating writers — the exact pathology the
paper's "tricky cases" sentence worries about.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass, field

from repro.dsm.hlrc import HomeBasedLRC
from repro.dsm.intervals import IntervalRecord
from repro.dsm.states import CopyRecord, RealState
from repro.heap.objects import HeapObject
from repro.sim.network import MessageKind

#: control-message size for a home-directory update.
HOME_UPDATE_BYTES = 24
#: payload framing overhead when shipping the object to its new home.
REHOME_OVERHEAD_BYTES = 16


@dataclass
class HomeMigrationStats:
    """Counters for one engine instance."""

    migrations: int = 0
    bytes_shipped: int = 0
    #: obj_id -> number of times re-homed (thrash detector).
    per_object: dict[int, int] = field(default_factory=dict)


class HomeMigrationEngine:
    """Mechanism: re-home objects at interval boundaries."""

    def __init__(self, hlrc: HomeBasedLRC) -> None:
        self.hlrc = hlrc
        self.stats = HomeMigrationStats()

    def migrate_home(self, obj: HeapObject, new_home: int, *, now_ns: int = 0) -> None:
        """Move ``obj``'s home to ``new_home`` immediately.

        Safe only between the object's write intervals (callers invoke it
        from interval-close hooks); pending dirty state at the old home
        is already flushed by then.
        """
        old_home = obj.home_node
        if new_home == old_home:
            return
        if not 0 <= new_home < len(self.hlrc.cluster):
            raise ValueError(f"node {new_home} out of range")
        network = self.hlrc.network
        # Ship the payload old -> new plus a directory update.
        network.send(
            MessageKind.OBJECT_FETCH_DATA,
            old_home,
            new_home,
            obj.size_bytes + REHOME_OVERHEAD_BYTES,
            now_ns,
        )
        network.send(MessageKind.CONTROL, old_home, new_home, HOME_UPDATE_BYTES, now_ns)

        # Old home's copy becomes a plain (valid) cache copy.
        old_heap = self.hlrc.heaps[old_home]
        old_record: CopyRecord | None = old_heap.get(obj.obj_id)  # type: ignore[assignment]
        if old_record is not None:
            old_record.real_state = RealState.VALID
            old_record.fetched_version = obj.home_version

        # New home gets the authoritative copy.
        new_heap = self.hlrc.heaps[new_home]
        new_record: CopyRecord | None = new_heap.get(obj.obj_id)  # type: ignore[assignment]
        if new_record is None:
            new_heap.put(obj.obj_id, CopyRecord(obj.obj_id, RealState.HOME))
        else:
            new_record.real_state = RealState.HOME
            new_record.clear_interval_state()

        obj.home_node = new_home
        # Publish a notice so stale caches revalidate against the new home.
        obj.home_version += 1
        self.hlrc.notices.append((obj.obj_id, obj.home_version))

        self.stats.migrations += 1
        self.stats.bytes_shipped += obj.size_bytes
        self.stats.per_object[obj.obj_id] = self.stats.per_object.get(obj.obj_id, 0) + 1


class DominantWriterPolicy:
    """Policy + protocol hook: observe per-interval writes, re-home
    objects to their dominant writer's node.

    Each object keeps a sliding window of the nodes its last
    ``min_writes`` write-intervals came from (self-normalizing: an
    object written once per round fills its window in ``min_writes``
    rounds regardless of how many threads or intervals the rest of the
    system produces).  Once the window is full and one non-home node
    owns at least ``threshold`` of it, the object re-homes there.  A
    per-object cooldown of ``cooldown_writes`` further write events
    provides the hysteresis that keeps alternating-writer objects from
    thrashing between homes.
    """

    def __init__(
        self,
        engine: HomeMigrationEngine,
        *,
        threshold: float = 0.6,
        min_writes: int = 4,
        cooldown_writes: int = 8,
        cooldown_intervals: int | None = None,
    ) -> None:
        if not 0.5 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0.5, 1], got {threshold}")
        if min_writes < 1:
            raise ValueError(f"min_writes must be >= 1, got {min_writes}")
        if cooldown_intervals is not None:
            # Backwards-compatible alias for the cooldown knob.
            cooldown_writes = cooldown_intervals
        self.engine = engine
        self.threshold = threshold
        self.min_writes = min_writes
        self.cooldown_writes = cooldown_writes
        #: obj_id -> recent writer nodes (bounded window).
        self._recent: dict[int, deque[int]] = {}
        #: obj_id -> write events seen at the last re-homing.
        self._migrated_at_event: dict[int, int] = {}
        #: obj_id -> total write events observed.
        self._events: dict[int, int] = defaultdict(int)
        self.proposals = 0

    # -- ProtocolHooks interface ------------------------------------------

    def on_interval_open(self, thread) -> None:
        """ProtocolHooks: a new HLRC interval just opened for ``thread``."""
        pass

    def on_access(self, thread, obj, **kwargs) -> None:
        """ProtocolHooks: one access op executed (see class docstring)."""
        pass

    def on_interval_close(self, thread, interval: IntervalRecord, sync_dst) -> None:
        """ProtocolHooks: ``thread`` closed ``interval``."""
        node = thread.node_id
        gos = self.engine.hlrc.gos
        # Sorted so window/event accrual order is deterministic (SIM003).
        for obj_id in sorted(interval.written):
            window = self._recent.get(obj_id)
            if window is None:
                window = deque(maxlen=self.min_writes)
                self._recent[obj_id] = window
            window.append(node)
            self._events[obj_id] += 1
            self._consider(gos.get(obj_id), thread.clock.now_ns)

    # -- decision -----------------------------------------------------------

    def _consider(self, obj: HeapObject, now_ns: int) -> None:
        events = self._events[obj.obj_id]
        last = self._migrated_at_event.get(obj.obj_id)
        if last is not None and events - last < self.cooldown_writes:
            return
        window = self._recent[obj.obj_id]
        if len(window) < self.min_writes:
            return
        counts = Counter(window)
        node, top = counts.most_common(1)[0]
        if node == obj.home_node:
            return
        if top / len(window) >= self.threshold:
            self.proposals += 1
            self.engine.migrate_home(obj, node, now_ns=now_ns)
            self._migrated_at_event[obj.obj_id] = events
            window.clear()
