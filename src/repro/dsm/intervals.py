"""HLRC interval bookkeeping.

Under (home-based) lazy release consistency, each thread's execution is
divided into *intervals* delimited by synchronization operations
(acquire, release, barrier).  The at-most-once property the paper's
profiler exploits — an object needs to be logged at most once per
interval per thread — follows directly from this structure.

An :class:`IntervalRecord` captures what the profiler ships in the jumbo
OAL message: the interval context (delimiting "bytecode PCs", which in
the simulator are op indices) plus the per-object access summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class AccessSummary:
    """Per-(thread, interval, object) access aggregate."""

    obj_id: int
    reads: int = 0
    writes: int = 0
    #: first/last access times within the interval (thread clock, ns).
    first_ns: int = 0
    last_ns: int = 0

    @property
    def total(self) -> int:
        """Total accesses (reads + writes)."""
        return self.reads + self.writes


@dataclass(slots=True)
class IntervalRecord:
    """One closed HLRC interval of one thread."""

    thread_id: int
    interval_id: int
    #: op indices delimiting the interval (the paper uses bytecode PCs).
    start_pc: int = 0
    end_pc: int = 0
    #: thread-clock times at open/close.
    start_ns: int = 0
    end_ns: int = 0
    #: per-object access summaries, in first-access order.
    accesses: dict[int, AccessSummary] = field(default_factory=dict)
    #: object ids written this interval (for write notices).
    written: set[int] = field(default_factory=set)
    #: what closed the interval ("release", "barrier", "acquire", "end").
    close_reason: str = ""

    def touch(
        self,
        obj_id: int,
        *,
        is_write: bool,
        count: int,
        now_ns: int,
    ) -> AccessSummary:
        """Record ``count`` accesses to ``obj_id`` at thread time ``now_ns``."""
        summary = self.accesses.get(obj_id)
        if summary is None:
            summary = AccessSummary(obj_id=obj_id, first_ns=now_ns)
            self.accesses[obj_id] = summary
        if is_write:
            summary.writes += count
            self.written.add(obj_id)
        else:
            summary.reads += count
        summary.last_ns = now_ns
        return summary

    @property
    def duration_ns(self) -> int:
        """Interval length in nanoseconds (0 if not yet closed)."""
        return max(0, self.end_ns - self.start_ns)
