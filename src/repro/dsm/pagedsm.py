"""Page-grained active correlation tracking — the D-CVM-style baseline.

The paper's Fig. 1 contrasts the *inherent* sharing pattern of a program
(object-grain tracking, what this reproduction's profiler measures) with
the *induced* pattern a page-based DSM can observe.  A page-based system
only sees page faults: when several small objects owned by different
threads pack into one 4 KB page, every thread touching the page appears
correlated with every other — false sharing that drowns the real
locality structure.

:class:`PageGrainTracker` plugs into the HLRC engine as a profiler hook
(the simulated execution is identical; only the *observation* is at page
grain).  It logs, per thread per interval, the set of pages touched —
the at-most-once analogue of active correlation tracking where every
page is faked invalid at interval start.  Its output feeds the same TCM
builder as the object-grain profiler, with the logged size of a "page
access" being the page size.
"""

from __future__ import annotations

from collections import defaultdict

from repro.dsm.intervals import IntervalRecord
from repro.heap.objects import HeapObject
from repro.heap.pages import PageMap


class PageGrainTracker:
    """Observes accesses at page granularity and accumulates page-level
    object access lists: (thread, page) -> touched flag per interval."""

    def __init__(self, pagemap: PageMap) -> None:
        self.pagemap = pagemap
        #: pages touched by each thread in its current interval.
        self._current: dict[int, set[tuple[int, int]]] = defaultdict(set)
        #: accumulated page OAL entries: (thread_id, page_key) -> intervals touched.
        self.page_touches: dict[tuple[int, tuple[int, int]], int] = defaultdict(int)
        #: distinct threads that ever touched each page.
        self.page_threads: dict[tuple[int, int], set[int]] = defaultdict(set)

    # -- ProtocolHooks interface ------------------------------------------

    def on_interval_open(self, thread) -> None:
        """ProtocolHooks: a new HLRC interval just opened for ``thread``."""
        self._current[thread.thread_id] = set()

    def on_access(
        self,
        thread,
        obj: HeapObject,
        *,
        is_write: bool,
        n_elems: int,
        elem_off: int,
        repeat: int,
        real_fault: bool,
    ) -> None:
        """ProtocolHooks: one access op executed (see class docstring)."""
        if obj.obj_id not in self.pagemap:
            return
        if obj.is_array and n_elems < obj.length:
            elem = obj.jclass.element_size
            pages = self.pagemap.pages_of_range(
                obj.obj_id,
                obj.jclass.instance_size + elem_off * elem,
                max(n_elems, 1) * elem,
            )
        else:
            pages = self.pagemap.pages_of(obj.obj_id)
        self._current[thread.thread_id].update(pages)

    def on_interval_close(self, thread, interval: IntervalRecord, sync_dst: int | None) -> None:
        """ProtocolHooks: ``thread`` closed ``interval``."""
        touched = self._current.pop(thread.thread_id, set())
        tid = thread.thread_id
        for page in touched:
            self.page_touches[(tid, page)] += 1
            self.page_threads[page].add(tid)

    # -- output -------------------------------------------------------------

    def induced_entries(self) -> list[tuple[int, int, float]]:
        """Page-grain OAL entries as (thread_id, pseudo_object_id, bytes).

        Each page becomes a pseudo-object of size ``page_size``; the TCM
        builder then produces the *induced* correlation map.  Page keys
        are flattened into dense pseudo ids.
        """
        page_ids: dict[tuple[int, int], int] = {}
        entries: list[tuple[int, int, float]] = []
        size = float(self.pagemap.page_size)
        for (tid, page), _count in sorted(self.page_touches.items()):
            pid = page_ids.setdefault(page, len(page_ids))
            entries.append((tid, pid, size))
        return entries

    def false_sharing_degree(self) -> float:
        """Average number of distinct threads per touched page — 1.0 means
        no page is shared; higher values mean more (potentially false)
        sharing visible at page grain."""
        if not self.page_threads:
            return 0.0
        return sum(len(ts) for ts in self.page_threads.values()) / len(self.page_threads)  # simlint: disable=SIM003 (integer sum; order cannot leak)
