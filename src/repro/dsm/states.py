"""Per-node object copy state.

JESSICA2 keeps a 2-bit object state in each header, checked by
JIT-inlined software checks on every access.  The profiler overlays a
*false-invalid* state on top: the real state moves to a separate field
and the visible state is forced invalid so the next access traps into
the GOS service routine for logging (Section II.A).  We model exactly
that split: :attr:`CopyRecord.real_state` is the coherence truth and
false-invalidation is a per-thread overlay maintained by the access
profiler (per-thread because OALs are per-thread; the paper's evaluation
runs one thread per node, where the two notions coincide).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RealState(enum.Enum):
    """Coherence state of one node's copy of an object."""

    #: this node is the object's home; the copy is always current.
    HOME = "home"
    #: cached copy, valid since last fetch, no invalidating notice seen.
    VALID = "valid"
    #: cached copy known stale (write notice applied); access must fault.
    INVALID = "invalid"


@dataclass(slots=True)
class CopyRecord:
    """One node's copy of a shared object."""

    obj_id: int
    real_state: RealState
    #: home version the cached data corresponds to (meaningless for HOME).
    fetched_version: int = 0
    #: dirty byte count accumulated by local writes this interval
    #: (cache copies only; flushed as a diff at release/barrier).
    dirty_bytes: int = 0
    #: whether a twin was already created this interval.
    has_twin: bool = False
    #: thread ids that wrote this copy in the current interval (for
    #: write-notice attribution when the interval closes).
    writers: set[int] = field(default_factory=set)

    @property
    def is_home(self) -> bool:
        """True when this copy is the object's home copy."""
        return self.real_state is RealState.HOME

    def invalidate(self) -> None:
        """Apply a write notice: only cache copies can become invalid."""
        if self.real_state is RealState.VALID:
            self.real_state = RealState.INVALID

    def clear_interval_state(self) -> None:
        """Reset per-interval write bookkeeping (after diff flush)."""
        self.dirty_bytes = 0
        self.has_twin = False
        self.writers.clear()
