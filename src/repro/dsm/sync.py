"""Distributed synchronization primitives: locks and barriers.

Locks follow a home/manager model (the manager node orders grants);
barriers rendezvous at the master.  Timing semantics:

* **Lock**: the requester pays a round trip to the manager; if the lock
  is held with a later known release time, the grant is deferred to that
  time.  Grants are serialized in simulated-time order.  This is an
  approximation adequate for the paper's workloads, which synchronize
  almost exclusively with barriers.
* **Barrier**: every participant sends an arrival message to the master
  and blocks; when the last participant arrives, a ``BARRIER_RELEASE``
  event is scheduled on the event kernel at the last arrival time.
  Dispatching it aligns all clocks to the maximum arrival time plus the
  barrier cost and flows release messages back.  The scheduler
  (interpreter) drives the blocking and the event dispatch; this module
  only keeps the state and computes times.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DistributedLock:
    """One cluster-wide lock, orchestrated by a manager node.

    Mutual exclusion is real: while held, further requesters park in the
    FIFO ``waiters`` queue and are granted at release, clock-aligned to
    the release message's arrival at the manager.
    """

    lock_id: int
    manager_node: int
    holder: int | None = None
    #: simulated time at which the lock last became free at the manager.
    available_at_ns: int = 0
    acquisitions: int = 0
    #: (thread_id, request_arrival_ns) of parked requesters, FIFO.
    waiters: list[tuple[int, int]] = field(default_factory=list)

    def grant_time(self, request_arrival_ns: int) -> int:
        """Earliest time the lock can be granted to a request arriving at
        ``request_arrival_ns`` (manager-side ordering)."""
        return max(request_arrival_ns, self.available_at_ns)


@dataclass
class Barrier:
    """One cluster-wide barrier (re-usable across rounds)."""

    barrier_id: int
    parties: int
    #: thread_id -> arrival time for the episode in progress.
    waiting: dict[int, int] = field(default_factory=dict)
    episodes: int = 0
    #: True between the last arrival and the dispatch of the episode's
    #: BARRIER_RELEASE event — guards against double-scheduling.
    release_pending: bool = False

    def arrive(self, thread_id: int, now_ns: int) -> bool:
        """Register arrival; returns True when this arrival completes the
        episode (caller then schedules a release event that runs
        :meth:`release_all`)."""
        if thread_id in self.waiting:
            raise RuntimeError(
                f"thread {thread_id} arrived twice at barrier {self.barrier_id}"
            )
        if self.release_pending:
            raise RuntimeError(
                f"thread {thread_id} arrived at barrier {self.barrier_id} "
                "while its release is still pending"
            )
        self.waiting[thread_id] = now_ns
        if len(self.waiting) == self.parties:
            self.release_pending = True
            return True
        return False

    def release_all(self) -> tuple[int, list[int]]:
        """Complete the episode: returns (max arrival time, waiters)."""
        if len(self.waiting) != self.parties:
            raise RuntimeError(
                f"barrier {self.barrier_id} released with {len(self.waiting)}"
                f"/{self.parties} arrivals"
            )
        release_ns = max(self.waiting.values())
        waiters = list(self.waiting)
        self.waiting.clear()
        self.episodes += 1
        self.release_pending = False
        return release_ns, waiters


class SyncRegistry:
    """Registry of locks and barriers for one DJVM instance."""

    def __init__(self, master_node: int = 0) -> None:
        self.master_node = master_node
        self._locks: dict[int, DistributedLock] = {}
        self._barriers: dict[int, Barrier] = {}

    def lock(self, lock_id: int, manager_node: int | None = None) -> DistributedLock:
        """Get or create a lock (manager defaults to the master node)."""
        if lock_id not in self._locks:
            manager = self.master_node if manager_node is None else manager_node
            self._locks[lock_id] = DistributedLock(lock_id=lock_id, manager_node=manager)
        return self._locks[lock_id]

    def barrier(self, barrier_id: int, parties: int) -> Barrier:
        """Get or create a barrier with the given party count."""
        existing = self._barriers.get(barrier_id)
        if existing is not None:
            if existing.parties != parties:
                raise ValueError(
                    f"barrier {barrier_id} already exists with "
                    f"{existing.parties} parties, requested {parties}"
                )
            return existing
        barrier = Barrier(barrier_id=barrier_id, parties=parties)
        self._barriers[barrier_id] = barrier
        return barrier

    @property
    def locks(self) -> dict[int, DistributedLock]:
        """All locks created so far, by id."""
        return self._locks

    @property
    def barriers(self) -> dict[int, Barrier]:
        """All barriers created so far, by id."""
        return self._barriers
