"""Heap substrate: Java-like class registry, heap objects with per-class
sequence numbers (the basis of the paper's sampling scheme), a global
object space (home registry), per-node local heaps, and an object-to-page
packing used by the page-based DSM baseline."""

from repro.heap.jclass import ClassRegistry, JClass
from repro.heap.objects import HeapObject
from repro.heap.heap import GlobalObjectSpace, LocalHeap
from repro.heap.pages import PageMap

__all__ = [
    "ClassRegistry",
    "JClass",
    "HeapObject",
    "GlobalObjectSpace",
    "LocalHeap",
    "PageMap",
]
