"""Global object space (GOS) registry and per-node local heaps.

The :class:`GlobalObjectSpace` is the allocation authority: it assigns
object ids, per-class sequence numbers and home nodes (home = creating
node, as in JESSICA2).  :class:`LocalHeap` holds each node's *copies* —
home copies for objects homed there, cache copies for remotely homed
objects that local threads have faulted in.  The coherence state machine
on those copies lives in :mod:`repro.dsm.states`.
"""

from __future__ import annotations

import sys
from typing import Iterable, Iterator

from repro.heap.jclass import ClassRegistry, JClass
from repro.heap.objects import HeapObject

#: allocation frames skipped when resolving a site label's origin: the
#: GOS itself and the DJVM facade that forwards to it.
_ALLOC_WRAPPERS = ("repro/heap/heap.py", "repro/runtime/djvm.py")


def _caller_origin() -> str:
    """``file:line`` of the workload frame that requested an allocation.

    Walks past the allocation wrappers and renders the path from the
    package root down (host-prefix-free, so origins are stable across
    checkouts).  Host-side introspection only — never touches simulated
    state."""
    frame = sys._getframe(2)  # skip _caller_origin and allocate itself
    while frame is not None:
        filename = frame.f_code.co_filename.replace("\\", "/")
        if not filename.endswith(_ALLOC_WRAPPERS):
            short = filename.rsplit("/src/", 1)[-1]
            return f"{short}:{frame.f_lineno}"
        frame = frame.f_back
    return ""


class GlobalObjectSpace:
    """Cluster-wide object registry (ids, homes, sequence numbers)."""

    def __init__(self, registry: ClassRegistry | None = None) -> None:
        self.registry = registry if registry is not None else ClassRegistry()
        self._objects: list[HeapObject] = []
        self._by_class: dict[int, list[int]] = {}
        #: site label -> ``file:line`` of the first allocation carrying
        #: it (the object-centric report's source attribution).
        self.site_origins: dict[str, str] = {}

    def allocate(
        self,
        jclass: JClass | str,
        home_node: int,
        *,
        length: int = 0,
        refs: Iterable[int] = (),
        site: str | None = None,
    ) -> HeapObject:
        """Allocate a new shared object homed at ``home_node``.

        Arrays consume ``length`` consecutive per-class sequence numbers
        (one per element); scalar objects consume one.  ``site`` is an
        optional allocation-site label for per-site static/profiling
        reports (defaults to the class name downstream).
        """
        if isinstance(jclass, str):
            jclass = self.registry.get(jclass)
        if site is not None and site not in self.site_origins:
            # Capture once per distinct label — cheap, and every later
            # allocation at the label shares the first caller's line.
            self.site_origins[site] = _caller_origin()
        if jclass.is_array:
            if length < 1:
                raise ValueError(f"array of class {jclass.name} needs length >= 1, got {length}")
            seq = jclass.issue_seq(length)
        else:
            if length:
                raise ValueError(f"scalar class {jclass.name} cannot take a length")
            seq = jclass.issue_seq(1)
        obj = HeapObject(
            obj_id=len(self._objects),
            jclass=jclass,
            seq=seq,
            home_node=home_node,
            length=length,
            refs=list(refs),
            site=site,
        )
        self._objects.append(obj)
        self._by_class.setdefault(jclass.class_id, []).append(obj.obj_id)
        return obj

    def get(self, obj_id: int) -> HeapObject:
        """Look up by key; returns None / raises per container semantics."""
        return self._objects[obj_id]

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[HeapObject]:
        return iter(self._objects)

    def objects_of_class(self, jclass: JClass | str) -> list[HeapObject]:
        """All objects of one class, in allocation order."""
        if isinstance(jclass, str):
            jclass = self.registry.get(jclass)
        return [self._objects[i] for i in self._by_class.get(jclass.class_id, [])]

    def total_bytes(self) -> int:
        """Total payload bytes in the global object space."""
        return sum(o.size_bytes for o in self._objects)


class LocalHeap:
    """Per-node view of the global object space.

    Maps object id to this node's copy record.  The record type is owned
    by the DSM layer (:class:`repro.dsm.states.CopyRecord`); the heap is
    just the container, mirroring how JESSICA2's local heaps hold both
    home and cache copies.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.copies: dict[int, object] = {}

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self.copies

    def get(self, obj_id: int):
        """Look up by key; returns None / raises per container semantics."""
        return self.copies.get(obj_id)

    def put(self, obj_id: int, record: object) -> None:
        """Store a record under ``obj_id``."""
        self.copies[obj_id] = record

    def evict(self, obj_id: int) -> None:
        """Drop the record for ``obj_id`` (no-op when absent)."""
        self.copies.pop(obj_id, None)

    def __len__(self) -> int:
        return len(self.copies)
