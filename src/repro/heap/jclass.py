"""Java class metadata.

Sampling in the paper is configured *per class* ("we store the
sampling-specific metadata like sampling gap as close to subclasses as
possible", Section II.B), so every heap object carries a reference to a
:class:`JClass` and each class keeps its own object sequence counter and
sampling gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive


@dataclass(slots=True)
class JClass:
    """Metadata for one (sub)class of heap objects.

    For scalar classes ``instance_size`` is the object's byte size.  For
    array classes ``element_size`` is the per-element byte size and each
    instance supplies its own length; ``instance_size`` then holds only
    the header bytes.
    """

    class_id: int
    name: str
    instance_size: int
    is_array: bool = False
    element_size: int = 0
    #: next per-class object (or array-element) sequence number to issue.
    next_seq: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.is_array:
            check_positive(self.element_size, f"element_size of array class {self.name}")
        else:
            check_positive(self.instance_size, f"instance_size of class {self.name}")

    def issue_seq(self, count: int = 1) -> int:
        """Issue ``count`` consecutive sequence numbers; returns the first.

        Plain objects take one number; an array of length L takes L
        consecutive numbers (one per element, Section II.B.3), of which
        only the first is stored on the instance.
        """
        check_positive(count, "sequence count")
        first = self.next_seq
        self.next_seq += count
        return first


class ClassRegistry:
    """Registry of all classes loaded in the simulated DJVM."""

    def __init__(self) -> None:
        self._by_name: dict[str, JClass] = {}
        self._by_id: list[JClass] = []

    def define(
        self,
        name: str,
        instance_size: int = 0,
        *,
        is_array: bool = False,
        element_size: int = 0,
    ) -> JClass:
        """Define a new class; names must be unique."""
        if name in self._by_name:
            raise ValueError(f"class {name!r} already defined")
        jclass = JClass(
            class_id=len(self._by_id),
            name=name,
            instance_size=instance_size if not is_array else max(instance_size, 16),
            is_array=is_array,
            element_size=element_size,
        )
        self._by_name[name] = jclass
        self._by_id.append(jclass)
        return jclass

    def get(self, name: str) -> JClass:
        """Look up by key; returns None / raises per container semantics."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"class {name!r} is not defined") from None

    def by_id(self, class_id: int) -> JClass:
        """Look up a class by its dense id."""
        return self._by_id[class_id]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_id)

    def __len__(self) -> int:
        return len(self._by_id)
