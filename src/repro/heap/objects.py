"""Heap objects.

Each object header carries what the paper's scheme needs:

* the class (per-class sampling gap lives on :class:`~repro.heap.jclass.JClass`),
* a per-class **sequence number** (half-word in the paper) — for arrays
  this is the first element's number and elements are numbered
  consecutively (Section II.B.3, Fig. 3b),
* the **home node** of the HLRC protocol,
* outgoing **reference edges**, which form the object graph that
  sticky-set resolution traces from stack-invariant entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.heap.jclass import JClass


@dataclass(slots=True)
class HeapObject:
    """One shared object (or array) in the global object space."""

    obj_id: int
    jclass: JClass
    seq: int
    home_node: int
    #: array length (0 for scalar objects).
    length: int = 0
    #: ids of objects this object references (graph edges).
    refs: list[int] = field(default_factory=list)
    #: version bumped by the home on every applied write (HLRC bookkeeping).
    home_version: int = field(default=0, repr=False)
    #: optional allocation-site label (workload-provided; the static
    #: sharing analysis aggregates per site, falling back to the class
    #: name when unset).
    site: str | None = field(default=None, repr=False)

    @property
    def is_array(self) -> bool:
        """True for array instances."""
        return self.jclass.is_array

    @property
    def size_bytes(self) -> int:
        """Total payload size (what an object fault must transfer)."""
        if self.is_array:
            return self.jclass.instance_size + self.length * self.jclass.element_size
        return self.jclass.instance_size

    def element_seq(self, index: int) -> int:
        """Sequence number of array element ``index`` (consecutive from
        the stored first-element number)."""
        if not self.is_array:
            raise TypeError(f"object {self.obj_id} of class {self.jclass.name} is not an array")
        if not 0 <= index < self.length:
            raise IndexError(f"index {index} out of range for length {self.length}")
        return self.seq + index

    def add_ref(self, target_id: int) -> None:
        """Add a reference edge (duplicates allowed; the graph is a multigraph
        in principle, but tracing deduplicates)."""
        self.refs.append(target_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = f"[{self.length}]" if self.is_array else ""
        return (
            f"HeapObject(#{self.obj_id} {self.jclass.name}{kind} "
            f"seq={self.seq} home={self.home_node} {self.size_bytes}B)"
        )
