"""Object-to-page packing for the page-based DSM baseline.

Page-grained correlation tracking (D-CVM style, the baseline the paper
argues against) observes sharing at page granularity.  What it can see
is entirely determined by how objects pack into pages: small objects
allocated back-to-back by different logical owners end up on one page
and every page-level event conflates their accessors — the *false
sharing* that destroys the inherent pattern in Fig. 1(b).

We model a bump-pointer allocator per home node: objects are laid out in
allocation order, an object spans ``ceil(size / page)`` pages when large,
and small objects share pages until one fills up.  This matches how a
real JVM heap would have been laid out after the single-threaded
initialization phase of the SPLASH-2 style programs.
"""

from __future__ import annotations

from repro.heap.heap import GlobalObjectSpace
from repro.heap.objects import HeapObject
from repro.util.validation import check_positive


class PageMap:
    """Assigns every object a half-open byte range in its node's heap and
    exposes object -> pages and page -> objects mappings."""

    def __init__(self, page_size: int = 4096) -> None:
        check_positive(page_size, "page_size")
        self.page_size = int(page_size)
        #: next free byte offset per home node.
        self._cursor: dict[int, int] = {}
        #: obj_id -> (home_node, start_offset, size)
        self._extent: dict[int, tuple[int, int, int]] = {}
        #: (home_node, page_index) -> list of obj_ids overlapping the page
        self._page_objects: dict[tuple[int, int], list[int]] = {}

    def place(self, obj: HeapObject) -> tuple[int, int]:
        """Place one object at the node's current bump pointer.

        Returns the (first_page, last_page) index range it occupies.
        """
        if obj.obj_id in self._extent:
            raise ValueError(f"object {obj.obj_id} already placed")
        node = obj.home_node
        start = self._cursor.get(node, 0)
        size = max(obj.size_bytes, 1)
        self._cursor[node] = start + size
        self._extent[obj.obj_id] = (node, start, size)
        first = start // self.page_size
        last = (start + size - 1) // self.page_size
        for page in range(first, last + 1):
            self._page_objects.setdefault((node, page), []).append(obj.obj_id)
        return first, last

    def place_all(self, gos: GlobalObjectSpace) -> None:
        """Place every object of a global object space in allocation order."""
        for obj in gos:
            if obj.obj_id not in self._extent:
                self.place(obj)

    def pages_of(self, obj_id: int) -> list[tuple[int, int]]:
        """(node, page) pairs the object's extent overlaps."""
        node, start, size = self._extent[obj_id]
        first = start // self.page_size
        last = (start + size - 1) // self.page_size
        return [(node, p) for p in range(first, last + 1)]

    def pages_of_range(self, obj_id: int, byte_off: int, byte_len: int) -> list[tuple[int, int]]:
        """(node, page) pairs overlapped by a sub-range of the object
        (lets large-array accesses touch only the pages they really use)."""
        node, start, size = self._extent[obj_id]
        if byte_len <= 0:
            return []
        byte_off = max(0, min(byte_off, size - 1))
        end = min(byte_off + byte_len, size)
        first = (start + byte_off) // self.page_size
        last = (start + end - 1) // self.page_size
        return [(node, p) for p in range(first, last + 1)]

    def objects_on(self, node: int, page: int) -> list[int]:
        """Object ids overlapping one page."""
        return list(self._page_objects.get((node, page), []))

    def n_pages(self, node: int) -> int:
        """Number of pages the node's heap spans."""
        used = self._cursor.get(node, 0)
        return (used + self.page_size - 1) // self.page_size

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._extent
