"""Unified telemetry subsystem (metrics + span tracing + self-overhead).

Every subsystem of the simulated DJVM emits into one telemetry layer
with three pillars:

* :mod:`repro.obs.metrics` — a typed metrics registry (Counter / Gauge /
  Histogram with label sets, deterministic snapshot ordering, zero-cost
  no-op handles when disabled).  The HLRC protocol counters live here;
  network traffic, heap occupancy, migration and profiler statistics are
  folded in through snapshot-time collectors.
* :mod:`repro.obs.tracing` — a span tracer hung off the same
  nullable-observer slot pattern as the protocol sanitizer and race
  detector.  Spans begin and end in *simulated* time (interval, barrier
  wait, fault, diff, migration, OAL flush, TCM window), so traces are
  bit-deterministic across runs.
* :mod:`repro.obs.overhead` — self-overhead accounting: the telemetry
  layer measures the wall-clock cost of its own observation (Mertz &
  Nunes: an adaptive monitor must know what *it* costs) and offers the
  overhead arithmetic the paper's tables are built from.

:class:`Telemetry` is the facade a :class:`~repro.runtime.djvm.DJVM`
carries (``DJVM(telemetry=...)``); :mod:`repro.obs.export` renders the
registry as a Prometheus-style text snapshot and the tracer as
Chrome-trace / Perfetto JSON.  The contract shared with the sanitizer
and race-detector gates holds here too: simulated results are
byte-identical with telemetry off, metrics-only, or metrics+tracing.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer

__all__ = ["Telemetry", "MetricsRegistry", "SpanTracer"]


class Telemetry:
    """One telemetry context: a metrics registry, an optional span
    tracer, and the self-overhead account that both report into."""

    def __init__(self, *, metrics: bool = True, tracing: bool = False) -> None:
        self.registry = MetricsRegistry(enabled=metrics)
        self.tracer: SpanTracer | None = SpanTracer() if tracing else None
        #: the DJVM this context is bound to (set by :meth:`bind`).
        self._djvm = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    @classmethod
    def from_config(cls, value) -> "Telemetry | None":
        """Resolve the ``DJVM(telemetry=...)`` argument.

        ``None``/``False`` → no telemetry; ``True`` or ``"metrics"`` →
        metrics only; ``"trace"``/``"full"`` → metrics + span tracing;
        a :class:`Telemetry` instance passes through unchanged.
        """
        if value is None or value is False:
            return None
        if isinstance(value, cls):
            return value
        if value is True or value == "metrics":
            return cls()
        if value in ("trace", "tracing", "full"):
            return cls(tracing=True)
        raise ValueError(
            f"telemetry must be None, bool, 'metrics', 'trace'/'full' or a "
            f"Telemetry instance, got {value!r}"
        )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def bind(self, djvm) -> None:
        """Bind to a DJVM: register the snapshot-time collectors that
        absorb the scattered per-subsystem statistics (network traffic,
        GOS occupancy, migrations, event-kernel accounting, CPU
        attribution).  Collectors only *read* simulation state, so
        binding cannot perturb results."""
        self._djvm = djvm
        reg = self.registry
        if not reg.enabled:
            return
        reg.register_collector(lambda r, d=djvm: _collect_network(r, d))
        reg.register_collector(lambda r, d=djvm: _collect_gos(r, d))
        reg.register_collector(lambda r, d=djvm: _collect_migration(r, d))
        reg.register_collector(lambda r, d=djvm: _collect_kernel(r, d))
        reg.register_collector(lambda r, d=djvm: _collect_pdes(r, d))
        reg.register_collector(lambda r, d=djvm: _collect_cpu(r, d))
        if self.tracer is not None:
            reg.register_collector(lambda r, t=self.tracer: _collect_tracer(r, t))

    def attach_suite(self, suite) -> None:
        """Attach a :class:`~repro.core.profiler.ProfilerSuite`: hand the
        tracer to the OAL flush / TCM window emitters and register the
        suite's statistics as snapshot-time collectors."""
        if self.tracer is not None:
            if suite.access_profiler is not None:
                suite.access_profiler.tracer = self.tracer
            suite.collector.tracer = self.tracer
        if self.registry.enabled:
            self.registry.register_collector(lambda r, s=suite: _collect_suite(r, s))

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------

    @property
    def self_wall_ns(self) -> int:
        """Real (host) nanoseconds spent inside telemetry observation —
        the layer's own cost, excluded from every simulated result."""
        tracer_ns = self.tracer.self_ns if self.tracer is not None else 0
        return tracer_ns + self.registry.self_ns

    def snapshot(self) -> dict:
        """Deterministically ordered ``{sample_name: value}`` snapshot."""
        return self.registry.snapshot()

    def summary(self, *, limit: int | None = None) -> str:
        """Human-readable metrics digest (one ``name value`` per line)."""
        lines = [f"{name} {value}" for name, value in self.registry.snapshot().items()]
        if limit is not None:
            lines = lines[:limit]
        if self.tracer is not None:
            lines.append(f"# spans recorded: {len(self.tracer.spans)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# snapshot-time collectors (read-only views over subsystem state)
# ---------------------------------------------------------------------------


def _collect_network(reg: MetricsRegistry, djvm) -> None:
    stats = djvm.cluster.network.stats
    reg.gauge("network_messages_total", "messages delivered").set(stats.messages)
    reg.gauge("network_piggybacked_total", "payloads riding a carrier").set(
        stats.piggybacked_messages
    )
    reg.gauge("network_gos_bytes", "base-protocol traffic bytes").set(stats.gos_bytes)
    reg.gauge("network_oal_bytes", "profiling (OAL) traffic bytes").set(stats.oal_bytes)
    by_kind = reg.gauge("network_bytes", "traffic bytes by message kind", labels=("kind",))
    for kind, nbytes in stats.bytes_by_kind.items():
        by_kind.labels(kind=kind.value).set(nbytes)


def _collect_gos(reg: MetricsRegistry, djvm) -> None:
    gos = djvm.gos
    reg.gauge("gos_objects", "objects in the global object space").set(len(gos))
    reg.gauge("gos_bytes", "payload bytes in the global object space").set(gos.total_bytes())
    copies = sum(len(heap) for heap in djvm.hlrc.heaps.values())  # simlint: disable=SIM003 (integer sum; order cannot leak)
    reg.gauge("heap_copies", "copy records across every node heap").set(copies)


def _collect_migration(reg: MetricsRegistry, djvm) -> None:
    results = djvm.migration.results
    reg.gauge("migrations_total", "thread migrations performed").set(len(results))
    reg.gauge("migration_prefetched_objects", "objects shipped with migrations").set(
        sum(r.prefetched_objects for r in results)
    )
    reg.gauge("migration_prefetched_bytes", "bytes shipped with migrations").set(
        sum(r.prefetched_bytes for r in results)
    )


def _collect_kernel(reg: MetricsRegistry, djvm) -> None:
    interp = getattr(djvm, "_interpreter", None)
    if interp is None:
        return
    kernel = interp.kernel
    reg.gauge("event_kernel_scheduled", "events scheduled").set(kernel.scheduled)
    reg.gauge("event_kernel_popped", "events dispatched").set(kernel.popped)
    reg.gauge("event_kernel_aux_dropped", "aux audit entries dropped (capacity)").set(
        kernel.aux_dropped
    )


def _collect_pdes(reg: MetricsRegistry, djvm) -> None:
    """Partitioned-kernel accounting: safe windows, cross-partition
    traffic, synchronisation overhead and partition skew.  Absent (no
    samples) under the serial kernel or before the first run."""
    stats = djvm.kernel_stats
    if stats is None:
        return
    reg.gauge("pdes_partitions", "partitions in the conservative kernel").set(
        stats["partitions"]
    )
    reg.gauge("pdes_lookahead_ns", "kernel lookahead (min network latency)").set(
        stats["lookahead_ns"]
    )
    reg.gauge("pdes_windows_total", "safe windows executed").set(stats["windows"])
    reg.gauge("pdes_window_events_max", "largest event batch in one window").set(
        stats["max_window_events"]
    )
    reg.gauge("pdes_null_window_slots_total", "empty per-partition window slots").set(
        stats["null_window_slots"]
    )
    reg.gauge("pdes_cross_messages_total", "events crossing a partition boundary").set(
        stats["cross_messages"]
    )
    reg.gauge("pdes_intra_messages_total", "events staying inside a partition").set(
        stats["intra_messages"]
    )
    reg.gauge(
        "pdes_lookahead_violations_total",
        "cross-partition deliveries under the lookahead bound",
    ).set(stats["lookahead_violations"])
    reg.gauge("pdes_frontier_syncs_total", "frontier synchronisations (LBTS rounds)").set(
        stats["frontier_syncs"]
    )
    reg.gauge("pdes_max_skew_ns", "largest observed inter-partition clock skew").set(
        stats["max_skew_ns"]
    )


def _collect_cpu(reg: MetricsRegistry, djvm) -> None:
    total_ns = 0
    profiling_ns = 0
    network_ns = 0
    for thread in djvm.threads:
        cpu = thread.cpu
        total_ns += cpu.total_ns
        profiling_ns += cpu.profiling_ns
        network_ns += cpu.network_wait_ns
    reg.gauge("cpu_total_ns", "simulated CPU ns across threads").set(total_ns)
    reg.gauge("cpu_profiling_ns", "simulated CPU ns in profiling subsystems").set(profiling_ns)
    reg.gauge("cpu_network_wait_ns", "simulated ns stalled on the network").set(network_ns)


def _collect_suite(reg: MetricsRegistry, suite) -> None:
    if suite.access_profiler is not None:
        ap = suite.access_profiler
        reg.gauge("profiler_oal_logged", "OAL entries logged").set(ap.total_logged)
        reg.gauge("profiler_oal_batches", "OAL batches flushed").set(ap.total_batches)
        reg.gauge("profiler_resample_passes", "cluster resampling passes").set(
            ap.resample_passes
        )
    reg.gauge("profiler_tcm_compute_ns", "master daemon TCM computing ns").set(
        suite.collector.tcm_compute_ns
    )
    reg.gauge("profiler_tcm_windows", "TCM windows processed").set(
        len(suite.collector.window_tcms)
    )
    _collect_sampling(reg, suite)


def _collect_sampling(reg: MetricsRegistry, suite) -> None:
    """Per-backend sampling decision statistics: evaluated decisions by
    outcome and the realized per-class sampled fraction.  Host-side
    observability only — counters track *evaluated* decisions (the
    memoized prime-gap backend evaluates once per epoch per object; the
    gap==1 fast path bypasses decision evaluation entirely)."""
    policy = getattr(suite, "policy", None)
    backend = getattr(policy, "backend", None)
    if backend is None:
        return
    samples, skips = backend.totals()
    by_outcome = reg.gauge(
        "sampling_decisions_total",
        "evaluated sampling decisions by backend and outcome",
        labels=("backend", "outcome"),
    )
    by_outcome.labels(backend=backend.name, outcome="sample").set(samples)
    by_outcome.labels(backend=backend.name, outcome="skip").set(skips)
    realized = reg.gauge(
        "sampling_realized_rate",
        "sampled fraction among evaluated decisions per class",
        labels=("backend", "class"),
    )
    states = getattr(policy, "_states", {})
    for cid, frac in backend.realized_rates().items():  # simlint: disable=SIM003 (realized_rates() is sorted-key by construction)
        st = states.get(cid)
        cname = st.jclass.name if st is not None else str(cid)
        realized.labels(**{"backend": backend.name, "class": cname}).set(frac)


def _collect_tracer(reg: MetricsRegistry, tracer: SpanTracer) -> None:
    reg.gauge("trace_spans_total", "spans recorded").set(len(tracer.spans))
    by_name = reg.gauge("trace_spans", "spans recorded by name", labels=("name",))
    for name, count in sorted(tracer.counts.items()):
        by_name.labels(name=name).set(count)
