"""``python -m repro.obs`` — the telemetry subsystem CLI.

Subcommands:

* ``summary [--workload W] [--nodes N] [--rate R]`` — run one workload
  with metrics+tracing and print the snapshot digest.
* ``export [--workload W] [--nodes N] [--rate R] --trace OUT.json
  [--prom OUT.txt] [--snapshot OUT.json]`` — run with tracing and write
  the Chrome-trace JSON (load it in chrome://tracing or ui.perfetto.dev)
  plus, optionally, the Prometheus text and the snapshot JSON.
* ``diff A.json B.json`` — compare two snapshot JSON files; any metric
  drift between identically-configured runs is a silent behavior
  change, so drift exits 1 (a missing/unreadable snapshot exits 2).
* ``gate [--max-overhead 0.15] [--repeats 3]`` — the ``make obs`` gate:
  runs bench-scale SOR base vs telemetry-on, asserts byte-identity of
  the simulated results, schema-validates the exported Chrome trace,
  and asserts the telemetry wall overhead (self-overhead accounting)
  stays under the budget.
* ``report [--workload W] [--nodes N] [--rate R] [--top K] [--json]`` —
  the object-centric inefficiency report: run with the
  :mod:`repro.obs.objprof` observer attached, fold the
  fault/diff/invalidation/OAL stream into per-allocation-site lifetime
  profiles, and print the pattern findings (ping-pong, dead-transfer,
  over-invalidated, contended-home) ranked by estimated wasted
  simulated time.  ``--json`` emits the machine feed
  :func:`repro.placement.candidates.candidates_from_objprof` consumes.
* ``compare [--workload W] [--nodes N] [--rate R]`` — run the dynamic
  correlation profiler AND the static sharing analysis
  (:mod:`repro.checks.staticflow`) on the same workload/placement, then
  print the static-vs-dynamic comparison: normalized-TCM structure
  accuracy, nonzero-support precision/recall, the per-site sharing
  table, the static may-race set size and the placement candidates.
* ``objprof`` — the ``make objprof`` gate: for SOR, Barnes-Hut and
  Water-Spatial, asserts profiler-on/off byte-identity, report-twice
  determinism, and (Water-Spatial) that at least three distinct
  patterns rank with file:line site attribution.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.analysis import experiments as E
from repro.obs.export import chrome_trace, prometheus_text, validate_chrome_trace, write_chrome_trace
from repro.obs.overhead import OverheadReport, measure
from repro.workloads.barnes_hut import BarnesHutWorkload
from repro.workloads.sor import SORWorkload
from repro.workloads.water_spatial import WaterSpatialWorkload

#: CLI workload registry at check scale (matches repro.checks.runner).
WORKLOADS = {
    "sor": lambda: SORWorkload(n=256, rounds=2, n_threads=4, seed=11),
    "barnes-hut": lambda: BarnesHutWorkload(n_bodies=192, rounds=2, n_threads=4, seed=11),
    "water-spatial": lambda: WaterSpatialWorkload(n_molecules=64, rounds=2, n_threads=4, seed=11),
}

#: bench-scale SOR for the gate (mirrors benchmarks/common.py reduced scale).
GATE_FACTORY = lambda: SORWorkload(n=1024, rounds=4, n_threads=8, seed=11)  # noqa: E731
GATE_NODES = 8


def _run(
    workload: str,
    nodes: int,
    rate: float | str,
    telemetry: str = "full",
    backend: str | None = None,
    objprof: bool = False,
):
    factory = WORKLOADS[workload]
    return E.run_with_correlation(
        factory,
        n_nodes=nodes,
        rate=rate,
        send_oals=True,
        telemetry=telemetry,
        sampling_backend=backend,
        objprof=objprof,
    )


def cmd_summary(args) -> int:
    run = _run(args.workload, args.nodes, args.rate, backend=args.backend)
    telemetry = run.djvm.telemetry
    run.suite.collector.tcm()  # fold pending batches so TCM gauges are final
    print(f"# {args.workload} on {args.nodes} nodes, rate {args.rate}")
    print(f"# sampling backend: {run.suite.policy.backend.name}")
    print(f"# simulated execution {run.result.execution_time_ms:.3f} ms")
    print(telemetry.summary())
    print(f"# telemetry self-overhead {telemetry.self_wall_ns / 1e6:.2f} ms wall")
    return 0


def cmd_export(args) -> int:
    run = _run(args.workload, args.nodes, args.rate, backend=args.backend)
    telemetry = run.djvm.telemetry
    run.suite.collector.tcm()
    doc = write_chrome_trace(args.trace, telemetry.tracer)
    problems = validate_chrome_trace(doc)
    if problems:
        for p in problems:
            print(f"trace: {p}", file=sys.stderr)
        return 1
    print(f"wrote {args.trace} ({len(doc['traceEvents'])} events)")
    if args.prom:
        Path(args.prom).write_text(prometheus_text(telemetry.registry))
        print(f"wrote {args.prom}")
    if args.snapshot:
        Path(args.snapshot).write_text(json.dumps(telemetry.snapshot(), indent=1) + "\n")
        print(f"wrote {args.snapshot}")
    return 0


def diff_snapshots(a: dict, b: dict) -> list[str]:
    """Human-readable drift lines between two metric snapshots."""
    lines = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va != vb:
            lines.append(f"{key}: {va} -> {vb}")
    return lines


class SnapshotError(Exception):
    """A snapshot file could not be read or parsed."""


def load_snapshot(path: str) -> dict:
    """Read one snapshot JSON file; :class:`SnapshotError` with a
    human-readable message on a missing/unreadable/invalid file."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot {path}: {exc.strerror or exc}"
        ) from exc
    try:
        return json.loads(text)
    except ValueError as exc:
        raise SnapshotError(f"snapshot {path} is not valid JSON: {exc}") from exc


def cmd_diff(args) -> int:
    try:
        a = load_snapshot(args.a)
        b = load_snapshot(args.b)
    except SnapshotError as exc:
        print(f"telemetry diff: {exc}", file=sys.stderr)
        return 2
    drift = diff_snapshots(a, b)
    for line in drift:
        print(line)
    if drift:
        print(f"telemetry diff: {len(drift)} metric(s) drifted", file=sys.stderr)
        return 1
    print(f"telemetry diff: identical ({len(a)} samples)")
    return 0


def run_gate(max_overhead: float, repeats: int, *, verbose: bool = True) -> int:
    """The ``make obs`` gate; returns a process exit code."""
    captured = {}

    def run_base():
        run = E.run_with_correlation(
            GATE_FACTORY, n_nodes=GATE_NODES, rate=4, send_oals=True
        )
        captured["base"] = run.result
        return run

    def run_telemetry():
        run = E.run_with_correlation(
            GATE_FACTORY, n_nodes=GATE_NODES, rate=4, send_oals=True, telemetry="full"
        )
        captured["telemetry"] = run.result
        return run.djvm.telemetry

    report: OverheadReport = measure(run_base, run_telemetry, repeats=repeats)
    failures = []

    # 1. byte-identity: telemetry must not perturb the simulation.
    base, telem = captured["base"], captured["telemetry"]
    if (
        base.execution_time_ms != telem.execution_time_ms
        or base.counters != telem.counters
        or base.thread_finish_ms != telem.thread_finish_ms
    ):
        failures.append("telemetry-on run is not byte-identical to telemetry-off")

    # 2. exported trace must be schema-valid and well-nested.
    telemetry_run = run_telemetry()
    with tempfile.TemporaryDirectory() as tmp:
        doc = write_chrome_trace(Path(tmp) / "trace.json", telemetry_run.tracer)
    problems = validate_chrome_trace(doc)
    for p in problems[:10]:
        failures.append(f"trace schema: {p}")

    # 3. wall overhead under budget.  A 5 ms absolute slack absorbs
    # scheduler noise on short runs without masking a real regression.
    budget_s = max(report.base_wall_s * max_overhead, 0.005)
    if report.telemetry_wall_s - report.base_wall_s > budget_s:
        failures.append(
            f"telemetry wall overhead {report.overhead_frac * 100:.1f}% exceeds "
            f"{max_overhead * 100:.0f}% budget"
        )

    if verbose:
        print(f"obs gate: {report.render()}")
        print(f"obs gate: trace {len(doc['traceEvents'])} events, "
              f"{len(problems)} schema problem(s)")
    if failures:
        for f in failures:
            print(f"obs gate FAIL: {f}", file=sys.stderr)
        return 1
    print("obs gate: OK")
    return 0


def cmd_gate(args) -> int:
    return run_gate(args.max_overhead, args.repeats)


def static_vs_dynamic(workload: str, nodes: int, rate: float | str) -> dict:
    """Run both views of one workload and compute the comparison record.

    The static side analyzes a fresh build with the same ``block``
    placement ``run_with_correlation`` uses, so object ids and
    thread->node maps line up cell for cell.
    """
    from repro.checks.staticflow import analyze
    from repro.core.accuracy import accuracy
    from repro.core.tcm import normalize_tcm
    from repro.placement.candidates import candidates_from_static

    run = _run(workload, nodes, rate)
    measured = run.suite.collector.tcm()
    static = analyze(
        WORKLOADS[workload](), n_nodes=nodes, placement="block", name=workload
    )
    predicted = static.sharing.predicted_tcm()
    # The static TCM counts bytes once per pair; the dynamic one
    # accumulates per-interval traffic.  Compare *structure*: normalize
    # both to peak 1 before scoring.
    norm_measured = normalize_tcm(measured)
    norm_predicted = normalize_tcm(predicted)
    pred_nz = norm_predicted > 0
    meas_nz = norm_measured > 0
    hits = int((pred_nz & meas_nz).sum())
    precision = hits / int(pred_nz.sum()) if pred_nz.any() else 1.0
    recall = hits / int(meas_nz.sum()) if meas_nz.any() else 1.0
    return {
        "run": run,
        "static": static,
        "measured": measured,
        "predicted": predicted,
        "structure_accuracy": accuracy(norm_predicted, norm_measured, metric="abs"),
        "support_precision": precision,
        "support_recall": recall,
        "candidates": candidates_from_static(static),
        "n_pairs_predicted": int(pred_nz.sum()),
        "n_pairs_measured": int(meas_nz.sum()),
    }


def build_objprof_report(
    workload: str, nodes: int, rate: float | str, backend: str | None = None
):
    """Run one workload with the object-centric profiler attached and
    build its ranked report (telemetry stays off: the objprof observer
    needs no metrics registry, and the report must not depend on one)."""
    from repro.obs.report import build_report

    run = _run(workload, nodes, rate, telemetry=None, backend=backend, objprof=True)
    djvm = run.djvm
    return run, build_report(
        djvm.objprof,
        djvm.gos,
        djvm.costs,
        djvm.cluster.network,
        workload=workload,
        n_nodes=nodes,
        backend=run.suite.policy.backend.name,
    )


def cmd_report(args) -> int:
    _run_record, report = build_objprof_report(
        args.workload, args.nodes, args.rate, backend=args.backend
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=1))
    else:
        print(report.render(top=args.top))
    return 0


def cmd_compare(args) -> int:
    cmp = static_vs_dynamic(args.workload, args.nodes, args.rate)
    static = cmp["static"]
    print(f"# static vs dynamic: {args.workload} on {args.nodes} nodes, rate {args.rate}")
    if not static.verified:
        for p in static.problems:
            print(f"  {p.render()}", file=sys.stderr)
        return 1
    print(
        f"TCM structure accuracy {cmp['structure_accuracy'] * 100:.1f}%  "
        f"(nonzero pairs: predicted {cmp['n_pairs_predicted']}, "
        f"measured {cmp['n_pairs_measured']}; "
        f"precision {cmp['support_precision'] * 100:.0f}%, "
        f"recall {cmp['support_recall'] * 100:.0f}%)"
    )
    counts = static.sharing.counts()
    print("sharing: " + ", ".join(f"{n} {c}" for c, n in counts.items() if n))
    for site in sorted(static.sharing.sites):
        s = static.sharing.sites[site]
        print(
            f"  site {site:<24} {s.n_objects:>5} obj  "
            f"{s.classification:<18} shared {s.shared_bytes} B"
        )
    print(f"static may-race set: {len(static.races)} pair(s)")
    candidates = cmp["candidates"]
    print(f"placement candidates: {len(candidates)}")
    for cand in candidates:
        print(f"  {cand.render()}")
    return 0


#: the objprof gate's run matrix (check-scale workloads, enough nodes
#: for cross-node sharing patterns to appear).
OBJPROF_GATE_NODES = 4
OBJPROF_GATE_RATE = 4
#: Water-Spatial must rank at least this many distinct patterns.
OBJPROF_MIN_PATTERNS = 3


def run_objprof_gate(*, verbose: bool = True) -> int:
    """The ``make objprof`` gate; returns a process exit code.

    Per workload: (1) profiler-on/off byte-identity of the simulated
    results, (2) report-twice determinism (identical JSON), and for
    Water-Spatial (3) at least :data:`OBJPROF_MIN_PATTERNS` distinct
    patterns ranked, every finding carrying a file:line site origin.
    """
    failures = []
    for workload in sorted(WORKLOADS):
        base = _run(workload, OBJPROF_GATE_NODES, OBJPROF_GATE_RATE, telemetry=None)
        profiled, report = build_objprof_report(
            workload, OBJPROF_GATE_NODES, OBJPROF_GATE_RATE
        )
        b, p = base.result, profiled.result
        if (
            b.execution_time_ms != p.execution_time_ms
            or b.counters != p.counters
            or b.thread_finish_ms != p.thread_finish_ms
        ):
            failures.append(f"{workload}: profiler-on run is not byte-identical")
        _again, report2 = build_objprof_report(
            workload, OBJPROF_GATE_NODES, OBJPROF_GATE_RATE
        )
        if report.to_json() != report2.to_json():
            failures.append(f"{workload}: report is not deterministic across runs")
        if not report.findings:
            failures.append(f"{workload}: report ranked no findings")
        missing_origin = [f.site for f in report.findings if ":" not in f.origin]
        if missing_origin:
            failures.append(
                f"{workload}: findings without file:line origin: "
                f"{sorted(set(missing_origin))}"
            )
        if verbose:
            print(
                f"objprof gate: {workload}: {len(report.findings)} finding(s), "
                f"patterns {report.patterns_found}, "
                f"{report.n_objects} profiled objects"
            )
        if workload == "water-spatial" and len(report.patterns_found) < OBJPROF_MIN_PATTERNS:
            failures.append(
                f"water-spatial: only {report.patterns_found} ranked; "
                f"need >= {OBJPROF_MIN_PATTERNS} distinct patterns"
            )
    if failures:
        for f in failures:
            print(f"objprof gate FAIL: {f}", file=sys.stderr)
        return 1
    print("objprof gate: OK")
    return 0


def cmd_objprof(args) -> int:
    return run_objprof_gate()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_args(p):
        from repro.core.sampling import BACKENDS

        p.add_argument("--workload", choices=sorted(WORKLOADS), default="sor")
        p.add_argument("--nodes", type=int, default=2)
        p.add_argument("--rate", default=4, type=lambda v: v if v == "full" else float(v))
        p.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default=None,
            help="sampling backend (default: prime_gap)",
        )

    p = sub.add_parser("summary", help="run a workload, print the metrics digest")
    add_run_args(p)
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("export", help="run a workload, write trace/metrics files")
    add_run_args(p)
    p.add_argument("--trace", required=True, help="Chrome-trace JSON output path")
    p.add_argument("--prom", help="Prometheus text output path")
    p.add_argument("--snapshot", help="metrics snapshot JSON output path")
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("diff", help="diff two snapshot JSON files")
    p.add_argument("a")
    p.add_argument("b")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("gate", help="the make-obs CI gate")
    p.add_argument("--max-overhead", type=float, default=0.15)
    p.add_argument("--repeats", type=int, default=5)
    p.set_defaults(fn=cmd_gate)

    p = sub.add_parser(
        "report", help="ranked object-centric inefficiency report for one workload"
    )
    add_run_args(p)
    p.add_argument("--top", type=int, default=10, help="findings shown in the table")
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the JSON feed placement.candidates consumes",
    )
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "compare", help="static-vs-dynamic sharing comparison for one workload"
    )
    add_run_args(p)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("objprof", help="the make-objprof CI gate")
    p.set_defaults(fn=cmd_objprof)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
