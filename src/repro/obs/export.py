"""Exporters: Chrome-trace/Perfetto JSON for spans, Prometheus-style
text for metrics, plus a schema validator for the trace output.

Chrome trace event format (the JSON Perfetto and ``chrome://tracing``
both load): a ``traceEvents`` array of events with ``ph`` phase codes.
We emit:

* ``M`` metadata events naming each process row (``node<N>``) and each
  thread track (``thread<T>`` / ``tcm-daemon``);
* ``B``/``E`` duration pairs per span, ``ts`` in microseconds of
  simulated time, ``pid`` = node id, ``tid`` = track id.

Events are generated per (pid, tid) track from spans sorted by
``(begin_ns, -end_ns, seq)`` and emitted through an explicit stack, so
the output is well-nested by construction: every ``E`` closes the most
recent open ``B`` on its track.  :func:`validate_chrome_trace` checks
exactly that discipline (plus required keys) and is what the ``make
obs`` gate and the exporter tests run against the real output.
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import TCM_TRACK, Span, SpanTracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "prometheus_text",
]

#: tid offset for synthetic daemon tracks (Chrome wants non-negative
#: tids; the tracer's TCM track is -1).
_DAEMON_TID = 1_000_000


def _tid(track: int) -> int:
    return _DAEMON_TID if track == TCM_TRACK else track


def chrome_trace(tracer: SpanTracer, *, process_prefix: str = "node") -> dict:
    """Render the tracer's spans as a Chrome-trace JSON document."""
    events: list[dict] = []
    tracks: dict[tuple[int, int], list[Span]] = {}
    for span in tracer.spans:
        if span.end_ns < span.begin_ns:  # never closed; skip defensively
            continue
        tracks.setdefault((span.node, _tid(span.track)), []).append(span)

    # metadata rows: one process per node, one named track per tid.
    for pid, tid in sorted(tracks):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{process_prefix}{pid}"},
            }
        )
    for pid, tid in sorted(tracks):
        tname = "tcm-daemon" if tid == _DAEMON_TID else f"thread{tid}"
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": tname},
            }
        )

    # duration events, stack-emitted per track so B/E pairs nest.
    for (pid, tid), spans in sorted(tracks.items()):
        spans.sort(key=lambda s: (s.begin_ns, -s.end_ns, s.seq))
        stack: list[Span] = []
        for span in spans:
            while stack and stack[-1].end_ns <= span.begin_ns:
                events.append(_end_event(stack.pop(), pid, tid))
            events.append(
                {
                    "ph": "B",
                    "name": span.name,
                    "cat": span.cat,
                    "pid": pid,
                    "tid": tid,
                    "ts": span.begin_ns / 1e3,
                    "args": span.args or {},
                }
            )
            stack.append(span)
        while stack:
            events.append(_end_event(stack.pop(), pid, tid))

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"source": "repro.obs", "clock": "simulated"},
    }


def _end_event(span: Span, pid: int, tid: int) -> dict:
    return {
        "ph": "E",
        "name": span.name,
        "cat": span.cat,
        "pid": pid,
        "tid": tid,
        "ts": span.end_ns / 1e3,
    }


def write_chrome_trace(path, tracer: SpanTracer, **kwargs) -> dict:
    """Write the Chrome-trace JSON to ``path``; returns the document."""
    doc = chrome_trace(tracer, **kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def validate_chrome_trace(doc) -> list[str]:
    """Schema-check a Chrome-trace document.

    Returns a list of problems (empty == valid): structural checks on
    the envelope and each event, plus per-track stack discipline —
    every ``E`` must match the most recent open ``B`` by name, with
    non-decreasing timestamps.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' array"]
    stacks: dict[tuple, list[tuple[str, float]]] = {}
    last_ts: dict[tuple, float] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("M", "B", "E", "X", "I", "C"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append((ev.get("name"), ts))
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                problems.append(f"event {i}: E with no open B on track {key}")
                continue
            b_name, b_ts = stack.pop()
            if ev.get("name") != b_name:
                problems.append(
                    f"event {i}: E {ev.get('name')!r} does not match open "
                    f"B {b_name!r} on track {key}"
                )
            if ts < b_ts:
                problems.append(f"event {i}: E at {ts} before its B at {b_ts}")
        if key in last_ts and ts < last_ts[key] and ph in ("B", "E"):
            problems.append(
                f"event {i}: ts {ts} goes backwards on track {key}"
            )
        last_ts[key] = ts
    for key, stack in sorted(stacks.items()):
        if stack:
            names = [name for name, _ in stack]
            problems.append(f"track {key}: unclosed B events {names}")
    return problems


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text-exposition snapshot of every metric family."""
    if not registry.enabled:
        return ""
    snapshot = registry.snapshot()  # runs collectors; samples are fresh
    lines: list[str] = []
    seen_family: set[str] = set()
    for name in sorted(registry._families):
        family = registry._families[name]
        if name not in seen_family:
            seen_family.add(name)
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
        for sample_name, value in family.samples():
            lines.append(f"{sample_name} {value}")
    # `snapshot` is unused beyond refreshing collectors, but keeping the
    # call makes the text and dict views consistent by construction.
    del snapshot
    return "\n".join(lines) + "\n"
