"""Typed metrics registry: Counters, Gauges and Histograms with label
sets, deterministic snapshot ordering, and zero-cost no-op handles when
the registry is disabled.

The registry is the single sink for every statistic the simulated DJVM
produces.  Hot paths hold *bound handles* (a :class:`Counter` child
fetched once at wiring time), so an increment is one attribute add —
no dict lookup, no label formatting.  Everything cold (traffic, heap
occupancy, profiler totals) is folded in at snapshot time through
registered collector callbacks.

Two properties matter for the determinism contract:

* a snapshot is an ``{sample_name: value}`` dict sorted by sample name
  (metric name, then label values), so two identical runs serialize to
  identical JSON;
* every value is simulation state (counts, bytes, simulated ns) —
  wall-clock self-measurement lives on :attr:`MetricsRegistry.self_ns`
  *outside* the sample space, so snapshots never embed host timing.

Instruments are stdlib-only and import nothing from the runtime, so any
layer (DSM, sim kernel, placement) can depend on this module without
cycles.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
]

_perf_ns = time.perf_counter_ns

#: default histogram bucket upper bounds (generic size/latency scale).
DEFAULT_BUCKETS = (
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
)


# ---------------------------------------------------------------------------
# live instruments
# ---------------------------------------------------------------------------


class Counter:
    """Monotonic event count.  ``inc`` is the hot-path operation."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def samples(self):
        yield ("", self.value)


class Gauge:
    """Point-in-time level (set/inc/dec)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n

    def samples(self):
        yield ("", self.value)


class Histogram:
    """Cumulative-bucket distribution (Prometheus-style ``le`` bounds)."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds=DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf overflow
        self.sum = 0
        self.count = 0

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def value(self):
        """Histogram "value" is its sum (keeps the handle API uniform)."""
        return self.sum

    def samples(self):
        cumulative = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            cumulative += n
            yield (f"_bucket{{le=\"{bound}\"}}", cumulative)
        yield ("_bucket{le=\"+Inf\"}", self.count)
        yield ("_sum", self.sum)
        yield ("_count", self.count)


# ---------------------------------------------------------------------------
# no-op instruments (disabled registry)
# ---------------------------------------------------------------------------


class NullCounter:
    """Zero-cost stand-in handed out by a disabled registry.  Every
    operation is a no-op; ``labels`` returns the same singleton so call
    sites never branch on whether telemetry is on."""

    __slots__ = ()
    kind = "counter"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def labels(self, **kv):
        return self

    def samples(self):
        return iter(())


class NullGauge(NullCounter):
    __slots__ = ()
    kind = "gauge"

    def set(self, value) -> None:
        pass

    def dec(self, n=1) -> None:
        pass


class NullHistogram(NullCounter):
    __slots__ = ()
    kind = "histogram"
    sum = 0
    count = 0

    def observe(self, value) -> None:
        pass


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


# ---------------------------------------------------------------------------
# families and registry
# ---------------------------------------------------------------------------


class MetricFamily:
    """One named metric with zero or more label dimensions.

    An unlabeled family proxies the instrument API directly (``inc`` /
    ``set`` / ``observe`` hit a default child), so simple metrics need
    no ``labels()`` call.
    """

    __slots__ = ("name", "help", "kind", "label_names", "_make", "_children", "_default")

    def __init__(self, name, help_text, label_names, make):
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._make = make
        self.kind = make().kind
        self._children: dict[tuple, object] = {}
        self._default = None
        if not self.label_names:
            self._default = make()
            self._children[()] = self._default

    def labels(self, **kv):
        """The child instrument for one label-value combination."""
        if set(kv) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(kv))}"
            )
        key = tuple(str(kv[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._make()
            self._children[key] = child
        return child

    # -- unlabeled proxy ------------------------------------------------
    def inc(self, n=1):
        self._default.inc(n)

    def set(self, value):
        self._default.set(value)

    def dec(self, n=1):
        self._default.dec(n)

    def observe(self, value):
        self._default.observe(value)

    @property
    def value(self):
        return self._default.value

    def samples(self):
        """``(sample_name, value)`` pairs, sorted by label values."""
        for key in sorted(self._children):
            child = self._children[key]
            if key:
                label_str = ",".join(
                    f'{name}="{val}"' for name, val in zip(self.label_names, key)
                )
                base = f"{self.name}{{{label_str}}}"
                for suffix, value in child.samples():
                    # histograms carry their own suffix braces; merge labels
                    if suffix.startswith("_bucket{"):
                        yield (
                            f"{self.name}_bucket{{{label_str},{suffix[8:]}",
                            value,
                        )
                    elif suffix:
                        yield (f"{self.name}{suffix}{{{label_str}}}", value)
                    else:
                        yield (base, value)
            else:
                for suffix, value in child.samples():
                    yield (f"{self.name}{suffix}", value)


class MetricsRegistry:
    """Home of every metric family plus the snapshot-time collectors.

    ``enabled=False`` turns the registry into a sink of no-op handles:
    ``counter()``/``gauge()``/``histogram()`` return shared null
    singletons, nothing is stored, and ``snapshot()`` is empty — the
    zero-cost path for components instrumented unconditionally (e.g.
    the placement rebalancer).
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []
        #: real wall ns spent inside snapshot/collector work (self-overhead).
        self.self_ns = 0

    # -- instrument constructors ---------------------------------------

    def counter(self, name, help_text: str = "", labels=()) -> MetricFamily | NullCounter:
        if not self.enabled:
            return _NULL_COUNTER
        return self._family(name, help_text, labels, Counter)

    def gauge(self, name, help_text: str = "", labels=()) -> MetricFamily | NullGauge:
        if not self.enabled:
            return _NULL_GAUGE
        return self._family(name, help_text, labels, Gauge)

    def histogram(
        self, name, help_text: str = "", labels=(), buckets=DEFAULT_BUCKETS
    ) -> MetricFamily | NullHistogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._family(name, help_text, labels, lambda: Histogram(buckets))

    def _family(self, name, help_text, labels, make) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, help_text, labels, make)
            self._families[name] = family
            return family
        if family.kind != make().kind or family.label_names != tuple(labels):
            raise ValueError(
                f"metric {name!r} re-registered with a different type or "
                f"label set ({family.kind}/{family.label_names})"
            )
        return family

    def get(self, name) -> MetricFamily | None:
        """The family registered under ``name`` (None when absent)."""
        return self._families.get(name)

    def value(self, name, **labels):
        """Convenience: the current value of one sample (0 if absent)."""
        family = self._families.get(name)
        if family is None:
            return 0
        if labels:
            return family.labels(**labels).value
        return family.value

    # -- collectors and snapshots --------------------------------------

    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at every snapshot.  Collectors read
        subsystem state and ``set`` gauges; they must not mutate the
        simulation."""
        if self.enabled:
            self._collectors.append(fn)

    def snapshot(self) -> dict:
        """Run collectors, then return every sample as an ordered dict
        sorted by sample name — deterministic across identical runs."""
        if not self.enabled:
            return {}
        t0 = _perf_ns()
        for fn in self._collectors:
            fn(self)
        samples = []
        for name in sorted(self._families):
            samples.extend(self._families[name].samples())
        out = dict(sorted(samples))
        self.self_ns += _perf_ns() - t0
        return out


#: shared disabled registry — components not wired to a telemetry
#: context bind their handles here and pay only a no-op call.
NULL_REGISTRY = MetricsRegistry(enabled=False)
