"""Object-centric inefficiency profiler (ROADMAP item 4).

DJXPerf-style attribution: the aggregate counters say *how much* the
protocol worked; this profiler says *which objects* — and, through the
allocation-site labels captured at GOS registration, *which workload
lines* — made it work.  It rides the same nullable-observer slot as the
tracer and race detector (``hlrc.objprof``), certified ≤ reads-sim-state
by the EFF1xx gate: hooks fold the fault/diff/invalidation/OAL event
stream into per-object :class:`ObjLifetime` records and never advance a
simulated clock, charge CPU, or send a message, so a profiled run is
byte-identical to an unprofiled one.

Event sources folded per object:

* **faults** (:meth:`ObjectProfiler.on_fault`, from
  ``HomeBasedLRC._fault_remote``) — fetch round trips, split by
  faulting node; a fault that replaces an invalidated copy is a
  *refault*.  Each fault opens a read *epoch* on the faulting node.
* **diffs** (:meth:`on_diff`, interval close) — flushes by cache-copy
  writers, with dirty-byte mass.
* **invalidations** (:meth:`on_invalidations`, write-notice
  application) — closes the node's read epoch; an epoch that saw zero
  reads means the faulted-in copy was never read before dying — a
  *dead transfer*.
* **interval access summaries** (:meth:`on_interval_close`) — exact
  per-node read/write mass and the writer-node sequence (alternation
  count feeds the ping-pong detector).  Epoch read counts accumulate
  here: invalidations only happen at sync points, so interval epochs
  align with copy epochs.
* **OAL batches** (:meth:`on_oal_batch`, from the access profiler) —
  Horvitz–Thompson-weighted access mass: ``scaled_bytes`` is already
  gap-scaled by the active sampling backend, so summing it estimates
  the site's true access mass from the sampled subset.
* **barrier releases** (:meth:`on_barrier_release`) — lifetime *phase*
  boundaries; each record keeps the first/last phase it was active in.

Pattern detection and simulated-cost scoring are deferred to report
time (:mod:`repro.obs.patterns` / :mod:`repro.obs.report`), outside the
observer hooks.
"""

from __future__ import annotations

__all__ = ["ObjLifetime", "ObjectProfiler"]


class ObjLifetime:
    """Per-object lifetime profile folded from the protocol event stream."""

    __slots__ = (
        "faults", "refaults", "faults_by_node", "diffs", "diff_bytes",
        "invalidations", "dead_transfers", "reads_by_node", "writes_by_node",
        "writer_nodes", "writer_threads", "last_writer_node",
        "writer_alternations", "ht_bytes", "first_phase", "last_phase",
        "_epoch_reads",
    )

    def __init__(self) -> None:
        #: remote fetch round trips, total and per faulting node.
        self.faults = 0
        self.refaults = 0
        self.faults_by_node: dict[int, int] = {}
        #: diff flushes by cache-copy writers.
        self.diffs = 0
        self.diff_bytes = 0
        #: cache copies of this object invalidated by write notices.
        self.invalidations = 0
        #: faulted-in copies invalidated before a single read.
        self.dead_transfers = 0
        #: exact access mass per node (from interval summaries).
        self.reads_by_node: dict[int, int] = {}
        self.writes_by_node: dict[int, int] = {}
        #: writer-interval sequence: distinct nodes, thread ids, and the
        #: number of times the writing node changed between intervals.
        self.writer_nodes: set[int] = set()
        self.writer_threads: set[int] = set()
        self.last_writer_node = -1
        self.writer_alternations = 0
        #: Horvitz–Thompson-weighted access mass from OAL entries.
        self.ht_bytes = 0
        #: barrier-release phase span this object was active in.
        self.first_phase = -1
        self.last_phase = -1
        #: open read epochs: faulting node -> reads since that fault.
        self._epoch_reads: dict[int, int] = {}


class ObjectProfiler:
    """Pure observer folding protocol events into per-object lifetimes.

    Attach with ``HomeBasedLRC.attach_observer("objprof", prof)`` (the
    ``DJVM(objprof=True)`` switch does this); wire
    ``AccessProfiler.objprof`` for the HT-weighted OAL feed.
    """

    __slots__ = ("records", "phase", "phase_release_ns", "intervals")

    def __init__(self) -> None:
        #: obj_id -> :class:`ObjLifetime`.
        self.records: dict[int, ObjLifetime] = {}
        #: current lifetime phase (barrier releases seen so far).
        self.phase = 0
        #: simulated release time of each completed phase.
        self.phase_release_ns: list[int] = []
        #: interval closes observed.
        self.intervals = 0

    def _record(self, obj_id: int) -> ObjLifetime:
        rec = self.records.get(obj_id)
        if rec is None:
            rec = ObjLifetime()
            self.records[obj_id] = rec
        if rec.first_phase < 0:
            rec.first_phase = self.phase
        rec.last_phase = self.phase
        return rec

    # ------------------------------------------------------------------
    # protocol event hooks (called from HomeBasedLRC / AccessProfiler)
    # ------------------------------------------------------------------

    def on_fault(self, thread, obj, refault: bool) -> None:
        """One remote fetch round trip by ``thread``; ``refault`` when it
        replaced a previously-invalidated copy."""
        rec = self._record(obj.obj_id)
        node = thread.node_id
        rec.faults += 1
        rec.faults_by_node[node] = rec.faults_by_node.get(node, 0) + 1
        if refault:
            rec.refaults += 1
        # A fresh copy landed: open its read epoch.
        rec._epoch_reads[node] = 0

    def on_diff(self, thread, obj_id: int, dirty: int) -> None:
        """One diff flush of ``dirty`` bytes at interval close."""
        rec = self._record(obj_id)
        rec.diffs += 1
        rec.diff_bytes += dirty

    def on_invalidations(self, node_id: int, obj_ids) -> None:
        """Write-notice application invalidated ``obj_ids`` on ``node_id``."""
        for obj_id in obj_ids:
            rec = self._record(obj_id)
            rec.invalidations += 1
            reads = rec._epoch_reads.pop(node_id, None)
            if reads == 0:
                rec.dead_transfers += 1

    def on_interval_close(self, thread, interval) -> None:
        """Fold the closed interval's exact access summaries."""
        node = thread.node_id
        tid = thread.thread_id
        for obj_id, summary in interval.accesses.items():
            rec = self._record(obj_id)
            if summary.reads:
                rec.reads_by_node[node] = rec.reads_by_node.get(node, 0) + summary.reads
                if node in rec._epoch_reads:
                    rec._epoch_reads[node] += summary.reads
            if summary.writes:
                rec.writes_by_node[node] = rec.writes_by_node.get(node, 0) + summary.writes
                rec.writer_nodes.add(node)
                rec.writer_threads.add(tid)
                if rec.last_writer_node != node:
                    if rec.last_writer_node >= 0:
                        rec.writer_alternations += 1
                    rec.last_writer_node = node
        self.intervals += 1

    def on_barrier_release(self, release_ns: int) -> None:
        """A barrier episode completed: advance the lifetime phase."""
        self.phase += 1
        self.phase_release_ns.append(release_ns)

    def on_oal_batch(self, node_id: int, entries) -> None:
        """One shipped OAL batch: accumulate HT-scaled access mass."""
        for entry in entries:
            rec = self._record(entry.obj_id)
            rec.ht_bytes += entry.scaled_bytes
