"""Self-overhead accounting: what does observing cost?

Two axes, deliberately kept apart:

* **Simulated overhead** — the paper's numbers.  Profiling work is
  charged to simulated CPU buckets (:class:`~repro.sim.costs.CpuAccounting`),
  so Tables II/III/V compare simulated execution times:
  :func:`overhead_frac` and :func:`profiling_attribution` are the
  arithmetic those benchmarks share.
* **Host (wall-clock) overhead** — what the telemetry layer itself
  costs *us*.  Mertz & Nunes argue an adaptive monitor must measure its
  own overhead; here :func:`measure` times a base run against a
  telemetry-on run of the same workload and combines that with the
  layer's self-reported ``self_ns`` (real ns spent inside tracer/
  registry calls).  The ``make obs`` gate asserts the resulting
  fraction stays under its budget.

Nothing in this module touches simulated state; it only reads finished
runs.  (Wall-clock reads are allowed here — ``repro.obs`` sits outside
the deterministic core that simlint SIM001 polices.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = [
    "OverheadReport",
    "measure",
    "overhead_frac",
    "profiling_attribution",
]

_perf_ns = time.perf_counter_ns


def overhead_frac(base, with_overhead) -> float:
    """Relative overhead ``(with - base) / base`` (0.0 for a 0 base)."""
    if base == 0:
        return 0.0
    return (with_overhead - base) / base


def profiling_attribution(cpu) -> dict[str, int]:
    """Decompose one :class:`~repro.sim.costs.CpuAccounting` into the
    base-runtime vs profiler-work split (simulated ns)."""
    base_ns = (
        cpu.compute_ns + cpu.access_ns + cpu.protocol_ns + cpu.network_wait_ns
        + cpu.migration_ns
    )
    return {
        "base_ns": base_ns,
        "profiling_ns": cpu.profiling_ns,
        "oal_logging_ns": cpu.oal_logging_ns,
        "oal_packing_ns": cpu.oal_packing_ns,
        "resampling_ns": cpu.resampling_ns,
        "stack_sampling_ns": cpu.stack_sampling_ns,
        "footprinting_ns": cpu.footprinting_ns,
        "resolution_ns": cpu.resolution_ns,
        "total_ns": cpu.total_ns,
    }


@dataclass
class OverheadReport:
    """Wall-clock cost of running with telemetry attached."""

    #: best-of wall seconds for the telemetry-off run.
    base_wall_s: float
    #: best-of wall seconds for the telemetry-on run.
    telemetry_wall_s: float
    #: telemetry's self-reported host ns (tracer + registry internals).
    observer_wall_ns: int = 0
    #: spans recorded during the telemetry run (0 when tracing is off).
    spans: int = 0
    #: metric samples in the final snapshot.
    samples: int = 0

    @property
    def overhead_frac(self) -> float:
        """End-to-end wall overhead of switching telemetry on."""
        return overhead_frac(self.base_wall_s, self.telemetry_wall_s)

    @property
    def observer_frac(self) -> float:
        """Self-reported observer time as a share of the telemetry run."""
        if self.telemetry_wall_s == 0:
            return 0.0
        return (self.observer_wall_ns / 1e9) / self.telemetry_wall_s

    def render(self) -> str:
        return (
            f"base {self.base_wall_s * 1e3:.1f} ms | "
            f"telemetry {self.telemetry_wall_s * 1e3:.1f} ms | "
            f"overhead {self.overhead_frac * 100:+.1f}% | "
            f"observer self-report {self.observer_wall_ns / 1e6:.2f} ms "
            f"({self.observer_frac * 100:.1f}% of run) | "
            f"{self.spans} spans, {self.samples} samples"
        )


def measure(run_base, run_telemetry, *, repeats: int = 2) -> OverheadReport:
    """Measure telemetry wall overhead for one workload.

    ``run_base()`` must execute the workload with telemetry off;
    ``run_telemetry()`` with telemetry on, returning the bound
    :class:`~repro.obs.Telemetry` context of that run.  Both are run
    ``repeats`` times; best-of wall times are compared (same policy as
    the perf harness: best-of filters scheduler noise).
    """
    base_wall = min(_timed(run_base) for _ in range(repeats))
    best_telem_wall = None
    telemetry = None
    for _ in range(repeats):
        wall, ctx = _timed_value(run_telemetry)
        if best_telem_wall is None or wall < best_telem_wall:
            best_telem_wall = wall
            telemetry = ctx
    snapshot = telemetry.snapshot() if telemetry is not None else {}
    return OverheadReport(
        base_wall_s=base_wall,
        telemetry_wall_s=best_telem_wall,
        observer_wall_ns=telemetry.self_wall_ns if telemetry is not None else 0,
        spans=len(telemetry.tracer.spans)
        if telemetry is not None and telemetry.tracer is not None
        else 0,
        samples=len(snapshot),
    )


def _timed(fn) -> float:
    t0 = _perf_ns()
    fn()
    return (_perf_ns() - t0) / 1e9


def _timed_value(fn):
    t0 = _perf_ns()
    value = fn()
    return (_perf_ns() - t0) / 1e9, value
