"""Inefficiency pattern detectors over per-object lifetime profiles.

Each detector names one way the HLRC protocol burned simulated time on
an object and prices the waste with the same sticky-set cost model the
migration planner uses (:func:`repro.core.costmodel.object_fault_ns`),
so the report's "wasted ns" and the balancer's gain/cost estimates are
in the same currency:

* **ping-pong** — the writing node alternated; every alternation costs
  the new writer a fault (fetch round trip) and, for cache writers, a
  diff flush back home.
* **dead-transfer** — a faulted-in copy was invalidated before a single
  read: the fetch round trip moved bytes nobody consumed.
* **over-invalidated** — a read-mostly object (reads ≥
  :data:`READ_MOSTLY_RATIO` × writes) kept getting invalidated and
  refaulted; each refault is a round trip a write-shy object should not
  pay.
* **contended-home** — remote access mass dwarfs the home node's; the
  dominant remote node's faults would vanish if the object were homed
  there (the report's ``target_node``).

Detection runs at *report* time on finished
:class:`~repro.obs.objprof.ObjLifetime` records — nothing here executes
inside the observer hooks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.costmodel import object_fault_ns

__all__ = [
    "PATTERNS",
    "ObjectFinding",
    "detect_object_patterns",
]

#: detector thresholds, deliberately module-level so ablations can tune.
#: A single cross-node hand-off already qualifies as ping-pong: it costs
#: a full fault round trip plus a diff flush, and it matches the static
#: sharing analysis's multi-writer "ping-pong" class (which counts
#: writers, not alternations) so the two feeds name the same objects.
PING_PONG_MIN_ALTERNATIONS = 1
READ_MOSTLY_RATIO = 2.0
OVER_INVALIDATED_MIN_INVALIDATIONS = 2
CONTENDED_REMOTE_RATIO = 2.0
CONTENDED_MIN_FAULTS = 2

#: diff wire overhead (mirrors repro.dsm.hlrc.DIFF_OVERHEAD; imported
#: lazily there to keep this module import-light for report consumers).
_DIFF_OVERHEAD = 24

#: every pattern a detector can emit, in report order.
PATTERNS = ("ping-pong", "dead-transfer", "over-invalidated", "contended-home")


@dataclass(frozen=True, slots=True)
class ObjectFinding:
    """One detected inefficiency on one object."""

    pattern: str
    obj_id: int
    #: estimated simulated time the pattern wasted (ns).
    wasted_ns: int
    #: suggested home for contended-home; None otherwise.
    target_node: int | None
    detail: str


def detect_object_patterns(rec, obj, costs, network) -> list[ObjectFinding]:
    """Run every detector on one object's lifetime record.

    ``rec`` is an :class:`~repro.obs.objprof.ObjLifetime`, ``obj`` the
    GOS :class:`~repro.heap.objects.HeapObject` it profiles.  Returns
    zero or more findings (patterns are not mutually exclusive — a
    ping-ponging object can also be mis-homed).
    """
    size = obj.size_bytes
    fault_ns = object_fault_ns(costs, network, size)
    out: list[ObjectFinding] = []

    # ping-pong: the writing node alternated; price each hand-off as a
    # fault plus (when the writers were cache copies) the diff flush.
    if rec.writer_alternations >= PING_PONG_MIN_ALTERNATIONS and len(rec.writer_nodes) >= 2:
        if rec.diffs:
            avg_dirty = rec.diff_bytes // rec.diffs
            diff_ns = int(avg_dirty * costs.diff_ns_per_byte) + network.transfer_time_ns(
                avg_dirty + _DIFF_OVERHEAD
            )
        else:
            diff_ns = 0
        wasted = rec.writer_alternations * (fault_ns + diff_ns)
        out.append(
            ObjectFinding(
                pattern="ping-pong",
                obj_id=obj.obj_id,
                wasted_ns=wasted,
                target_node=None,
                detail=(
                    f"{rec.writer_alternations} writer hand-offs across "
                    f"nodes {sorted(rec.writer_nodes)}"
                ),
            )
        )

    # dead-transfer: copies fetched, then invalidated unread.
    if rec.dead_transfers:
        out.append(
            ObjectFinding(
                pattern="dead-transfer",
                obj_id=obj.obj_id,
                wasted_ns=rec.dead_transfers * fault_ns,
                target_node=None,
                detail=f"{rec.dead_transfers} faulted-in copies died unread",
            )
        )

    total_reads = sum(rec.reads_by_node.values())
    total_writes = sum(rec.writes_by_node.values())

    # over-invalidated read-mostly: refaults on an object that is mostly
    # read; each refault round trip is the invalidation's price.
    if (
        rec.refaults
        and rec.invalidations >= OVER_INVALIDATED_MIN_INVALIDATIONS
        and total_reads >= READ_MOSTLY_RATIO * max(1, total_writes)
    ):
        out.append(
            ObjectFinding(
                pattern="over-invalidated",
                obj_id=obj.obj_id,
                wasted_ns=rec.refaults * fault_ns,
                target_node=None,
                detail=(
                    f"read-mostly ({total_reads}r/{total_writes}w) yet "
                    f"invalidated {rec.invalidations}x, refaulted {rec.refaults}x"
                ),
            )
        )

    # contended-home: remote access mass dwarfs the home node's; the
    # dominant remote node's faults vanish if the object moves there.
    home = obj.home_node
    home_mass = rec.reads_by_node.get(home, 0) + rec.writes_by_node.get(home, 0)
    remote_mass = total_reads + total_writes - home_mass
    if rec.faults >= CONTENDED_MIN_FAULTS and remote_mass >= CONTENDED_REMOTE_RATIO * max(
        1, home_mass
    ):
        dominant = None
        dominant_mass = 0
        for node in sorted(set(rec.reads_by_node) | set(rec.writes_by_node)):
            if node == home:
                continue
            mass = rec.reads_by_node.get(node, 0) + rec.writes_by_node.get(node, 0)
            if mass > dominant_mass:
                dominant, dominant_mass = node, mass
        if dominant is not None:
            saved_faults = rec.faults_by_node.get(dominant, 0)
            if saved_faults:
                out.append(
                    ObjectFinding(
                        pattern="contended-home",
                        obj_id=obj.obj_id,
                        wasted_ns=saved_faults * fault_ns,
                        target_node=dominant,
                        detail=(
                            f"remote mass {remote_mass} vs home {home_mass} "
                            f"(home node {home}); node {dominant} faulted "
                            f"{saved_faults}x"
                        ),
                    )
                )
    return out
