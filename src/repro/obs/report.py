"""Ranked object-centric inefficiency report.

Folds an :class:`~repro.obs.objprof.ObjectProfiler`'s per-object
lifetime records into per-allocation-site statistics, runs the pattern
detectors (:mod:`repro.obs.patterns`), aggregates findings per
(pattern, site) and ranks them by estimated wasted simulated time —
the profiler-as-work-list output the placement layer consumes
(:func:`repro.placement.candidates.candidates_from_objprof`).

Attribution axes:

* **allocation site** — the workload's ``site=`` label, resolved to a
  ``file:line`` through the origins the GOS captured at registration
  (:attr:`~repro.heap.heap.GlobalObjectSpace.site_origins`).
* **wasted ns** — each finding priced by
  :func:`repro.core.costmodel.object_fault_ns` on exact protocol event
  counts (faults/diffs/invalidations are never sampled).
* **HT access mass** — per-site access bytes estimated from the sampled
  OAL stream; ``scaled_bytes`` carries the active backend's
  Horvitz–Thompson weight (gap scaling), so the estimate is
  sampling-rate-corrected without a re-run at full sampling.

Everything here runs on finished runs — report construction is outside
the observer hooks and free to allocate, sort and price at will.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.patterns import detect_object_patterns

__all__ = ["ObjprofReport", "ReportFinding", "SiteStats", "build_report"]


@dataclass(slots=True)
class SiteStats:
    """Aggregated lifetime statistics of one allocation site."""

    site: str
    #: ``file:line`` of the allocating workload code ("" when unknown).
    origin: str
    n_objects: int = 0
    faults: int = 0
    refaults: int = 0
    diffs: int = 0
    diff_bytes: int = 0
    invalidations: int = 0
    dead_transfers: int = 0
    reads: int = 0
    writes: int = 0
    #: Horvitz–Thompson-corrected access mass from the sampled OALs.
    ht_bytes: int = 0
    #: total wasted ns attributed to this site across all findings.
    wasted_ns: int = 0
    #: barrier-phase span the site's objects were active in.
    first_phase: int = -1
    last_phase: int = -1

    def to_json(self) -> dict:
        return {
            "site": self.site,
            "origin": self.origin,
            "n_objects": self.n_objects,
            "faults": self.faults,
            "refaults": self.refaults,
            "diffs": self.diffs,
            "diff_bytes": self.diff_bytes,
            "invalidations": self.invalidations,
            "dead_transfers": self.dead_transfers,
            "reads": self.reads,
            "writes": self.writes,
            "ht_bytes": self.ht_bytes,
            "wasted_ns": self.wasted_ns,
            "first_phase": self.first_phase,
            "last_phase": self.last_phase,
        }


@dataclass(slots=True)
class ReportFinding:
    """One pattern aggregated over a site's objects."""

    pattern: str
    site: str
    origin: str
    obj_ids: tuple[int, ...]
    #: writer threads observed on the covered objects (sorted).
    threads: tuple[int, ...]
    wasted_ns: int
    #: suggested home node (contended-home only).
    target_node: int | None
    detail: str

    @property
    def n_objects(self) -> int:
        return len(self.obj_ids)

    def render(self) -> str:
        where = f" -> node {self.target_node}" if self.target_node is not None else ""
        return (
            f"{self.pattern:<16} site {self.site:<20} "
            f"{self.n_objects:>4} obj  {self.wasted_ns / 1e6:>9.3f} ms{where}  "
            f"[{self.origin or '?'}] {self.detail}"
        )

    def to_json(self) -> dict:
        return {
            "pattern": self.pattern,
            "site": self.site,
            "origin": self.origin,
            "obj_ids": list(self.obj_ids),
            "threads": list(self.threads),
            "n_objects": self.n_objects,
            "wasted_ns": self.wasted_ns,
            "target_node": self.target_node,
            "detail": self.detail,
        }


@dataclass
class ObjprofReport:
    """The complete object-centric inefficiency report for one run."""

    workload: str
    n_nodes: int
    backend: str
    #: barrier-release phases the run went through.
    phases: int
    #: objects with at least one profiled event.
    n_objects: int
    sites: list[SiteStats] = field(default_factory=list)
    #: every aggregated finding, ranked by descending wasted ns.
    findings: list[ReportFinding] = field(default_factory=list)

    @property
    def patterns_found(self) -> list[str]:
        """Distinct patterns present, in rank order of first appearance."""
        seen: list[str] = []
        for f in self.findings:
            if f.pattern not in seen:
                seen.append(f.pattern)
        return seen

    def render(self, top: int = 10) -> str:
        lines = [
            f"# object-centric inefficiency report: {self.workload} "
            f"on {self.n_nodes} nodes",
            f"# backend {self.backend} | {self.phases} phases | "
            f"{self.n_objects} profiled objects | {len(self.findings)} finding(s) "
            f"across {len(self.patterns_found)} pattern(s)",
            "# access mass HT-corrected by the backend's gap weights; "
            "event counts exact",
        ]
        for rank, finding in enumerate(self.findings[:top], start=1):
            lines.append(f"{rank:>4}  {finding.render()}")
        if len(self.findings) > top:
            lines.append(f"      ... {len(self.findings) - top} more (use --top)")
        lines.append("# per-site lifetime profiles (HT access mass, phase span):")
        for s in self.sites:
            lines.append(
                f"  site {s.site:<20} [{s.origin or '?':<36}] {s.n_objects:>5} obj  "
                f"{s.faults:>6} faults  {s.invalidations:>6} inval  "
                f"{s.ht_bytes:>10} HT-B  phases {s.first_phase}..{s.last_phase}  "
                f"wasted {s.wasted_ns / 1e6:.3f} ms"
            )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """The machine feed ``placement.candidates`` consumes."""
        return {
            "kind": "objprof-report",
            "workload": self.workload,
            "n_nodes": self.n_nodes,
            "backend": self.backend,
            "phases": self.phases,
            "n_objects": self.n_objects,
            "sites": [s.to_json() for s in self.sites],
            "findings": [f.to_json() for f in self.findings],
        }


def build_report(
    prof,
    gos,
    costs,
    network,
    *,
    workload: str = "",
    n_nodes: int = 0,
    backend: str = "",
) -> ObjprofReport:
    """Aggregate one run's :class:`ObjectProfiler` state into the report.

    ``gos`` resolves object -> (site label, size, home); ``costs`` and
    ``network`` price the findings.  Deterministic: objects are walked
    in id order and every aggregate is sorted, so identical runs render
    identical reports byte for byte.
    """
    site_stats: dict[str, SiteStats] = {}
    # (pattern, site, target_node) -> [obj_ids, threads, wasted, detail]
    grouped: dict[tuple[str, str, int | None], list] = {}

    for obj_id in sorted(prof.records):
        rec = prof.records[obj_id]
        obj = gos.get(obj_id)
        site = obj.site if obj.site is not None else obj.jclass.name
        origin = gos.site_origins.get(site, "")
        stats = site_stats.get(site)
        if stats is None:
            stats = site_stats[site] = SiteStats(site=site, origin=origin)
        stats.n_objects += 1
        stats.faults += rec.faults
        stats.refaults += rec.refaults
        stats.diffs += rec.diffs
        stats.diff_bytes += rec.diff_bytes
        stats.invalidations += rec.invalidations
        stats.dead_transfers += rec.dead_transfers
        stats.reads += sum(rec.reads_by_node.values())
        stats.writes += sum(rec.writes_by_node.values())
        stats.ht_bytes += rec.ht_bytes
        if rec.first_phase >= 0:
            if stats.first_phase < 0 or rec.first_phase < stats.first_phase:
                stats.first_phase = rec.first_phase
            if rec.last_phase > stats.last_phase:
                stats.last_phase = rec.last_phase

        for finding in detect_object_patterns(rec, obj, costs, network):
            key = (finding.pattern, site, finding.target_node)
            group = grouped.get(key)
            if group is None:
                group = grouped[key] = [[], set(), 0, finding.detail]
            group[0].append(obj_id)
            group[1].update(rec.writer_threads)
            group[2] += finding.wasted_ns
            stats.wasted_ns += finding.wasted_ns

    findings = [
        ReportFinding(
            pattern=pattern,
            site=site,
            origin=site_stats[site].origin,
            obj_ids=tuple(obj_ids),
            threads=tuple(sorted(threads)),
            wasted_ns=wasted,
            target_node=target,
            detail=detail if len(obj_ids) == 1 else f"{len(obj_ids)} obj, e.g. {detail}",
        )
        for (pattern, site, target), (obj_ids, threads, wasted, detail) in grouped.items()
    ]
    findings.sort(
        key=lambda f: (-f.wasted_ns, f.pattern, f.site, -1 if f.target_node is None else f.target_node)
    )
    sites = sorted(site_stats.values(), key=lambda s: (-s.wasted_ns, s.site))
    return ObjprofReport(
        workload=workload,
        n_nodes=n_nodes,
        backend=backend,
        phases=prof.phase,
        n_objects=len(prof.records),
        sites=sites,
        findings=findings,
    )
