"""Span tracer: begin/end intervals in *simulated* time.

The tracer rides the same nullable-observer slot pattern as the
protocol sanitizer and the race detector: hot paths hold a ``tracer``
attribute that is ``None`` by default and check it with one ``is not
None`` branch.  When attached, emitters hand it timestamps read off the
simulated clocks — the tracer never advances any clock, charges no CPU
cost and sends no messages, so a traced run is byte-identical to an
untraced one.

Span taxonomy (category → names):

* ``interval`` — one HLRC interval per thread (``begin``/``end`` pair
  bracketing everything the thread did between two sync points).
* ``dsm`` — ``fault`` (remote object fetch round trip) and ``diff``
  (per-object diff flush at interval close), children of the enclosing
  interval.
* ``sync`` — ``barrier_wait`` from barrier arrival to resume.
* ``runtime`` — ``migration`` (freeze → ship → thaw, incl. prefetch).
* ``profiler`` — ``oal_flush`` (pack + ship one OAL batch) and
  ``tcm_window`` (master daemon computing one correlation window).

Every span records the *node* it executed on and the *track* (thread
id, or a synthetic daemon track) it belongs to — exactly the two axes
the Chrome-trace exporter maps to process and thread rows.

Self-overhead: each emitter brackets its own work with
``time.perf_counter_ns`` and accumulates into :attr:`SpanTracer.self_ns`
— real host time spent observing, never mixed into simulated results.
"""

from __future__ import annotations

import time

__all__ = ["Span", "SpanTracer", "TCM_TRACK"]

_perf_ns = time.perf_counter_ns

#: synthetic track id for the master correlation daemon (threads use
#: their non-negative thread ids).
TCM_TRACK = -1


class Span:
    """One completed (or still-open) span on a (node, track) row."""

    __slots__ = ("name", "cat", "node", "track", "begin_ns", "end_ns", "seq", "args")

    def __init__(self, name, cat, node, track, begin_ns, end_ns, seq, args=None):
        self.name = name
        self.cat = cat
        self.node = node
        self.track = track
        self.begin_ns = begin_ns
        self.end_ns = end_ns
        self.seq = seq
        self.args = args

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.begin_ns

    def contains(self, other: "Span") -> bool:
        """Temporal containment on the same track."""
        return (
            self.track == other.track
            and self.begin_ns <= other.begin_ns
            and other.end_ns <= self.end_ns
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, cat={self.cat!r}, node={self.node}, "
            f"track={self.track}, [{self.begin_ns}, {self.end_ns}])"
        )


class SpanTracer:
    """Collects spans; attach to the runtime via the nullable slots
    (``hlrc.tracer``, ``migration.tracer``, profiler components)."""

    __slots__ = (
        "spans", "counts", "self_ns", "_seq", "_open_interval", "_barrier_ns",
        "_tcm_busy_ns",
    )

    def __init__(self) -> None:
        #: completed spans in emission order.
        self.spans: list[Span] = []
        #: span counts by name (deterministic; exported as a gauge).
        self.counts: dict[str, int] = {}
        #: real host ns the tracer spent recording (self-overhead).
        self.self_ns = 0
        self._seq = 0
        #: open interval span per thread id.
        self._open_interval: dict[int, Span] = {}
        #: barrier arrival time per thread id.
        self._barrier_ns: dict[int, int] = {}
        #: TCM daemon busy cursor — windows are serialized on its track.
        self._tcm_busy_ns = 0

    # ------------------------------------------------------------------
    # generic emitters
    # ------------------------------------------------------------------

    def add(self, name, cat, node, track, begin_ns, end_ns, args=None) -> Span:
        """Record one complete span."""
        t0 = _perf_ns()
        span = Span(name, cat, node, track, begin_ns, end_ns, self._seq, args)
        self._seq += 1
        self.spans.append(span)
        self.counts[name] = self.counts.get(name, 0) + 1
        self.self_ns += _perf_ns() - t0
        return span

    # ------------------------------------------------------------------
    # domain emitters (called from the runtime's nullable slots)
    # ------------------------------------------------------------------

    def interval_open(self, thread, now_ns: int) -> None:
        t0 = _perf_ns()
        span = Span("interval", "interval", thread.node_id, thread.thread_id,
                    now_ns, -1, self._seq, None)
        self._seq += 1
        self._open_interval[thread.thread_id] = span
        self.self_ns += _perf_ns() - t0

    def interval_close(self, thread, interval, now_ns: int) -> None:
        t0 = _perf_ns()
        span = self._open_interval.pop(thread.thread_id, None)
        if span is not None:
            span.end_ns = now_ns
            span.args = {"interval_id": interval.interval_id}
            self.spans.append(span)
            self.counts["interval"] = self.counts.get("interval", 0) + 1
        self.self_ns += _perf_ns() - t0

    def fault(self, thread, obj_id: int, begin_ns: int, end_ns: int, n_objects: int) -> None:
        self.add(
            "fault", "dsm", thread.node_id, thread.thread_id, begin_ns, end_ns,
            {"obj_id": obj_id, "objects": n_objects},
        )

    def diff(self, thread, obj_id: int, nbytes: int, begin_ns: int, end_ns: int) -> None:
        self.add(
            "diff", "dsm", thread.node_id, thread.thread_id, begin_ns, end_ns,
            {"obj_id": obj_id, "bytes": nbytes},
        )

    def barrier_arrive(self, thread, barrier_id: int, now_ns: int) -> None:
        t0 = _perf_ns()
        self._barrier_ns[thread.thread_id] = now_ns
        self.self_ns += _perf_ns() - t0

    def barrier_resume(self, thread, barrier_id: int, now_ns: int) -> None:
        arrive_ns = self._barrier_ns.pop(thread.thread_id, None)
        if arrive_ns is None:
            return
        self.add(
            "barrier_wait", "sync", thread.node_id, thread.thread_id,
            arrive_ns, now_ns, {"barrier_id": barrier_id},
        )

    def migration(self, thread, from_node: int, to_node: int,
                  begin_ns: int, end_ns: int, prefetched: int) -> None:
        # attributed to the destination node: that row shows the thread
        # arriving (the freeze happened on from_node, recorded in args).
        self.add(
            "migration", "runtime", to_node, thread.thread_id, begin_ns, end_ns,
            {"from": from_node, "to": to_node, "prefetched": prefetched},
        )

    def oal_flush(self, thread, entries: int, wire_bytes: int,
                  begin_ns: int, end_ns: int) -> None:
        self.add(
            "oal_flush", "profiler", thread.node_id, thread.thread_id,
            begin_ns, end_ns, {"entries": entries, "bytes": wire_bytes},
        )

    def tcm_window(self, master_node: int, begin_ns: int, duration_ns: int,
                   entries: int, window_index: int) -> None:
        # the daemon is sequential: a window delivered while the previous
        # one is still computing queues behind it on the daemon track.
        begin = max(begin_ns, self._tcm_busy_ns)
        end = begin + duration_ns
        self._tcm_busy_ns = end
        self.add(
            "tcm_window", "profiler", master_node, TCM_TRACK, begin, end,
            {"entries": entries, "window": window_index},
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def open_spans(self) -> list[Span]:
        """Intervals opened but never closed (empty after a clean run)."""
        return list(self._open_interval.values())
