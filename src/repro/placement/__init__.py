"""Exploitation of the profiling output: correlation-aware thread
placement and load balancing.  The paper defers the full policy to
future work (Section VI) but motivates it throughout — these modules
implement the natural policies the profiles enable, used by the
placement examples and the ablation benchmarks."""

from repro.placement.partition import greedy_partition, refine_partition, partition_quality
from repro.placement.balancer import CorrelationAwareBalancer, MigrationProposal
from repro.placement.candidates import PlacementCandidate, candidates_from_static
from repro.placement.runtime_balancer import OnlineRebalancer

__all__ = [
    "greedy_partition",
    "refine_partition",
    "partition_quality",
    "CorrelationAwareBalancer",
    "MigrationProposal",
    "OnlineRebalancer",
    "PlacementCandidate",
    "candidates_from_static",
]
