"""Correlation-aware load balancer.

Combines the two profiling outputs the paper produces:

* the **TCM** says which thread pairs share heavily (migration *gain*);
* the **sticky-set footprint** says what a migration *costs* (stack plus
  predictable post-migration faults, or the prefetch bundle).

The balancer proposes profitable migrations: moves whose estimated
communication saving over a horizon exceeds the migration cost, subject
to a per-node load cap.  This is the "advanced load balancing policy"
sketched as future work in Section VI, implemented in its natural form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costmodel import MigrationCostModel


@dataclass
class MigrationProposal:
    """One recommended migration and its expected economics."""

    thread_id: int
    from_node: int
    to_node: int
    gain_ns: float
    cost_ns: float

    @property
    def profit_ns(self) -> float:
        """Expected gain minus migration cost."""
        return self.gain_ns - self.cost_ns


class CorrelationAwareBalancer:
    """Greedy migration proposer over a TCM and per-thread footprints."""

    def __init__(
        self,
        cost_model: MigrationCostModel,
        *,
        horizon_intervals: int = 10,
        max_load_factor: float = 1.5,
    ) -> None:
        if horizon_intervals < 1:
            raise ValueError(f"horizon must be >= 1 interval, got {horizon_intervals}")
        if max_load_factor < 1.0:
            raise ValueError(f"max_load_factor must be >= 1, got {max_load_factor}")
        self.cost_model = cost_model
        self.horizon_intervals = horizon_intervals
        self.max_load_factor = max_load_factor

    def propose(
        self,
        tcm: np.ndarray,
        placement: dict[int, int],
        n_nodes: int,
        *,
        footprints: dict[int, dict[str, float]] | None = None,
        stack_slots: dict[int, int] | None = None,
        max_proposals: int | None = None,
    ) -> list[MigrationProposal]:
        """Return profitable migrations, best first.

        ``placement`` maps thread -> node.  ``footprints`` maps thread ->
        sticky footprint (missing threads are assumed prefetch-free);
        ``stack_slots`` maps thread -> stack size (defaults to 32 slots).
        Proposals are applied greedily against the load cap, and each
        thread is proposed at most once.
        """
        tcm = np.asarray(tcm, dtype=np.float64)
        n_threads = tcm.shape[0]
        placement = dict(placement)
        avg_load = max(1.0, n_threads / n_nodes)
        # A meaningful cap always leaves room for at least one incoming
        # thread above the average (a cap equal to the average forbids
        # every migration in a balanced system).
        cap = max(int(self.max_load_factor * avg_load), int(avg_load) + 1)
        load = {node: 0 for node in range(n_nodes)}
        for node in placement.values():
            load[node] = load.get(node, 0) + 1

        candidates: list[MigrationProposal] = []
        for t in range(n_threads):
            src = placement.get(t)
            if src is None:
                continue
            fp = (footprints or {}).get(t, {})
            slots = (stack_slots or {}).get(t, 32)
            estimate = self.cost_model.estimate(stack_slots=slots, sticky_footprint=fp)
            cost = float(estimate.direct_ns + min(estimate.indirect_fault_ns, estimate.prefetch_ns))
            for dst in range(n_nodes):
                if dst == src:
                    continue
                gain = self.cost_model.migration_gain_ns(
                    tcm, t, src, dst, placement, horizon_intervals=self.horizon_intervals
                )
                if gain > cost:
                    candidates.append(
                        MigrationProposal(
                            thread_id=t, from_node=src, to_node=dst, gain_ns=gain, cost_ns=cost
                        )
                    )
        candidates.sort(key=lambda p: p.profit_ns, reverse=True)

        chosen: list[MigrationProposal] = []
        moved: set[int] = set()
        for prop in candidates:
            if prop.thread_id in moved:
                continue
            if load[prop.to_node] + 1 > cap:
                continue
            # Re-evaluate the gain against the evolving placement: earlier
            # accepted moves may have changed this thread's economics.
            gain = self.cost_model.migration_gain_ns(
                tcm,
                prop.thread_id,
                prop.from_node,
                prop.to_node,
                placement,
                horizon_intervals=self.horizon_intervals,
            )
            if gain <= prop.cost_ns:
                continue
            chosen.append(
                MigrationProposal(
                    thread_id=prop.thread_id,
                    from_node=prop.from_node,
                    to_node=prop.to_node,
                    gain_ns=gain,
                    cost_ns=prop.cost_ns,
                )
            )
            moved.add(prop.thread_id)
            load[prop.from_node] -= 1
            load[prop.to_node] += 1
            placement[prop.thread_id] = prop.to_node
            if max_proposals is not None and len(chosen) >= max_proposals:
                break
        return chosen
