"""Placement candidates fed from the *static* sharing analysis.

The dynamic placement policies (:mod:`repro.placement.balancer`,
:mod:`repro.placement.runtime_balancer`) act on measured TCMs.  The
static sharing analysis (:mod:`repro.checks.staticflow.sharing`) can
propose the same two kinds of actions before a single op has run:

* **home-migration** — a ``single-writer`` object homed away from its
  writer's node pays a diff round-trip per flush interval for no reason;
  re-homing it to the writer is safe and strictly reduces traffic.
* **colocate-threads** — a ``ping-pong`` site's objects bounce between
  several writing nodes; co-locating the writing threads converts
  remote invalidations into local writes.

These are *candidates*, not decisions: the static view has no access
frequencies, so the dynamic balancer (or the operator) weighs them by
the predicted shared bytes and confirms against measured profiles.

The *dynamic* side of the same feed comes from the object-centric
inefficiency report (:mod:`repro.obs.report`):
:func:`candidates_from_objprof` maps its measured pattern findings onto
candidates, and :func:`merge_candidates` folds both provenances into
one work-list — measured evidence outranks static prediction at equal
(kind, site, target).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PlacementCandidate",
    "candidates_from_objprof",
    "candidates_from_static",
    "merge_candidates",
]

#: objprof pattern -> candidate kind.  Patterns without a placement
#: action still enter the feed — the work-list names every measured
#: inefficiency, and the balancer skips kinds it cannot act on.
_PATTERN_KINDS = {
    "contended-home": "home-migration",
    "ping-pong": "colocate-threads",
    "over-invalidated": "replicate-read-mostly",
    "dead-transfer": "trim-transfers",
}


@dataclass(frozen=True, slots=True)
class PlacementCandidate:
    """One statically derived placement suggestion."""

    #: ``"home-migration"`` or ``"colocate-threads"``.
    kind: str
    #: allocation-site label the suggestion aggregates over.
    site: str
    #: object ids covered (sorted).
    obj_ids: tuple[int, ...]
    #: threads involved (sorted): the writer(s) for home-migration, the
    #: thread set to co-locate for colocate-threads.
    threads: tuple[int, ...]
    #: destination node for home-migration; None for colocate-threads
    #: (the balancer picks the node).
    target_node: int | None
    #: predicted benefit proxy: total bytes of the covered objects.
    weight: int
    reason: str = field(repr=False)

    def render(self) -> str:
        """One-line human-readable form."""
        where = f" -> node {self.target_node}" if self.target_node is not None else ""
        return (
            f"{self.kind:<17} site {self.site:<20} {len(self.obj_ids)} obj, "
            f"threads {list(self.threads)}{where}, {self.weight} B: {self.reason}"
        )


def candidates_from_static(report) -> list[PlacementCandidate]:
    """Derive placement candidates from a :class:`~repro.checks.
    staticflow.report.StaticReport` (verified, with a sharing analysis).

    Returns candidates sorted by descending weight (ties broken by site
    name) — the order a budgeted consumer should take them in.
    """
    if report.sharing is None:
        return []
    ir = report.ir
    # site -> (kind-specific accumulators)
    mishomed: dict[tuple[str, int], list] = {}
    pingpong: dict[str, list] = {}
    for obj_id in sorted(report.sharing.objects):
        sh = report.sharing.objects[obj_id]
        info = ir.objects[obj_id]
        if sh.classification == "single-writer":
            writer = next(iter(sh.writers))
            writer_node = ir.node_of_thread[writer]
            if info.home_node != writer_node:
                mishomed.setdefault((info.site, writer_node), []).append(
                    (obj_id, writer, info.size_bytes)
                )
        elif sh.classification == "ping-pong":
            pingpong.setdefault(info.site, []).append(
                (obj_id, sorted(sh.writers), info.size_bytes)
            )
    out: list[PlacementCandidate] = []
    for (site, node), entries in sorted(mishomed.items()):
        obj_ids = tuple(e[0] for e in entries)
        writers = tuple(sorted({e[1] for e in entries}))
        weight = sum(e[2] for e in entries)
        out.append(
            PlacementCandidate(
                kind="home-migration",
                site=site,
                obj_ids=obj_ids,
                threads=writers,
                target_node=node,
                weight=weight,
                reason=(
                    f"single-writer objects homed off the writer's node; "
                    f"re-home to node {node}"
                ),
            )
        )
    for site, entries in sorted(pingpong.items()):
        obj_ids = tuple(e[0] for e in entries)
        threads = tuple(sorted({t for e in entries for t in e[1]}))
        weight = sum(e[2] for e in entries)
        out.append(
            PlacementCandidate(
                kind="colocate-threads",
                site=site,
                obj_ids=obj_ids,
                threads=threads,
                target_node=None,
                weight=weight,
                reason="multiple writers ping-pong ownership; co-locate the writers",
            )
        )
    return sorted(out, key=lambda c: (-c.weight, c.site, c.kind))


def candidates_from_objprof(report) -> list[PlacementCandidate]:
    """Derive placement candidates from the object-centric inefficiency
    report — either an :class:`~repro.obs.report.ObjprofReport` or the
    parsed ``python -m repro.obs report --json`` document.

    Weights are the findings' estimated wasted simulated ns (measured,
    unlike the static feed's predicted bytes), so the returned order is
    the measured-savings order a budgeted consumer should take them in.
    """
    if hasattr(report, "to_json"):
        report = report.to_json()
    out: list[PlacementCandidate] = []
    for finding in report.get("findings", []):
        kind = _PATTERN_KINDS.get(finding["pattern"])
        if kind is None:
            continue
        origin = finding.get("origin") or "?"
        out.append(
            PlacementCandidate(
                kind=kind,
                site=finding["site"],
                obj_ids=tuple(finding["obj_ids"]),
                threads=tuple(finding.get("threads", ())),
                target_node=finding.get("target_node"),
                weight=int(finding["wasted_ns"]),
                reason=f"measured {finding['pattern']} at {origin}: {finding['detail']}",
            )
        )
    return sorted(
        out,
        key=lambda c: (-c.weight, c.site, c.kind, -1 if c.target_node is None else c.target_node),
    )


def merge_candidates(
    static: list[PlacementCandidate], dynamic: list[PlacementCandidate]
) -> list[PlacementCandidate]:
    """One feed from both provenances.

    Static weights are predicted shared bytes; dynamic weights are
    measured wasted ns — incomparable units, so the merge does not
    re-sort across provenances.  Dynamic candidates come first (measured
    evidence outranks prediction), each provenance keeps its own rank
    order, and a static candidate duplicating a dynamic one's
    (kind, site, target_node) is dropped.
    """
    seen = {(c.kind, c.site, c.target_node) for c in dynamic}
    merged = list(dynamic)
    merged.extend(c for c in static if (c.kind, c.site, c.target_node) not in seen)
    return merged
