"""Thread-to-node partitioning from a thread correlation map.

The TCM is a weighted graph (threads = vertices, shared bytes = edge
weights); placing threads to minimize communication is balanced graph
partitioning.  We provide a greedy seed placement plus a
Kernighan-Lin-style pairwise refinement — enough to demonstrate the
profiles' value (the paper's stated purpose), not a competitive
partitioner.
"""

from __future__ import annotations

import numpy as np


def _check_tcm(tcm: np.ndarray) -> np.ndarray:
    tcm = np.asarray(tcm, dtype=np.float64)
    if tcm.ndim != 2 or tcm.shape[0] != tcm.shape[1]:
        raise ValueError(f"TCM must be square, got shape {tcm.shape}")
    return tcm


def partition_quality(tcm: np.ndarray, assignment: list[int]) -> dict[str, float]:
    """Intra-node (local) vs inter-node (remote) shared bytes under an
    assignment; the partitioner maximizes the local fraction."""
    tcm = _check_tcm(tcm)
    n = tcm.shape[0]
    if len(assignment) != n:
        raise ValueError(f"assignment length {len(assignment)} != {n} threads")
    local = 0.0
    remote = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            w = float(tcm[i, j])
            if w <= 0:
                continue
            if assignment[i] == assignment[j]:
                local += w
            else:
                remote += w
    total = local + remote
    return {
        "local_bytes": local,
        "remote_bytes": remote,
        "local_fraction": local / total if total > 0 else 1.0,
    }


def greedy_partition(
    tcm: np.ndarray,
    n_nodes: int,
    *,
    capacity: int | None = None,
) -> list[int]:
    """Greedy seed placement: process thread pairs by descending shared
    bytes; co-locate when capacity allows, spreading otherwise.

    ``capacity`` is the max threads per node (defaults to ceil(N/nodes),
    i.e. perfect balance).
    """
    tcm = _check_tcm(tcm)
    n = tcm.shape[0]
    if n_nodes < 1:
        raise ValueError(f"need >= 1 node, got {n_nodes}")
    cap = capacity if capacity is not None else -(-n // n_nodes)
    if cap * n_nodes < n:
        raise ValueError(f"capacity {cap} x {n_nodes} nodes cannot host {n} threads")
    assignment = [-1] * n
    load = [0] * n_nodes

    pairs = [
        (float(tcm[i, j]), i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if tcm[i, j] > 0
    ]
    pairs.sort(reverse=True)

    def place(t: int, node: int) -> None:
        assignment[t] = node
        load[node] += 1

    def lightest_node() -> int:
        return min(range(n_nodes), key=lambda k: load[k])

    for _w, i, j in pairs:
        ai, aj = assignment[i], assignment[j]
        if ai == -1 and aj == -1:
            node = lightest_node()
            if load[node] + 2 <= cap:
                place(i, node)
                place(j, node)
            else:
                place(i, node)
                place(j, lightest_node())
        elif ai == -1:
            place(i, aj if load[aj] < cap else lightest_node())
        elif aj == -1:
            place(j, ai if load[ai] < cap else lightest_node())
    for t in range(n):
        if assignment[t] == -1:
            place(t, lightest_node())
    return assignment


def refine_partition(
    tcm: np.ndarray,
    assignment: list[int],
    *,
    max_passes: int = 4,
) -> list[int]:
    """Kernighan-Lin-style refinement: repeatedly swap the thread pair
    (on different nodes) whose exchange most reduces remote bytes, until
    no improving swap exists or ``max_passes`` passes complete.  Swaps
    preserve per-node load exactly."""
    tcm = _check_tcm(tcm)
    n = tcm.shape[0]
    assignment = list(assignment)
    if len(assignment) != n:
        raise ValueError(f"assignment length {len(assignment)} != {n} threads")

    def external(t: int, node: int) -> float:
        """Bytes thread t shares with threads NOT on ``node``."""
        return sum(
            float(tcm[t, u]) for u in range(n) if u != t and assignment[u] != node
        )

    for _ in range(max_passes):
        best_gain = 0.0
        best_pair: tuple[int, int] | None = None
        for i in range(n):
            for j in range(i + 1, n):
                a, b = assignment[i], assignment[j]
                if a == b:
                    continue
                # Gain = reduction in cut weight if i and j swap homes.
                before = external(i, a) + external(j, b)
                assignment[i], assignment[j] = b, a
                after = external(i, b) + external(j, a)
                assignment[i], assignment[j] = a, b
                gain = before - after
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        assignment[i], assignment[j] = assignment[j], assignment[i]
    return assignment
