"""Online rebalancing: the full profile-to-migration loop, live.

The paper positions its profilers as inputs to "an advanced load
balancing policy" (Section VI).  :class:`OnlineRebalancer` is that loop
wired together: once enough intervals have been profiled, it takes the
accrued TCM, asks the :class:`~repro.placement.balancer.
CorrelationAwareBalancer` for profitable moves (priced by the migration
cost model against each thread's sticky footprint), and schedules them
on the :class:`~repro.runtime.migration.MigrationEngine` — optionally
prefetching each migrant's resolved sticky set.
"""

from __future__ import annotations

from repro.core.profiler import ProfilerSuite
from repro.obs.metrics import NULL_REGISTRY
from repro.placement.balancer import CorrelationAwareBalancer, MigrationProposal
from repro.runtime.migration import MigrationEngine, MigrationPlan
from repro.runtime.thread import SimThread


class OnlineRebalancer:
    """Timer hook: fire the balancer once profiling has warmed up."""

    def __init__(
        self,
        suite: ProfilerSuite,
        balancer: CorrelationAwareBalancer,
        migration: MigrationEngine,
        *,
        warmup_intervals: int = 4,
        prefetch_sticky: bool = False,
        max_migrations: int | None = None,
    ) -> None:
        if warmup_intervals < 1:
            raise ValueError(f"warmup must be >= 1 interval, got {warmup_intervals}")
        self.suite = suite
        self.balancer = balancer
        self.migration = migration
        self.warmup_intervals = warmup_intervals
        self.prefetch_sticky = prefetch_sticky
        self.max_migrations = max_migrations
        self.fired = False
        self.proposals: list[MigrationProposal] = []
        # Metric handles come from the DJVM's telemetry registry when one
        # is configured, else the shared no-op registry — the call sites
        # never branch on whether telemetry is on.
        telemetry = getattr(suite.djvm, "telemetry", None)
        registry = telemetry.registry if telemetry is not None else NULL_REGISTRY
        self._c_fired = registry.counter(
            "placement_rebalance_fired_total", "online rebalancer activations"
        )
        self._c_scheduled = registry.counter(
            "placement_migrations_scheduled_total", "migrations the rebalancer queued"
        )

    # -- TimerHook interface ------------------------------------------------

    def maybe_fire(self, thread: SimThread) -> None:
        """TimerHook: fire if the thread's clock passed the next deadline."""
        if self.fired or thread.interval_counter < self.warmup_intervals:
            return
        self.fired = True
        self._c_fired.inc()
        self._rebalance()

    def _rebalance(self) -> None:
        djvm = self.suite.djvm
        tcm = self.suite.tcm()
        placement = {t.thread_id: t.node_id for t in djvm.threads}
        footprints = {}
        stack_slots = {}
        if self.suite.footprinter is not None:
            for t in djvm.threads:
                fp = self.suite.footprinter.recent_footprint(t.thread_id)
                if fp:
                    footprints[t.thread_id] = fp
                stack_slots[t.thread_id] = t.stack.total_slots()
        self.proposals = self.balancer.propose(
            tcm,
            placement,
            len(djvm.cluster),
            footprints=footprints or None,
            stack_slots=stack_slots or None,
            max_proposals=self.max_migrations,
        )
        for prop in self.proposals:
            provider = None
            if self.prefetch_sticky and self.suite.stack_sampler is not None:
                suite = self.suite

                def provider(thread, _suite=suite):
                    return _suite.resolve_sticky_set(thread).selected

            self.migration.schedule(
                MigrationPlan(
                    thread_id=prop.thread_id,
                    target_node=prop.to_node,
                    prefetch_provider=provider,
                )
            )
            self._c_scheduled.inc()
