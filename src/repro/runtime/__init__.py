"""DJVM runtime substrate: simulated Java stacks, threads, the operation
stream format workloads compile to, the interpreter/scheduler that
executes op streams over the HLRC protocol, the thread migration engine,
and the :class:`~repro.runtime.djvm.DJVM` facade."""

from repro.runtime.stack import Frame, JavaStack
from repro.runtime.thread import SimThread, ThreadState
from repro.runtime import program
from repro.runtime.program import ProgramBuilder
from repro.runtime.interpreter import Interpreter, TimerHook
from repro.runtime.migration import MigrationEngine, MigrationPlan, MigrationResult
from repro.runtime.djvm import DJVM, RunResult

__all__ = [
    "Frame",
    "JavaStack",
    "SimThread",
    "ThreadState",
    "program",
    "ProgramBuilder",
    "Interpreter",
    "TimerHook",
    "MigrationEngine",
    "MigrationPlan",
    "MigrationResult",
    "DJVM",
    "RunResult",
]
