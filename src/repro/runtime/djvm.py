"""The DJVM facade: one object wiring cluster, global object space,
HLRC protocol, threads, migration engine and profiler hooks together —
the simulated counterpart of a booted JESSICA2 instance (paper Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsm.hlrc import HomeBasedLRC
from repro.heap.heap import GlobalObjectSpace
from repro.heap.jclass import JClass
from repro.heap.objects import HeapObject
from repro.obs import Telemetry
from repro.runtime.interpreter import Interpreter, TimerHook
from repro.runtime.migration import MigrationEngine
from repro.runtime.thread import SimThread, ThreadState
from repro.sim.cluster import Cluster
from repro.sim.costs import CostModel, CpuAccounting
from repro.sim.network import Network, TrafficStats
from repro.sim.partition import NodeGroupPartitioner, PartitionedEventLoop


@dataclass
class RunResult:
    """Outcome of one simulated execution."""

    #: wall-clock analogue: the latest thread finish time (ms).
    execution_time_ms: float
    #: per-thread CPU accounting, keyed by thread id.
    thread_cpu: dict[int, CpuAccounting]
    #: network traffic counters for the whole run.
    traffic: TrafficStats
    #: protocol event counters (faults, diffs, invalidations, ...).
    counters: dict[str, int]
    #: total ops executed across threads.
    ops_executed: int
    #: per-thread finish times (ms).
    thread_finish_ms: dict[int, float] = field(default_factory=dict)

    @property
    def total_cpu(self) -> CpuAccounting:
        """Aggregated CPU accounting across every thread."""
        total = CpuAccounting()
        for cpu in self.thread_cpu.values():  # simlint: disable=SIM003 (keyed by thread id and populated in thread-id order)
            total.merge(cpu)
        return total

    def summary(self) -> str:
        """Human-readable one-paragraph digest."""
        total = self.total_cpu
        return (
            f"execution {self.execution_time_ms:.2f} ms | "
            f"faults {self.counters.get('faults', 0)} | "
            f"intervals {self.counters.get('intervals', 0)} | "
            f"GOS traffic {self.traffic.gos_bytes / 1024:.1f} KB | "
            f"OAL traffic {self.traffic.oal_bytes / 1024:.1f} KB | "
            f"profiling CPU {total.profiling_ns / 1e6:.2f} ms"
        )


class DJVM:
    """A simulated distributed JVM instance."""

    def __init__(
        self,
        n_nodes: int = 8,
        *,
        costs: CostModel | None = None,
        network: Network | None = None,
        keep_interval_history: bool = False,
        timeshare_nodes: bool = True,
        keep_event_trace: bool = False,
        sanitize: bool = False,
        racecheck: bool | str = False,
        telemetry=None,
        aux_capacity: int | None = None,
        kernel: str = "serial",
        partitions: int | None = None,
        replay: str = "vector",
        sampling_backend=None,
        objprof: bool = False,
        validate_effects: "bool | object" = True,
    ) -> None:
        if kernel not in ("serial", "partitioned"):
            raise ValueError(f"kernel must be 'serial' or 'partitioned', got {kernel!r}")
        if replay not in ("vector", "scalar"):
            raise ValueError(f"replay must be 'vector' or 'scalar', got {replay!r}")
        if partitions is not None and kernel != "partitioned":
            raise ValueError("partitions requires kernel='partitioned'")
        #: event kernel flavour: "serial" is the correctness oracle;
        #: "partitioned" shards the event loop into node-group partitions
        #: (conservative PDES, byte-identical pop order).
        self.kernel = kernel
        if kernel == "partitioned":
            if partitions is None:
                partitions = min(4, n_nodes)
            if not 1 <= partitions <= n_nodes:
                raise ValueError(
                    f"need 1 <= partitions <= {n_nodes} nodes, got {partitions}"
                )
        #: partition count (None under the serial kernel).
        self.partitions = partitions
        #: access replay mode handed to the interpreter ("vector" bulk
        #: replay or the "scalar" per-op oracle).
        self.replay = replay
        #: sampling-decision backend for any ProfilerSuite attached to
        #: this DJVM: None (the paper's prime-gap scheme), a registry
        #: name ("prime_gap" | "poisson" | "hash" | "hybrid"), or a
        #: ready repro.core.sampling.SamplingBackend instance.
        self.sampling_backend = sampling_backend
        #: partitioned-kernel worker certification against the committed
        #: ``effects.json``: True (load it if present), False (off), or
        #: an injected :class:`~repro.checks.effects.summary.EffectsSummary`.
        self.validate_effects = validate_effects
        self.cluster = Cluster(
            n_nodes,
            costs=costs if costs is not None else CostModel.gideon300(),
            network=network,
        )
        self.gos = GlobalObjectSpace()
        #: opt-in telemetry context (repro.obs): metrics registry plus,
        #: for "trace"/"full", the span tracer.  Pure observers on the
        #: same contract as the sanitizer and race detector — simulated
        #: results are byte-identical with telemetry on or off.
        self.telemetry = Telemetry.from_config(telemetry)
        metrics = None
        if self.telemetry is not None and self.telemetry.registry.enabled:
            metrics = self.telemetry.registry
        self.hlrc = HomeBasedLRC(
            self.gos,
            self.cluster,
            keep_interval_history=keep_interval_history,
            metrics=metrics,
        )
        if self.telemetry is not None and self.telemetry.tracer is not None:
            self.hlrc.attach_observer("tracer", self.telemetry.tracer)
        #: opt-in runtime protocol checker (repro.checks): asserts the
        #: HLRC state-machine invariants as the run executes, raising
        #: SanitizerViolation with the offending event trace.  Pure
        #: observer — simulated results are byte-identical either way.
        self.sanitizer = None
        if sanitize:
            from repro.checks.sanitizer import ProtocolSanitizer

            self.sanitizer = ProtocolSanitizer()
            self.sanitizer.attach_hlrc(self.hlrc)
            self.hlrc.attach_observer("sanitizer", self.sanitizer)
        #: opt-in happens-before race detector (repro.checks.racedetect).
        #: ``True``/"raise" raises DataRaceError at the second racing
        #: access, "collect" accumulates RaceReports in
        #: ``racedetector.reports``, "record" only records the race
        #: operation trace (``race_trace``) for offline replay.  Pure
        #: observer — simulated results are byte-identical either way.
        self.racedetector = None
        if racecheck:
            from repro.checks.racedetect import RaceDetector

            if racecheck is True or racecheck == "raise":
                self.racedetector = RaceDetector(raise_on_race=True)
            elif racecheck == "collect":
                self.racedetector = RaceDetector()
            elif racecheck == "record":
                self.racedetector = RaceDetector(detect=False, keep_trace=True)
            else:
                raise ValueError(
                    f"racecheck must be True, 'raise', 'collect' or 'record', "
                    f"got {racecheck!r}"
                )
            self.racedetector.attach_resolver(self._class_name_of)
            self.hlrc.attach_observer("racedetector", self.racedetector)
        #: opt-in object-centric inefficiency profiler (repro.obs.objprof):
        #: folds faults/diffs/invalidations into per-allocation-site
        #: lifetime profiles for the ranked `repro.obs report`.  Pure
        #: observer — simulated results are byte-identical either way.
        self.objprof = None
        if objprof:
            from repro.obs.objprof import ObjectProfiler

            self.objprof = ObjectProfiler()
            self.hlrc.attach_observer("objprof", self.objprof)
        self.migration = MigrationEngine(self.hlrc, self.cluster)
        if self.telemetry is not None:
            if self.telemetry.tracer is not None:
                self.migration.tracer = self.telemetry.tracer
            self.telemetry.bind(self)
        #: retention cap for the event kernel's aux audit channel
        #: (None = unbounded; see EventLoop.aux_capacity).
        self.aux_capacity = aux_capacity
        #: single-core nodes (paper hardware) when True; one core per
        #: thread when False.
        self.timeshare_nodes = timeshare_nodes
        #: keep the event kernel's (time_ns, kind, actor) audit trace.
        self.keep_event_trace = keep_event_trace
        self.threads: list[SimThread] = []
        self.timers: list[TimerHook] = []
        self._interpreter: Interpreter | None = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    @property
    def costs(self) -> CostModel:
        """The cluster's CPU cost model."""
        return self.cluster.costs

    def _class_name_of(self, obj_id: int) -> str:
        """Class name of one GOS object (race-report resolver)."""
        return self.gos.get(obj_id).jclass.name

    @property
    def registry(self):
        """The DJVM's class registry."""
        return self.gos.registry

    def define_class(
        self,
        name: str,
        instance_size: int = 0,
        *,
        is_array: bool = False,
        element_size: int = 0,
    ) -> JClass:
        """Define a class in the DJVM's class registry."""
        return self.gos.registry.define(
            name, instance_size, is_array=is_array, element_size=element_size
        )

    def allocate(
        self, jclass, home_node: int, *, length: int = 0, refs=(), site: str | None = None
    ) -> HeapObject:
        """Allocate a shared object homed at ``home_node`` (``site`` is
        an optional allocation-site label for per-site reports)."""
        return self.gos.allocate(jclass, home_node, length=length, refs=refs, site=site)

    def export_ir(self, programs: dict[int, object]):
        """Export the static workload IR (programs + placement + object
        graph) of this built DJVM for :mod:`repro.checks.staticflow`.

        ``programs`` iterables are compiled (and consumed) here; a
        subsequent :meth:`run` needs its own fresh streams."""
        from repro.runtime.ir import export_ir

        return export_ir(self, programs)

    def spawn_thread(self, node_id: int) -> SimThread:
        """Create one application thread on ``node_id``."""
        if not 0 <= node_id < len(self.cluster):
            raise ValueError(f"node {node_id} out of range")
        thread = SimThread(thread_id=len(self.threads), node_id=node_id)
        self.threads.append(thread)
        self.cluster[node_id].thread_ids.add(thread.thread_id)
        return thread

    def spawn_threads(
        self, n_threads: int, *, placement: str | list[int] = "round_robin"
    ) -> list[SimThread]:
        """Spawn ``n_threads`` with a placement policy: "round_robin",
        "block" (contiguous thread ranges per node, SPLASH-2 style), or
        an explicit thread->node assignment list (e.g. a partitioner's
        output)."""
        n_nodes = len(self.cluster)
        if isinstance(placement, list):
            if len(placement) != n_threads:
                raise ValueError(
                    f"placement list has {len(placement)} entries for "
                    f"{n_threads} threads"
                )
            return [self.spawn_thread(node) for node in placement]
        created = []
        for i in range(n_threads):
            if placement == "round_robin":
                node = i % n_nodes
            elif placement == "block":
                node = min(i * n_nodes // n_threads, n_nodes - 1)
            else:
                raise ValueError(f"unknown placement policy {placement!r}")
            created.append(self.spawn_thread(node))
        return created

    def add_hook(self, hook) -> None:
        """Attach a protocol hook (profiler) to the HLRC engine."""
        self.hlrc.hooks.append(hook)

    def add_timer(self, timer: TimerHook) -> None:
        """Attach a timer-driven profiler component."""
        self.timers.append(timer)

    @property
    def event_trace(self) -> list[tuple[int, str, int]]:
        """The event kernel's dispatched-event trace from the last run
        (empty unless constructed with ``keep_event_trace=True``)."""
        if self._interpreter is None:
            return []
        return self._interpreter.kernel.trace

    @property
    def kernel_stats(self) -> dict[str, int] | None:
        """Partition/window statistics of the last run's event kernel
        (None before :meth:`run` or under the serial kernel)."""
        if self._interpreter is None:
            return None
        stats = getattr(self._interpreter.kernel, "stats", None)
        return stats() if stats is not None else None

    @property
    def race_trace(self) -> list[tuple]:
        """The recorded race-operation audit trace (empty unless
        constructed with ``racecheck="record"``); feed it to
        :func:`repro.checks.racedetect.replay_trace` to re-run the
        happens-before analysis offline."""
        if self.racedetector is None:
            return []
        return self.racedetector.trace

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, programs: dict[int, object]) -> RunResult:
        """Execute one program per thread to completion.

        A DJVM instance runs once: threads, heaps and protocol state are
        consumed by the run (re-running on spent threads would silently
        return an empty result, so it is rejected)."""
        spent = [t.thread_id for t in self.threads if t.state is not ThreadState.RUNNABLE]
        if spent:
            raise RuntimeError(
                f"threads {spent} already ran; build a fresh DJVM per run"
            )
        events = None
        if self.kernel == "partitioned":
            partitioner = NodeGroupPartitioner(
                len(self.cluster),
                self.partitions,
                node_of_thread=lambda tid: self.threads[tid].node_id,
                master_node=self.cluster.master_id,
            )
            events = PartitionedEventLoop(
                partitioner,
                lookahead_ns=self.cluster.network.min_latency_ns,
                keep_trace=self.keep_event_trace,
                aux_capacity=self.aux_capacity,
                validate_effects=self.validate_effects,
            )
        interp = Interpreter(
            self.hlrc,
            self.threads,
            timeshare_nodes=self.timeshare_nodes,
            events=events,
            keep_event_trace=self.keep_event_trace,
            aux_capacity=self.aux_capacity,
            sanitizer=self.sanitizer,
            racedetector=self.racedetector,
            replay=self.replay,
        )
        interp.timers = self.timers
        interp.migration_engine = self.migration
        interp.attach_programs(programs)
        self._interpreter = interp
        interp.run()
        for thread in self.threads:
            if thread.state is not ThreadState.DONE:  # pragma: no cover - guard
                raise RuntimeError(f"thread {thread.thread_id} did not finish")
        if self.sanitizer is not None:
            self.sanitizer.on_run_end(self.threads)
            self.sanitizer.sweep_heaps()
        finish = {t.thread_id: t.clock.now_ms for t in self.threads}
        return RunResult(
            execution_time_ms=max(finish.values()),
            thread_cpu={t.thread_id: t.cpu for t in self.threads},
            traffic=self.cluster.network.stats,
            counters=dict(self.hlrc.counters),
            ops_executed=interp.ops_executed,
            thread_finish_ms=finish,
        )
