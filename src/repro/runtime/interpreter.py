"""The interpreter/scheduler: executes thread programs over the HLRC
protocol engine with simulated-time accounting.

Scheduling model: a thread runs without preemption until it reaches a
synchronization op (legal under lazy release consistency — remote writes
only become visible at synchronization anyway); the scheduler then
resumes the runnable thread with the smallest simulated clock.  Barriers
park threads until the last participant arrives.

Timer hooks (stack sampler, sticky-set footprint tracker) are polled
after every op against the owning thread's clock — the simulated analogue
of the paper's millisecond-granularity profiling timers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.dsm.hlrc import HomeBasedLRC
from repro.runtime import program as prog
from repro.runtime.stack import Frame
from repro.runtime.thread import SimThread, ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.migration import MigrationEngine

#: cost of a SETSLOT (a store to the current frame), nanoseconds.
SETSLOT_NS = 2


class TimerHook(Protocol):
    """A profiler component driven by per-thread simulated timers."""

    def maybe_fire(self, thread: SimThread) -> None:
        """Fire if the thread's clock passed the component's next deadline."""
        ...


class Interpreter:
    """Executes a set of thread programs to completion."""

    def __init__(
        self,
        hlrc: HomeBasedLRC,
        threads: list[SimThread],
        *,
        barrier_parties: int | None = None,
        timeshare_nodes: bool = True,
    ) -> None:
        if not threads:
            raise ValueError("interpreter needs at least one thread")
        self.hlrc = hlrc
        self.threads = threads
        self.threads_by_id = {t.thread_id: t for t in threads}
        if len(self.threads_by_id) != len(threads):
            raise ValueError("duplicate thread ids")
        self.parties = barrier_parties if barrier_parties is not None else len(threads)
        self.costs = hlrc.costs
        #: single-core nodes (the paper's P4s): threads co-located on a
        #: node serialize their execution segments on its one core — the
        #: non-preemptive user-level threading regime of Kaffe.  Off =
        #: one core per thread (an idealized SMP node).
        self.timeshare_nodes = timeshare_nodes
        #: per-node core-busy cursor (ns) for the timesharing model.
        self._node_cursor: dict[int, int] = {}
        #: timer-driven profiler components, polled after every op.
        self.timers: list[TimerHook] = []
        #: migration engine checks (thread_id -> pending), set by MigrationEngine.
        self.migration_engine: "MigrationEngine | None" = None
        self.ops_executed = 0

    # ------------------------------------------------------------------

    def attach_programs(self, programs: dict[int, object]) -> None:
        """Attach an op iterable per thread id."""
        for thread in self.threads:
            if thread.thread_id not in programs:
                raise KeyError(f"no program for thread {thread.thread_id}")
            thread.program = iter(programs[thread.thread_id])

    def run(self) -> None:
        """Execute every thread to completion."""
        for thread in self.threads:
            if thread.program is None:
                raise RuntimeError(f"thread {thread.thread_id} has no program attached")
            self.hlrc.open_interval(thread)
        while True:
            runnable = [t for t in self.threads if t.state is ThreadState.RUNNABLE]
            if not runnable:
                waiting = [
                    t
                    for t in self.threads
                    if t.state in (ThreadState.WAITING_BARRIER, ThreadState.WAITING_LOCK)
                ]
                if waiting:
                    raise RuntimeError(
                        "deadlock: threads "
                        f"{sorted(t.thread_id for t in waiting)} wait on "
                        "synchronization no one else will complete"
                    )
                return  # all DONE
            thread = min(runnable, key=lambda t: t.clock.now_ns)
            self._run_until_sync(thread)

    # ------------------------------------------------------------------

    def _run_until_sync(self, thread: SimThread) -> None:
        """Run one thread until it blocks, syncs, or finishes —
        serialized on its node's single core when timesharing is on."""
        if self.timeshare_nodes:
            # The node's core is busy until the cursor: the thread's
            # segment cannot start earlier.
            thread.clock.advance_to(self._node_cursor.get(thread.node_id, 0))
        try:
            self._run_segment(thread)
        finally:
            if self.timeshare_nodes:
                # The segment occupied the core (a migration mid-segment
                # charges the remainder to the destination node).
                node = thread.node_id
                cursor = self._node_cursor.get(node, 0)
                self._node_cursor[node] = max(cursor, thread.clock.now_ns)

    def _run_segment(self, thread: SimThread) -> None:
        """Execute ops until the next scheduling point."""
        hlrc = self.hlrc
        costs = self.costs
        timers = self.timers
        mig = self.migration_engine
        assert thread.program is not None
        for op in thread.program:
            thread.pc += 1
            code = op[0]
            if code == prog.OP_READ or code == prog.OP_WRITE:
                hlrc.access(
                    thread,
                    op[1],
                    is_write=(code == prog.OP_WRITE),
                    n_elems=op[2],
                    repeat=op[3],
                    elem_off=op[4],
                )
            elif code == prog.OP_COMPUTE:
                ns = costs.scaled_compute(op[1])
                thread.cpu.compute_ns += ns
                thread.clock.advance(ns)
            elif code == prog.OP_CALL:
                frame = Frame(op[1], op[2], dict(op[3]))
                thread.stack.push(frame)
                thread.cpu.access_ns += costs.frame_push_ns
                thread.clock.advance(costs.frame_push_ns)
            elif code == prog.OP_RET:
                thread.stack.pop()
                thread.cpu.access_ns += costs.frame_pop_ns
                thread.clock.advance(costs.frame_pop_ns)
            elif code == prog.OP_SETSLOT:
                top = thread.stack.top
                if top is None:
                    raise RuntimeError(
                        f"thread {thread.thread_id}: SETSLOT at pc {thread.pc} "
                        "with empty stack"
                    )
                top.set_slot(op[1], op[2])
                thread.cpu.access_ns += SETSLOT_NS
                thread.clock.advance(SETSLOT_NS)
            elif code == prog.OP_ACQUIRE:
                self.ops_executed += 1
                granted = hlrc.acquire(thread, op[1])
                if granted:
                    self._post_op(thread, timers, mig)
                else:
                    thread.state = ThreadState.WAITING_LOCK
                    thread.waiting_lock_id = op[1]
                return  # yield so lock ordering tracks simulated time
            elif code == prog.OP_RELEASE:
                self.ops_executed += 1
                unblocked = hlrc.release(thread, op[1], self.threads_by_id)
                if unblocked is not None:
                    other = self.threads_by_id[unblocked]
                    other.state = ThreadState.RUNNABLE
                    other.waiting_lock_id = None
                self._post_op(thread, timers, mig)
                return
            elif code == prog.OP_BARRIER:
                self.ops_executed += 1
                barrier_id = op[1]
                last = hlrc.barrier_arrive(thread, barrier_id, self.parties)
                if last:
                    hlrc.barrier_release(self.threads_by_id, barrier_id)
                    for other in self.threads:
                        if (
                            other.state is ThreadState.WAITING_BARRIER
                            and other.waiting_barrier_id == barrier_id
                        ):
                            other.state = ThreadState.RUNNABLE
                            other.waiting_barrier_id = None
                    self._post_op(thread, timers, mig)
                else:
                    thread.state = ThreadState.WAITING_BARRIER
                    thread.waiting_barrier_id = barrier_id
                return
            else:
                raise ValueError(f"unknown opcode {code} at pc {thread.pc}")
            self.ops_executed += 1
            self._post_op(thread, timers, mig)
        # Program exhausted: close the final interval.
        self.hlrc.close_interval(thread, "end")
        thread.state = ThreadState.DONE

    def _post_op(self, thread: SimThread, timers, mig) -> None:
        """Poll timer hooks and pending migrations after one op."""
        for timer in timers:
            timer.maybe_fire(thread)
        if mig is not None and mig.has_pending(thread.thread_id):
            mig.maybe_migrate(thread)
