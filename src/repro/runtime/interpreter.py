"""The interpreter/scheduler: executes thread programs over the HLRC
protocol engine with simulated-time accounting.

Scheduling model: the interpreter drives a deterministic discrete-event
kernel (:class:`~repro.sim.events.EventLoop`).  Every runnable thread
has exactly one ``SEGMENT_END`` event pending, scheduled at the time the
thread became runnable; dispatching it executes the thread's next
segment — ops run without preemption until a synchronization op (legal
under lazy release consistency: remote writes only become visible at
synchronization anyway) — and then schedules successor events.  Because
events pop in ``(time_ns, seq)`` order and newly-runnable threads are
scheduled in thread-table order, the event kernel reproduces the legacy
"resume the runnable thread with the smallest clock" rule exactly,
including its tie-break.

Barriers are event-driven: the last arriver parks like every other
participant and schedules a ``BARRIER_RELEASE`` event whose dispatch
aligns clocks, distributes write notices, and wakes the waiters.
Post-synchronization migration checks route through ``MIGRATION_CHECK``
events chained ahead of the thread's next segment.

Timer hooks (stack sampler, sticky-set footprint tracker) that expose
the ``next_fire_ns`` deadline API register absolute deadlines: the hot
loop compares the running thread's clock against the minimum deadline —
one integer compare per op — and only calls into the hooks when a
deadline passes (fires are recorded into the kernel trace as
``TIMER_FIRE`` events).  Hooks without the API (condition-driven hooks
like the online rebalancer) fall back to legacy per-op polling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.dsm.hlrc import HomeBasedLRC
from repro.runtime import program as prog
from repro.runtime.stack import Frame
from repro.runtime.thread import SimThread, ThreadState
from repro.sim.events import Event, EventKind, EventLoop

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.migration import MigrationEngine

#: cost of a SETSLOT (a store to the current frame), nanoseconds.
SETSLOT_NS = 2


def _make_vector_engine(interp: "Interpreter"):
    """Build the vector replay engine, or None when numpy is absent
    (scalar replay remains fully functional without it)."""
    try:
        from repro.runtime.vector import VectorEngine
    except ImportError:  # pragma: no cover - numpy-less environments
        return None
    return VectorEngine(interp)


class TimerHook(Protocol):
    """A profiler component driven by per-thread simulated timers.

    Hooks may additionally expose ``next_fire_ns(thread) -> int`` (an
    absolute deadline in ns); the interpreter then skips per-op calls
    until the thread's clock passes the deadline.
    """

    def maybe_fire(self, thread: SimThread) -> None:
        """Fire if the thread's clock passed the component's next deadline."""
        ...


class Interpreter:
    """Executes a set of thread programs to completion."""

    def __init__(
        self,
        hlrc: HomeBasedLRC,
        threads: list[SimThread],
        *,
        barrier_parties: int | None = None,
        timeshare_nodes: bool = True,
        events: EventLoop | None = None,
        keep_event_trace: bool = False,
        aux_capacity: int | None = None,
        sanitizer=None,
        racedetector=None,
        replay: str = "vector",
    ) -> None:
        if not threads:
            raise ValueError("interpreter needs at least one thread")
        if replay not in ("vector", "scalar"):
            raise ValueError(f"replay must be 'vector' or 'scalar', got {replay!r}")
        #: access replay mode: "vector" engages the bulk replay engine
        #: (repro.runtime.vector) for eligible segments; "scalar" forces
        #: per-op dispatch everywhere (the correctness oracle).
        self.replay = replay
        self._vector = None
        #: opt-in protocol invariant checker (observes event pops).
        self.sanitizer = sanitizer
        #: opt-in happens-before race detector (repro.checks.racedetect):
        #: observes accesses and sync ops via hlrc.racedetector; wired
        #: here for direct-interpreter users (the DJVM wires it itself).
        self.racedetector = racedetector
        if racedetector is not None and hlrc.racedetector is None:
            hlrc.racedetector = racedetector
        self.hlrc = hlrc
        self.threads = threads
        self.threads_by_id = {t.thread_id: t for t in threads}
        if len(self.threads_by_id) != len(threads):
            raise ValueError("duplicate thread ids")
        self.parties = barrier_parties if barrier_parties is not None else len(threads)
        self.costs = hlrc.costs
        #: single-core nodes (the paper's P4s): threads co-located on a
        #: node serialize their execution segments on its one core — the
        #: non-preemptive user-level threading regime of Kaffe.  Off =
        #: one core per thread (an idealized SMP node).
        self.timeshare_nodes = timeshare_nodes
        #: the discrete-event kernel every scheduling decision runs through.
        self.kernel = (
            events
            if events is not None
            else EventLoop(keep_trace=keep_event_trace, aux_capacity=aux_capacity)
        )
        # Queued network sends deliver through the same kernel.
        hlrc.network.attach_kernel(self.kernel)
        # A recording race detector mirrors its operation trace into the
        # kernel's auxiliary audit channel.
        if racedetector is not None and getattr(racedetector, "keep_trace", False):
            racedetector.attach_kernel(self.kernel)
        #: per-node core schedules (timesharing model), owned by the nodes.
        self._nodes = hlrc.cluster.nodes
        #: thread ids with a SEGMENT_END / MIGRATION_CHECK event in flight.
        self._scheduled: set[int] = set()
        #: timer-driven profiler components (deadline API or per-op polled).
        self.timers: list[TimerHook] = []
        #: migration engine checks (thread_id -> pending), set by MigrationEngine.
        self.migration_engine: "MigrationEngine | None" = None
        self.ops_executed = 0
        #: opcode -> bound handler for synchronization ops; indexed by the
        #: hot loop so ACQUIRE/RELEASE/BARRIER share one dispatch site.
        self._sync_dispatch = {
            prog.OP_ACQUIRE: self._do_acquire,
            prog.OP_RELEASE: self._do_release,
            prog.OP_BARRIER: self._do_barrier,
        }

    # ------------------------------------------------------------------

    def attach_programs(self, programs: dict[int, object]) -> None:
        """Attach and pre-decode an op iterable per thread id.

        Programs are compiled once into :class:`~repro.runtime.program.
        CompiledProgram` (dense op tuples + opcode array); the thread's
        ``pc`` then doubles as the resume cursor across scheduling
        points, replacing per-op generator resumption.
        """
        for thread in self.threads:
            if thread.thread_id not in programs:
                raise KeyError(f"no program for thread {thread.thread_id}")
            thread.program = prog.compile_program(programs[thread.thread_id])

    def run(self) -> None:
        """Execute every thread to completion by draining the event kernel."""
        for thread in self.threads:
            if thread.program is None:
                raise RuntimeError(f"thread {thread.thread_id} has no program attached")
            self.hlrc.open_interval(thread)
        kernel = self.kernel
        sanitizer = self.sanitizer
        # Vector replay engages only when nothing observes the per-op
        # stream: the sanitizer and race detector both consume every
        # access, so their presence forces the scalar oracle path.
        if (
            self._vector is None
            and self.replay == "vector"
            and sanitizer is None
            and self.hlrc.sanitizer is None
            and self.hlrc.racedetector is None
        ):
            self._vector = _make_vector_engine(self)
            if self._vector is not None:
                # The bulk replay machinery assumes structurally
                # well-formed programs (balanced CALL/RET, framed
                # SETSLOT, paired locks); hard-gate it on the staticflow
                # IR verifier.  Verification is cached per compiled
                # program, so reuse across runs pays once.
                from repro.checks.staticflow.verifier import gate_program

                for thread in self.threads:
                    gate_program(thread.program)
        self._schedule_runnable()
        drain = getattr(kernel, "drain", None)
        if drain is not None:
            # Partitioned kernel: it owns the pop/dispatch loop so event
            # execution is attributable per partition.
            drain(sanitizer)
        else:
            while True:
                event = kernel.pop()
                if event is None:
                    break
                if sanitizer is not None:
                    sanitizer.on_event_pop(kernel.now_ns, event)
                callback = event.callback
                if callback is not None:
                    callback(event)
        waiting = [
            t
            for t in self.threads
            if t.state in (ThreadState.WAITING_BARRIER, ThreadState.WAITING_LOCK)
        ]
        if waiting:
            raise RuntimeError(
                "deadlock: threads "
                f"{sorted(t.thread_id for t in waiting)} wait on "
                "synchronization no one else will complete"
            )

    # -- event producers / consumers -----------------------------------

    def _schedule_runnable(self) -> None:
        """Give every runnable thread without an in-flight event its
        SEGMENT_END.

        Scanning ``self.threads`` in table order makes equal-time events
        pop in thread order — the legacy scheduler's tie-break rule.
        The event is stamped with the time the thread became runnable
        (its clock), which is the key the legacy loop minimized over.
        """
        kernel = self.kernel
        scheduled = self._scheduled
        callback = self._on_segment_end
        for thread in self.threads:
            if thread.state is ThreadState.RUNNABLE and thread.thread_id not in scheduled:
                scheduled.add(thread.thread_id)
                kernel.schedule(
                    EventKind.SEGMENT_END,
                    thread.clock.now_ns,
                    actor=thread.thread_id,
                    callback=callback,
                )

    def _on_segment_end(self, event: Event) -> None:
        """Dispatch a thread's segment: run it to its next scheduling
        point, then schedule successor events."""
        tid = event.actor
        self._scheduled.discard(tid)
        thread = self.threads_by_id[tid]
        if thread.state is not ThreadState.RUNNABLE:  # pragma: no cover - guard
            return
        self._run_until_sync(thread)
        self._chain_migration_then_schedule(thread)

    def _chain_migration_then_schedule(self, thread: SimThread) -> None:
        """Epilogue of a segment (or barrier release): chain a
        MIGRATION_CHECK ahead of the thread's next segment when a plan is
        pending, then top up SEGMENT_END events for every runnable thread."""
        mig = self.migration_engine
        if (
            mig is not None
            and thread.state is ThreadState.RUNNABLE
            and mig.has_pending(thread.thread_id)
        ):
            self._scheduled.add(thread.thread_id)
            self.kernel.schedule(
                EventKind.MIGRATION_CHECK,
                thread.clock.now_ns,
                actor=thread.thread_id,
                callback=self._on_migration_check,
            )
        self._schedule_runnable()

    def _on_migration_check(self, event: Event) -> None:
        """Evaluate a pending migration plan at a scheduling point."""
        tid = event.actor
        self._scheduled.discard(tid)
        thread = self.threads_by_id[tid]
        mig = self.migration_engine
        if mig is not None and thread.state is ThreadState.RUNNABLE:
            result = mig.maybe_migrate(thread)
            if result is not None and self.timeshare_nodes:
                # The handoff occupied the (destination) core, exactly as
                # the legacy inline path charged it at segment end.
                self._nodes[thread.node_id].core.occupy_until(thread.clock.now_ns)
        self._schedule_runnable()

    def _on_barrier_release(self, event: Event) -> None:
        """Complete a barrier episode: release, wake waiters, and run the
        last arriver's post-synchronization hooks (legacy order)."""
        barrier_id = event.actor
        last = self.threads_by_id[event.data]
        self.hlrc.barrier_release(self.threads_by_id, barrier_id)
        for other in self.threads:
            if (
                other.state is ThreadState.WAITING_BARRIER
                and other.waiting_barrier_id == barrier_id
            ):
                other.state = ThreadState.RUNNABLE
                other.waiting_barrier_id = None
        for timer in self.timers:
            timer.maybe_fire(last)
        if self.timeshare_nodes:
            # The release processing ran on the last arriver's core.
            self._nodes[last.node_id].core.occupy_until(last.clock.now_ns)
        self._chain_migration_then_schedule(last)

    # ------------------------------------------------------------------

    def _run_until_sync(self, thread: SimThread) -> None:
        """Run one thread until it blocks, syncs, or finishes —
        serialized on its node's single core when timesharing is on."""
        if self.timeshare_nodes:
            # The node's core is busy until the cursor: the thread's
            # segment cannot start earlier.
            thread.clock.advance_to(self._nodes[thread.node_id].core.busy_until_ns)
        try:
            self._run_segment(thread)
        finally:
            if self.timeshare_nodes:
                # The segment occupied the core (a migration mid-segment
                # charges the remainder to the destination node).
                self._nodes[thread.node_id].core.occupy_until(thread.clock.now_ns)

    def _run_segment(self, thread: SimThread) -> None:
        """Execute ops until the next scheduling point.

        This is the simulator's innermost loop.  Everything touched per
        op is hoisted into locals, the thread's ``pc`` is the cursor
        into the compiled program (incremented before an op executes, as
        before), READ/WRITE/COMPUTE are inlined, synchronization ops go
        through a per-opcode dispatch table, and the timer/migration
        poll is skipped entirely unless such hooks are attached.  Timers
        that expose the ``next_fire_ns`` deadline API cost one integer
        compare per op; hooks without it are polled per op as before.
        """
        program = thread.program
        assert program is not None
        if not isinstance(program, prog.CompiledProgram):
            # Direct attachment (tests poke thread.program): decode lazily.
            program = thread.program = prog.compile_program(program)
        ops = program.ops
        n_ops = program.n_ops
        i = thread.pc
        # Hot-path locals: attribute lookups hoisted out of the loop.
        costs = self.costs
        access = self.hlrc.access
        clock = thread.clock
        cpu = thread.cpu
        stack = thread.stack
        frame_push_ns = costs.frame_push_ns
        frame_pop_ns = costs.frame_pop_ns
        scale_is_unity = costs.compute_scale == 1.0
        scaled_compute = costs.scaled_compute
        sync_dispatch = self._sync_dispatch
        timers = self.timers
        mig = self.migration_engine
        mig_pending = mig._pending if mig is not None else None
        tid = thread.thread_id
        # Deadline fast path: engaged only when every attached timer
        # exposes next_fire_ns — a plain hook must keep its legacy
        # every-op polling contract.
        deadline_mode = False
        next_deadline = 0
        if timers:
            deadline_mode = all(hasattr(t, "next_fire_ns") for t in timers)
            if deadline_mode:
                next_deadline = min(t.next_fire_ns(thread) for t in timers)
        poll_timers = bool(timers) and not deadline_mode
        poll_hooks = poll_timers or deadline_mode or mig is not None
        record = self.kernel.record
        timer_fire = EventKind.TIMER_FIRE
        # Vector replay engages per segment: per-op polled timers need
        # the scalar loop, and profiler hooks must speak the fast
        # single-hook protocol (the engine fires it at first touches).
        vec = self._vector
        vruns = None
        vec_demoted = ()
        if vec is not None and not poll_timers:
            hl_hooks = self.hlrc.hooks
            if not hl_hooks or (
                len(hl_hooks) == 1 and hasattr(hl_hooks[0], "fast_on_access")
            ):
                vruns = program.vector_runs()
                if not vruns:
                    vruns = None
                else:
                    vec_demoted = vec.demoted
        start_i = i
        # Run spans are non-overlapping and only a span's start index
        # maps to a run, so once a run is taken scalar the per-op run
        # lookup can sleep until its end.
        vr_skip = -1
        try:
            # ``thread.pc`` is only observed at scheduling points (sync
            # dispatch, timer/migration polls, interval close, errors),
            # so the cursor stays in the local ``i`` during straight-line
            # runs and is published right before any of those.
            while i < n_ops:
                if vruns is not None and i >= vr_skip:
                    vr = vruns.get(i)
                    # A pending migration plan needs per-op pc triggers,
                    # and runs the engine demoted (repeatedly majority-
                    # slow) replay cheaper in the scalar loop.
                    if vr is not None:
                        if vr not in vec_demoted and not (
                            mig_pending and tid in mig_pending
                        ):
                            if vr.hot:
                                i, nd = vec.execute(
                                    thread, vr, next_deadline if deadline_mode else -1
                                )
                                if deadline_mode:
                                    next_deadline = nd
                                continue
                            # First sighting: warm up scalar — one-shot
                            # runs never amortize the lane build, and
                            # re-executed runs pay one pass of it.
                            vr.hot = True
                        vr_skip = vr.end
                op = ops[i]
                i += 1
                code = op[0]
                if code <= prog.OP_WRITE:  # READ / WRITE
                    access(thread, op[1], code == prog.OP_WRITE, op[2], op[3], op[4])
                elif code == prog.OP_COMPUTE:
                    v = op[1]
                    if scale_is_unity and type(v) is int and v >= 0:
                        ns = v
                    else:
                        ns = scaled_compute(v)
                    cpu.compute_ns += ns
                    clock._now_ns += ns
                elif code == prog.OP_CALL:
                    stack.push(Frame(op[1], op[2], dict(op[3])))
                    cpu.access_ns += frame_push_ns
                    clock._now_ns += frame_push_ns
                elif code == prog.OP_RET:
                    stack.pop()
                    cpu.access_ns += frame_pop_ns
                    clock._now_ns += frame_pop_ns
                elif code == prog.OP_SETSLOT:
                    top = stack.top
                    if top is None:
                        thread.pc = i
                        raise RuntimeError(
                            f"thread {tid}: SETSLOT at pc {i} with empty stack"
                        )
                    top.set_slot(op[1], op[2])
                    cpu.access_ns += SETSLOT_NS
                    clock._now_ns += SETSLOT_NS
                elif code <= prog.OP_BARRIER:  # ACQUIRE / RELEASE / BARRIER
                    thread.pc = i
                    if sync_dispatch[code](thread, op):
                        if poll_timers:
                            for timer in timers:
                                timer.maybe_fire(thread)
                        elif deadline_mode and clock._now_ns >= next_deadline:
                            for timer in timers:
                                timer.maybe_fire(thread)
                            if next_deadline > 0:
                                record(timer_fire, clock._now_ns, tid)
                    return  # yield so sync ordering tracks simulated time
                else:
                    thread.pc = i
                    raise ValueError(f"unknown opcode {code} at pc {i}")
                if poll_hooks:
                    thread.pc = i
                    if poll_timers:
                        for timer in timers:
                            timer.maybe_fire(thread)
                    elif deadline_mode and clock._now_ns >= next_deadline:
                        for timer in timers:
                            timer.maybe_fire(thread)
                        if next_deadline > 0:
                            record(timer_fire, clock._now_ns, tid)
                        next_deadline = min(t.next_fire_ns(thread) for t in timers)
                    if mig_pending and tid in mig_pending:
                        mig.maybe_migrate(thread)
        finally:
            thread.pc = i
            self.ops_executed += i - start_i
        # Program exhausted: close the final interval.
        self.hlrc.close_interval(thread, "end")
        thread.state = ThreadState.DONE

    # -- synchronization handlers (dispatch targets) -------------------
    # Each returns True when the post-op hooks should run for the
    # synchronizing thread (i.e. the op completed without blocking it).

    def _do_acquire(self, thread: SimThread, op: tuple) -> bool:
        if self.hlrc.acquire(thread, op[1]):
            return True
        thread.state = ThreadState.WAITING_LOCK
        thread.waiting_lock_id = op[1]
        return False

    def _do_release(self, thread: SimThread, op: tuple) -> bool:
        unblocked = self.hlrc.release(thread, op[1], self.threads_by_id)
        if unblocked is not None:
            other = self.threads_by_id[unblocked]
            other.state = ThreadState.RUNNABLE
            other.waiting_lock_id = None
        return True

    def _do_barrier(self, thread: SimThread, op: tuple) -> bool:
        barrier_id = op[1]
        last = self.hlrc.barrier_arrive(thread, barrier_id, self.parties)
        # Every participant parks — the last arriver too; the episode
        # completes when its BARRIER_RELEASE event dispatches.
        thread.state = ThreadState.WAITING_BARRIER
        thread.waiting_barrier_id = barrier_id
        if last:
            self.kernel.schedule(
                EventKind.BARRIER_RELEASE,
                thread.clock.now_ns,
                actor=barrier_id,
                data=thread.thread_id,
                callback=self._on_barrier_release,
            )
        return False

    def _post_op(self, thread: SimThread, timers, mig) -> None:
        """Poll timer hooks and pending migrations after one op.

        Kept for compatibility; the hot loop inlines this behind a
        "hooks attached" guard.
        """
        for timer in timers:
            timer.maybe_fire(thread)
        if mig is not None and mig.has_pending(thread.thread_id):
            mig.maybe_migrate(thread)
