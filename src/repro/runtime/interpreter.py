"""The interpreter/scheduler: executes thread programs over the HLRC
protocol engine with simulated-time accounting.

Scheduling model: a thread runs without preemption until it reaches a
synchronization op (legal under lazy release consistency — remote writes
only become visible at synchronization anyway); the scheduler then
resumes the runnable thread with the smallest simulated clock.  Barriers
park threads until the last participant arrives.

Timer hooks (stack sampler, sticky-set footprint tracker) are polled
after every op against the owning thread's clock — the simulated analogue
of the paper's millisecond-granularity profiling timers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.dsm.hlrc import HomeBasedLRC
from repro.runtime import program as prog
from repro.runtime.stack import Frame
from repro.runtime.thread import SimThread, ThreadState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.migration import MigrationEngine

#: cost of a SETSLOT (a store to the current frame), nanoseconds.
SETSLOT_NS = 2


class TimerHook(Protocol):
    """A profiler component driven by per-thread simulated timers."""

    def maybe_fire(self, thread: SimThread) -> None:
        """Fire if the thread's clock passed the component's next deadline."""
        ...


class Interpreter:
    """Executes a set of thread programs to completion."""

    def __init__(
        self,
        hlrc: HomeBasedLRC,
        threads: list[SimThread],
        *,
        barrier_parties: int | None = None,
        timeshare_nodes: bool = True,
    ) -> None:
        if not threads:
            raise ValueError("interpreter needs at least one thread")
        self.hlrc = hlrc
        self.threads = threads
        self.threads_by_id = {t.thread_id: t for t in threads}
        if len(self.threads_by_id) != len(threads):
            raise ValueError("duplicate thread ids")
        self.parties = barrier_parties if barrier_parties is not None else len(threads)
        self.costs = hlrc.costs
        #: single-core nodes (the paper's P4s): threads co-located on a
        #: node serialize their execution segments on its one core — the
        #: non-preemptive user-level threading regime of Kaffe.  Off =
        #: one core per thread (an idealized SMP node).
        self.timeshare_nodes = timeshare_nodes
        #: per-node core-busy cursor (ns) for the timesharing model.
        self._node_cursor: dict[int, int] = {}
        #: timer-driven profiler components, polled after every op.
        self.timers: list[TimerHook] = []
        #: migration engine checks (thread_id -> pending), set by MigrationEngine.
        self.migration_engine: "MigrationEngine | None" = None
        self.ops_executed = 0
        #: opcode -> bound handler for synchronization ops; indexed by the
        #: hot loop so ACQUIRE/RELEASE/BARRIER share one dispatch site.
        self._sync_dispatch = {
            prog.OP_ACQUIRE: self._do_acquire,
            prog.OP_RELEASE: self._do_release,
            prog.OP_BARRIER: self._do_barrier,
        }

    # ------------------------------------------------------------------

    def attach_programs(self, programs: dict[int, object]) -> None:
        """Attach and pre-decode an op iterable per thread id.

        Programs are compiled once into :class:`~repro.runtime.program.
        CompiledProgram` (dense op tuples + opcode array); the thread's
        ``pc`` then doubles as the resume cursor across scheduling
        points, replacing per-op generator resumption.
        """
        for thread in self.threads:
            if thread.thread_id not in programs:
                raise KeyError(f"no program for thread {thread.thread_id}")
            thread.program = prog.compile_program(programs[thread.thread_id])

    def run(self) -> None:
        """Execute every thread to completion."""
        for thread in self.threads:
            if thread.program is None:
                raise RuntimeError(f"thread {thread.thread_id} has no program attached")
            self.hlrc.open_interval(thread)
        while True:
            runnable = [t for t in self.threads if t.state is ThreadState.RUNNABLE]
            if not runnable:
                waiting = [
                    t
                    for t in self.threads
                    if t.state in (ThreadState.WAITING_BARRIER, ThreadState.WAITING_LOCK)
                ]
                if waiting:
                    raise RuntimeError(
                        "deadlock: threads "
                        f"{sorted(t.thread_id for t in waiting)} wait on "
                        "synchronization no one else will complete"
                    )
                return  # all DONE
            thread = min(runnable, key=lambda t: t.clock.now_ns)
            self._run_until_sync(thread)

    # ------------------------------------------------------------------

    def _run_until_sync(self, thread: SimThread) -> None:
        """Run one thread until it blocks, syncs, or finishes —
        serialized on its node's single core when timesharing is on."""
        if self.timeshare_nodes:
            # The node's core is busy until the cursor: the thread's
            # segment cannot start earlier.
            thread.clock.advance_to(self._node_cursor.get(thread.node_id, 0))
        try:
            self._run_segment(thread)
        finally:
            if self.timeshare_nodes:
                # The segment occupied the core (a migration mid-segment
                # charges the remainder to the destination node).
                node = thread.node_id
                cursor = self._node_cursor.get(node, 0)
                self._node_cursor[node] = max(cursor, thread.clock.now_ns)

    def _run_segment(self, thread: SimThread) -> None:
        """Execute ops until the next scheduling point.

        This is the simulator's innermost loop.  Everything touched per
        op is hoisted into locals, the thread's ``pc`` is the cursor
        into the compiled program (incremented before an op executes, as
        before), READ/WRITE/COMPUTE are inlined, synchronization ops go
        through a per-opcode dispatch table, and the timer/migration
        poll is skipped entirely unless such hooks are attached.
        """
        program = thread.program
        assert program is not None
        if not isinstance(program, prog.CompiledProgram):
            # Direct attachment (tests poke thread.program): decode lazily.
            program = thread.program = prog.compile_program(program)
        ops = program.ops
        n_ops = program.n_ops
        i = thread.pc
        # Hot-path locals: attribute lookups hoisted out of the loop.
        costs = self.costs
        access = self.hlrc.access
        clock = thread.clock
        cpu = thread.cpu
        stack = thread.stack
        frame_push_ns = costs.frame_push_ns
        frame_pop_ns = costs.frame_pop_ns
        scale_is_unity = costs.compute_scale == 1.0
        scaled_compute = costs.scaled_compute
        sync_dispatch = self._sync_dispatch
        timers = self.timers
        mig = self.migration_engine
        mig_pending = mig._pending if mig is not None else None
        poll_hooks = bool(timers) or mig is not None
        tid = thread.thread_id
        start_i = i
        try:
            # ``thread.pc`` is only observed at scheduling points (sync
            # dispatch, timer/migration polls, interval close, errors),
            # so the cursor stays in the local ``i`` during straight-line
            # runs and is published right before any of those.
            while i < n_ops:
                op = ops[i]
                i += 1
                code = op[0]
                if code <= prog.OP_WRITE:  # READ / WRITE
                    access(thread, op[1], code == prog.OP_WRITE, op[2], op[3], op[4])
                elif code == prog.OP_COMPUTE:
                    v = op[1]
                    if scale_is_unity and type(v) is int and v >= 0:
                        ns = v
                    else:
                        ns = scaled_compute(v)
                    cpu.compute_ns += ns
                    clock._now_ns += ns
                elif code == prog.OP_CALL:
                    stack.push(Frame(op[1], op[2], dict(op[3])))
                    cpu.access_ns += frame_push_ns
                    clock._now_ns += frame_push_ns
                elif code == prog.OP_RET:
                    stack.pop()
                    cpu.access_ns += frame_pop_ns
                    clock._now_ns += frame_pop_ns
                elif code == prog.OP_SETSLOT:
                    top = stack.top
                    if top is None:
                        thread.pc = i
                        raise RuntimeError(
                            f"thread {tid}: SETSLOT at pc {i} with empty stack"
                        )
                    top.set_slot(op[1], op[2])
                    cpu.access_ns += SETSLOT_NS
                    clock._now_ns += SETSLOT_NS
                elif code <= prog.OP_BARRIER:  # ACQUIRE / RELEASE / BARRIER
                    thread.pc = i
                    if sync_dispatch[code](thread, op) and poll_hooks:
                        for timer in timers:
                            timer.maybe_fire(thread)
                        if mig_pending and tid in mig_pending:
                            mig.maybe_migrate(thread)
                    return  # yield so sync ordering tracks simulated time
                else:
                    thread.pc = i
                    raise ValueError(f"unknown opcode {code} at pc {i}")
                if poll_hooks:
                    thread.pc = i
                    for timer in timers:
                        timer.maybe_fire(thread)
                    if mig_pending and tid in mig_pending:
                        mig.maybe_migrate(thread)
        finally:
            thread.pc = i
            self.ops_executed += i - start_i
        # Program exhausted: close the final interval.
        self.hlrc.close_interval(thread, "end")
        thread.state = ThreadState.DONE

    # -- synchronization handlers (dispatch targets) -------------------
    # Each returns True when the post-op hooks should run for the
    # synchronizing thread (i.e. the op completed without blocking it).

    def _do_acquire(self, thread: SimThread, op: tuple) -> bool:
        if self.hlrc.acquire(thread, op[1]):
            return True
        thread.state = ThreadState.WAITING_LOCK
        thread.waiting_lock_id = op[1]
        return False

    def _do_release(self, thread: SimThread, op: tuple) -> bool:
        unblocked = self.hlrc.release(thread, op[1], self.threads_by_id)
        if unblocked is not None:
            other = self.threads_by_id[unblocked]
            other.state = ThreadState.RUNNABLE
            other.waiting_lock_id = None
        return True

    def _do_barrier(self, thread: SimThread, op: tuple) -> bool:
        barrier_id = op[1]
        if not self.hlrc.barrier_arrive(thread, barrier_id, self.parties):
            thread.state = ThreadState.WAITING_BARRIER
            thread.waiting_barrier_id = barrier_id
            return False
        self.hlrc.barrier_release(self.threads_by_id, barrier_id)
        for other in self.threads:
            if (
                other.state is ThreadState.WAITING_BARRIER
                and other.waiting_barrier_id == barrier_id
            ):
                other.state = ThreadState.RUNNABLE
                other.waiting_barrier_id = None
        return True

    def _post_op(self, thread: SimThread, timers, mig) -> None:
        """Poll timer hooks and pending migrations after one op.

        Kept for compatibility; the hot loop inlines this behind a
        "hooks attached" guard.
        """
        for timer in timers:
            timer.maybe_fire(thread)
        if mig is not None and mig.has_pending(thread.thread_id):
            mig.maybe_migrate(thread)
