"""Workload IR export: the static view of a built (not yet run) DJVM.

The dynamic profilers observe a workload *as it executes*; the static
analyses (:mod:`repro.checks.staticflow`) want the same information
*before the first op runs*: the pre-decoded thread programs, the
thread -> node placement, and the allocated object graph with classes,
homes and sizes.  :class:`WorkloadIR` is that snapshot — an immutable
export taken from a built DJVM, so the analysis layer never holds a
live heap or mutates runtime state.

The op-stream format itself (opcodes, tuple shapes) is owned by
:mod:`repro.runtime.program`; this module only packages it with the
workload structure the per-program view cannot see (which threads run
where, which object ids exist, which barrier ids every thread must
agree on).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.program import CompiledProgram, compile_program

__all__ = ["ObjectInfo", "WorkloadIR"]


@dataclass(frozen=True, slots=True)
class ObjectInfo:
    """Static facts about one allocated GOS object."""

    obj_id: int
    class_id: int
    class_name: str
    home_node: int
    size_bytes: int
    is_array: bool
    length: int
    #: allocation-site label (workload-provided, or the class name).
    site: str


@dataclass(slots=True)
class WorkloadIR:
    """The whole-workload static IR: programs + placement + object graph."""

    n_nodes: int
    #: thread id -> pre-decoded program.
    programs: dict[int, CompiledProgram]
    #: thread id -> hosting node at build time.
    node_of_thread: dict[int, int]
    #: object id -> static object facts.
    objects: dict[int, ObjectInfo]

    @property
    def n_threads(self) -> int:
        """Number of threads in the workload."""
        return len(self.programs)

    def thread_ids(self) -> list[int]:
        """Thread ids in canonical (sorted) order."""
        return sorted(self.programs)

    def class_names(self) -> list[str]:
        """Distinct class names of allocated objects, sorted."""
        return sorted({self.objects[obj_id].class_name for obj_id in sorted(self.objects)})


def export_ir(djvm, programs: dict[int, object]) -> WorkloadIR:
    """Snapshot a built DJVM plus its thread programs into a
    :class:`WorkloadIR` (the entry point :meth:`repro.runtime.djvm.DJVM.
    export_ir` delegates to).

    ``programs`` may be raw op iterables (typically generators from
    ``workload.programs()``); they are compiled here, which *consumes*
    one-shot iterables — hand the run its own fresh streams.
    """
    compiled = {tid: compile_program(p) for tid, p in sorted(programs.items())}
    objects = {}
    for obj in djvm.gos:
        objects[obj.obj_id] = ObjectInfo(
            obj_id=obj.obj_id,
            class_id=obj.jclass.class_id,
            class_name=obj.jclass.name,
            home_node=obj.home_node,
            size_bytes=obj.size_bytes,
            is_array=obj.is_array,
            length=obj.length,
            site=obj.site if obj.site is not None else obj.jclass.name,
        )
    return WorkloadIR(
        n_nodes=len(djvm.cluster),
        programs=compiled,
        node_of_thread={t.thread_id: t.node_id for t in djvm.threads},
        objects=objects,
    )
