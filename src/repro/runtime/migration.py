"""Thread migration engine.

Migrating a thread ships its portable Java frames (direct cost) and then
pays *indirect* cost: every object the thread keeps using must be
re-faulted from its home to the new node (Section III, Fig. 4).  The
engine supports prefetching a resolved sticky set along with the
migration — the paper's mechanism for hiding those round trips — by
bulk-transferring the set in the migration message exchange and
installing valid cache copies at the target before the thread resumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dsm.hlrc import HomeBasedLRC
from repro.dsm.states import CopyRecord, RealState
from repro.runtime.thread import SimThread
from repro.sim.cluster import Cluster
from repro.sim.network import MessageKind

#: serialized bytes per stack slot in the portable frame format.
SLOT_WIRE_BYTES = 8
#: fixed migration message overhead (thread metadata, frame descriptors).
MIGRATION_OVERHEAD_BYTES = 256
#: per-object overhead in a prefetch bundle (id, class, version).
PREFETCH_ENTRY_OVERHEAD = 16


@dataclass
class MigrationPlan:
    """A pending migration request."""

    thread_id: int
    target_node: int
    #: trigger: migrate when the thread opens interval >= at_interval ...
    at_interval: int | None = None
    #: ... or when its pc reaches at_pc (whichever is set).
    at_pc: int | None = None
    #: explicit object ids to prefetch, or a provider called at migration time.
    prefetch: list[int] | None = None
    prefetch_provider: Callable[[SimThread], list[int]] | None = None

    def triggered(self, thread: SimThread) -> bool:
        """True once the thread reached the plan's trigger point."""
        if self.at_interval is not None and thread.interval_counter >= self.at_interval:
            return True
        if self.at_pc is not None and thread.pc >= self.at_pc:
            return True
        return self.at_interval is None and self.at_pc is None


@dataclass
class MigrationResult:
    """What one migration cost and carried."""

    thread_id: int
    from_node: int
    to_node: int
    stack_slots: int
    direct_cost_ns: int
    prefetched_objects: int = 0
    prefetched_bytes: int = 0
    #: ids actually installed at the target.
    prefetched_ids: list[int] = field(default_factory=list)


class MigrationEngine:
    """Performs (optionally prefetching) thread migrations."""

    def __init__(self, hlrc: HomeBasedLRC, cluster: Cluster) -> None:
        self.hlrc = hlrc
        self.cluster = cluster
        self._pending: dict[int, MigrationPlan] = {}
        self.results: list[MigrationResult] = []
        #: opt-in span tracer (repro.obs): pure observer, wired by the
        #: DJVM when telemetry tracing is configured.
        self.tracer = None

    def schedule(self, plan: MigrationPlan) -> None:
        """Queue a migration; the interpreter polls and fires it."""
        if plan.thread_id in self._pending:
            raise ValueError(f"thread {plan.thread_id} already has a pending migration")
        self._pending[plan.thread_id] = plan

    def has_pending(self, thread_id: int) -> bool:
        """True if a migration is queued for ``thread_id``."""
        return thread_id in self._pending

    def maybe_migrate(self, thread: SimThread) -> MigrationResult | None:
        """Fire the thread's pending migration if its trigger condition holds."""
        plan = self._pending.get(thread.thread_id)
        if plan is None or not plan.triggered(thread):
            return None
        del self._pending[thread.thread_id]
        prefetch_ids = plan.prefetch
        if prefetch_ids is None and plan.prefetch_provider is not None:
            prefetch_ids = plan.prefetch_provider(thread)
        return self.migrate(thread, plan.target_node, prefetch=prefetch_ids)

    def migrate(
        self,
        thread: SimThread,
        target_node: int,
        *,
        prefetch: list[int] | None = None,
    ) -> MigrationResult:
        """Move ``thread`` to ``target_node`` now, shipping the stack and
        (optionally) a prefetched object set."""
        if not 0 <= target_node < len(self.cluster):
            raise ValueError(f"target node {target_node} out of range")
        src = thread.node_id
        if src == target_node:
            raise ValueError(f"thread {thread.thread_id} is already on node {target_node}")
        costs = self.hlrc.costs
        network = self.hlrc.network

        migrate_begin_ns = thread.clock.now_ns
        slots = thread.stack.total_slots()
        freeze_ns = costs.migration_fixed_ns + slots * costs.migration_ns_per_slot
        thread.cpu.migration_ns += freeze_ns
        thread.clock.advance(freeze_ns)

        stack_bytes = MIGRATION_OVERHEAD_BYTES + slots * SLOT_WIRE_BYTES
        wait = network.send(
            MessageKind.MIGRATION, src, target_node, stack_bytes, thread.clock.now_ns
        )
        thread.cpu.network_wait_ns += wait
        thread.clock.advance(wait)

        result = MigrationResult(
            thread_id=thread.thread_id,
            from_node=src,
            to_node=target_node,
            stack_slots=slots,
            direct_cost_ns=freeze_ns + wait,
        )

        if prefetch:
            result.prefetched_ids = self._prefetch(thread, src, target_node, prefetch)
            result.prefetched_objects = len(result.prefetched_ids)
            result.prefetched_bytes = sum(
                self.hlrc.gos.get(o).size_bytes for o in result.prefetched_ids
            )

        # Rehome the thread.
        self.cluster[src].thread_ids.discard(thread.thread_id)
        self.cluster[target_node].thread_ids.add(thread.thread_id)
        thread.node_id = target_node
        thread.migrations += 1
        self.results.append(result)
        if self.tracer is not None:
            self.tracer.migration(
                thread, src, target_node, migrate_begin_ns, thread.clock.now_ns,
                result.prefetched_objects,
            )
        sanitizer = self.hlrc.sanitizer
        if sanitizer is not None:
            sanitizer.on_migration(thread, result)
        return result

    def _prefetch(
        self, thread: SimThread, src: int, target_node: int, obj_ids: list[int]
    ) -> list[int]:
        """Bulk-install valid cache copies of ``obj_ids`` at the target.

        Objects homed at the target need no transfer.  The bundle is
        grouped by home node: each contributing home sends one PREFETCH
        message to the target (a gather, overlapping the migration), and
        the thread waits for the largest single transfer.
        """
        gos = self.hlrc.gos
        heap = self.hlrc.heaps[target_node]
        by_home: dict[int, list[int]] = {}
        installed: list[int] = []
        for obj_id in obj_ids:
            obj = gos.get(obj_id)
            record = heap.get(obj_id)
            if record is not None and record.real_state is not RealState.INVALID:  # type: ignore[union-attr]
                continue  # already present and valid at the target
            if obj.home_node == target_node:
                continue  # home copies materialize for free
            by_home.setdefault(obj.home_node, []).append(obj_id)
        longest_wait = 0
        now = thread.clock.now_ns
        for home, ids in sorted(by_home.items()):
            bundle = sum(gos.get(o).size_bytes + PREFETCH_ENTRY_OVERHEAD for o in ids)
            wait = self.hlrc.network.send(
                MessageKind.PREFETCH, home, target_node, bundle, now
            )
            longest_wait = max(longest_wait, wait)
            for obj_id in ids:
                obj = gos.get(obj_id)
                record = heap.get(obj_id)
                if record is None:
                    heap.put(
                        obj_id,
                        CopyRecord(obj_id, RealState.VALID, fetched_version=obj.home_version),
                    )
                else:
                    record.real_state = RealState.VALID  # type: ignore[union-attr]
                    record.fetched_version = obj.home_version  # type: ignore[union-attr]
                installed.append(obj_id)
        thread.cpu.network_wait_ns += longest_wait
        thread.clock.advance(longest_wait)
        return installed
