"""Thread programs: the op-stream format workloads compile to.

A thread program is an iterable of small tuples — the simulator's
"bytecode".  Access ops are *aggregated*: one READ op can stand for
``repeat`` accesses touching ``n_elems`` distinct elements of an object,
which keeps op streams tractable while preserving exactly what the
protocol and the profilers observe (object identity, access counts,
element coverage, interval structure, stack shape).

Opcodes
-------

========  =======================================================
READ      (OP_READ, obj_id, n_elems, repeat, elem_off)
WRITE     (OP_WRITE, obj_id, n_elems, repeat, elem_off)
COMPUTE   (OP_COMPUTE, ns) — pure CPU work
CALL      (OP_CALL, method, n_slots, ((slot, obj_id), ...))
RET       (OP_RET,)
SETSLOT   (OP_SETSLOT, slot, obj_id_or_None)
ACQUIRE   (OP_ACQUIRE, lock_id)
RELEASE   (OP_RELEASE, lock_id)
BARRIER   (OP_BARRIER, barrier_id)
========  =======================================================
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

OP_READ = 0
OP_WRITE = 1
OP_COMPUTE = 2
OP_CALL = 3
OP_RET = 4
OP_SETSLOT = 5
OP_ACQUIRE = 6
OP_RELEASE = 7
OP_BARRIER = 8

OPCODE_NAMES = {
    OP_READ: "READ",
    OP_WRITE: "WRITE",
    OP_COMPUTE: "COMPUTE",
    OP_CALL: "CALL",
    OP_RET: "RET",
    OP_SETSLOT: "SETSLOT",
    OP_ACQUIRE: "ACQUIRE",
    OP_RELEASE: "RELEASE",
    OP_BARRIER: "BARRIER",
}

Op = tuple

#: shortest READ/WRITE/COMPUTE span worth replaying in bulk — below this
#: the vector engine's fixed per-run overhead beats the scalar loop.
MIN_VECTOR_RUN = 6

#: maximal spans of access-stream opcodes (READ=0, WRITE=1, COMPUTE=2)
#: found at C speed over the dense opcode array.
_ACCESS_RUN_RE = re.compile(rb"[\x00-\x02]+")

#: synchronization opcodes (ACQUIRE=6, RELEASE=7, BARRIER=8) located at
#: C speed for segment splitting (the static CFG builder's boundaries).
_SYNC_OP_RE = re.compile(rb"[\x06-\x08]")


class AccessRun:
    """One maximal READ/WRITE/COMPUTE span of a compiled program.

    The vector replay engine (:mod:`repro.runtime.vector`) executes such
    a span as array passes instead of per-op dispatch.  Everything that
    can be decided from the ops alone is computed by
    :meth:`materialize`, once per run: the per-object aggregate lanes
    (total reads/writes, written elements, last-access position) and the
    **checkpoints** — the run's slow lane: each object's run-local first
    access (where a coherence probe, and possibly a fault, must happen)
    and first write (where a twin may be created).  Every op outside the
    checkpoint set is guaranteed to be a cache hit or pure compute
    *given* the checkpoint outcomes, because copy state cannot change
    inside a segment.

    Construction only records the span: the lane build is a Python-speed
    pass over every op, which for a program of one-shot runs can cost
    more than executing the ops, so the engine defers it until a run
    actually vectorizes (the interpreter's ``hot`` warm-up gate).

    Cost arrays depend on the :class:`~repro.sim.costs.CostModel` and
    are attached lazily by the engine (``_cost_key`` / ``_costed``).
    """

    __slots__ = (
        "start",
        "end",
        "n_ops",
        "ops",
        "uniq",
        "u_reads",
        "u_writes",
        "u_welems",
        "u_wops",
        "u_first",
        "u_firstw",
        "u_last",
        "w_ks",
        "w_oids",
        "checkpoints",
        "_cost_key",
        "_costed",
        "hot",
    )

    def __init__(self, all_ops: tuple, start: int, end: int) -> None:
        #: absolute op-index span [start, end) in the program.
        self.start = start
        self.end = end
        self.n_ops = end - start
        self.ops = all_ops[start:end]
        #: lanes are built lazily; ``uniq is None`` marks a stub.
        self.uniq = None
        self._cost_key = None
        self._costed = None
        #: warm-up flag: the interpreter executes each run's first
        #: sighting through the scalar loop (one-shot runs never earn
        #: back the lane build) and vectorizes from the second on, so
        #: repeated executions — including other DJVM instances reusing
        #: the compiled program, as the bench harness does — go bulk.
        self.hot = False

    def materialize(self) -> "AccessRun":
        """Build the per-object aggregate lanes (idempotent)."""
        if self.uniq is not None:
            return self
        ops = self.ops
        uniq: list[int] = []
        index: dict[int, int] = {}
        u_reads: list[int] = []
        u_writes: list[int] = []
        u_welems: list[int] = []
        u_wops: list[int] = []
        u_first: list[int] = []
        u_firstw: list[int] = []
        u_last: list[int] = []
        cps: dict[int, tuple[int, bool, bool]] = {}
        for j, op in enumerate(ops):
            code = op[0]
            if code == OP_COMPUTE:
                continue
            oid = op[1]
            k = index.get(oid)
            if k is None:
                k = len(uniq)
                index[oid] = k
                uniq.append(oid)
                u_reads.append(0)
                u_writes.append(0)
                u_welems.append(0)
                u_wops.append(0)
                u_first.append(j)
                u_firstw.append(-1)
                u_last.append(j)
                cps[j] = (k, True, code == OP_WRITE)
            else:
                u_last[k] = j
            if code == OP_WRITE:
                if u_wops[k] == 0:
                    u_firstw[k] = j
                    if j not in cps:
                        # First write after a read first-touch: twin point.
                        cps[j] = (k, False, True)
                u_writes[k] += op[3]
                u_welems[k] += op[2]
                u_wops[k] += 1
            else:
                u_reads[k] += op[3]
        #: distinct object ids in first-access order (the order the
        #: interval's access-summary dict must be populated in).
        self.uniq = uniq
        #: per-uniq aggregate lanes (total repeats / written elements /
        #: write ops / run-local indexes of the first and last access).
        self.u_reads = u_reads
        self.u_writes = u_writes
        self.u_welems = u_welems
        self.u_wops = u_wops
        self.u_first = u_first
        self.u_firstw = u_firstw
        self.u_last = u_last
        #: written subset: uniq indexes and object ids with >= 1 write,
        #: for the engine's summary-free bookkeeping path.
        self.w_ks = tuple(k for k, wo in enumerate(u_wops) if wo)
        self.w_oids = tuple(uniq[k] for k in self.w_ks)
        #: run-local slow lane: (rel_idx, uniq_idx, first_access,
        #: check_write) in op order.
        self.checkpoints = tuple(
            (j, k, fa, cw) for j, (k, fa, cw) in sorted(cps.items())
        )
        return self


class CompiledProgram:
    """A pre-decoded thread program: the dense form the interpreter runs.

    Workloads hand the interpreter arbitrary op iterables (usually
    generators).  Compiling materializes the stream once into a flat
    tuple of ops plus a parallel ``bytes`` opcode array, so the hot
    execution loop indexes dense arrays instead of resuming a generator
    per op, and segment resumption after a synchronization yield is a
    plain cursor (the thread's ``pc``) rather than iterator state.
    """

    __slots__ = ("ops", "codes", "n_ops", "_vruns", "_verified")

    def __init__(self, ops: Iterable[Op]) -> None:
        decoded = tuple(ops) if not isinstance(ops, tuple) else ops
        # bytes() already rejects non-ints and codes outside 0..255; one
        # C-speed max() catches anything past the opcode range.
        codes = bytes(op[0] for op in decoded)
        if codes and max(codes) > OP_BARRIER:
            i = next(i for i, c in enumerate(codes) if c > OP_BARRIER)
            raise ValueError(f"op {i}: unknown opcode {codes[i]!r}")
        self.ops = decoded
        #: dense per-op opcode array (one byte per op).
        self.codes = codes
        self.n_ops = len(decoded)
        self._vruns: dict[int, AccessRun] | None = None
        #: set by the staticflow IR verifier's structural gate after the
        #: program passes, so reuse across DJVM instances (the bench
        #: harness pattern) verifies once.
        self._verified = False

    def __len__(self) -> int:
        return self.n_ops

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def vector_runs(self, min_len: int = MIN_VECTOR_RUN) -> dict[int, AccessRun]:
        """Extract (and cache) the program's vectorizable access runs.

        Returns ``{start_pc: AccessRun}`` for every maximal
        READ/WRITE/COMPUTE span of at least ``min_len`` ops.  The regex
        scan over the dense opcode array finds span boundaries at C
        speed; per-run lane extraction happens once per program.
        """
        runs = self._vruns
        if runs is None:
            runs = {}
            for m in _ACCESS_RUN_RE.finditer(self.codes):
                s, e = m.start(), m.end()
                if e - s >= min_len:
                    runs[s] = AccessRun(self.ops, s, e)
            self._vruns = runs
        return runs

    def sync_points(self) -> list[tuple[int, int]]:
        """``(pc, opcode)`` of every ACQUIRE/RELEASE/BARRIER op, in
        program order — the segment boundaries the static CFG builder
        splits at, found at C speed over the dense opcode array."""
        codes = self.codes
        return [(m.start(), codes[m.start()]) for m in _SYNC_OP_RE.finditer(codes)]

    def opcode_counts(self) -> dict[int, int]:
        """Histogram {opcode: occurrences} (for reporting/tooling)."""
        counts: dict[int, int] = {}
        for code in self.codes:
            counts[code] = counts.get(code, 0) + 1
        return counts


def compile_program(ops: Iterable[Op]) -> CompiledProgram:
    """Pre-decode an op iterable (idempotent on compiled programs)."""
    if isinstance(ops, CompiledProgram):
        return ops
    return CompiledProgram(ops)


def read(obj_id: int, n_elems: int = 1, repeat: int = 1, elem_off: int = 0) -> Op:
    """READ op: ``repeat`` reads over ``n_elems`` elements from ``elem_off``."""
    return (OP_READ, obj_id, n_elems, repeat, elem_off)


def write(obj_id: int, n_elems: int = 1, repeat: int = 1, elem_off: int = 0) -> Op:
    """WRITE op: ``repeat`` writes over ``n_elems`` elements from ``elem_off``."""
    return (OP_WRITE, obj_id, n_elems, repeat, elem_off)


def compute(ns: int) -> Op:
    """COMPUTE op: ``ns`` nanoseconds of pure CPU work."""
    return (OP_COMPUTE, ns)


def call(method: str, n_slots: int = 4, refs: Iterable[tuple[int, int]] = ()) -> Op:
    """CALL op: push a frame with ``n_slots`` slots, reference slots preset."""
    return (OP_CALL, method, n_slots, tuple(refs))


def ret() -> Op:
    """RET op: pop the top frame."""
    return (OP_RET,)


def setslot(slot: int, obj_id: int | None) -> Op:
    """SETSLOT op: store ``obj_id`` (or None) into a top-frame slot."""
    return (OP_SETSLOT, slot, obj_id)


def acquire(lock_id: int) -> Op:
    """ACQUIRE op: distributed lock acquire (interval boundary)."""
    return (OP_ACQUIRE, lock_id)


def release(lock_id: int) -> Op:
    """RELEASE op: distributed lock release (interval boundary)."""
    return (OP_RELEASE, lock_id)


def barrier(barrier_id: int) -> Op:
    """BARRIER op: global barrier (interval boundary)."""
    return (OP_BARRIER, barrier_id)


class ProgramBuilder:
    """Convenience builder for op lists, used by workloads and tests.

    Methods mirror the op constructors and return ``self`` for chaining;
    :meth:`ops` yields the accumulated list.
    """

    def __init__(self) -> None:
        self._ops: list[Op] = []

    def read(self, obj_id: int, n_elems: int = 1, repeat: int = 1, elem_off: int = 0) -> "ProgramBuilder":
        """READ op (see module-level :func:`read`)."""
        self._ops.append(read(obj_id, n_elems, repeat, elem_off))
        return self

    def write(self, obj_id: int, n_elems: int = 1, repeat: int = 1, elem_off: int = 0) -> "ProgramBuilder":
        """WRITE op (see module-level :func:`write`)."""
        self._ops.append(write(obj_id, n_elems, repeat, elem_off))
        return self

    def compute(self, ns: int) -> "ProgramBuilder":
        """COMPUTE op (see module-level :func:`compute`)."""
        self._ops.append(compute(ns))
        return self

    def call(self, method: str, n_slots: int = 4, refs: Iterable[tuple[int, int]] = ()) -> "ProgramBuilder":
        """CALL op (see module-level :func:`call`)."""
        self._ops.append(call(method, n_slots, refs))
        return self

    def ret(self) -> "ProgramBuilder":
        """RET op (see module-level :func:`ret`)."""
        self._ops.append(ret())
        return self

    def setslot(self, slot: int, obj_id: int | None) -> "ProgramBuilder":
        """SETSLOT op (see module-level :func:`setslot`)."""
        self._ops.append(setslot(slot, obj_id))
        return self

    def acquire(self, lock_id: int) -> "ProgramBuilder":
        """ACQUIRE op (see module-level :func:`acquire`)."""
        self._ops.append(acquire(lock_id))
        return self

    def release(self, lock_id: int) -> "ProgramBuilder":
        """RELEASE op (see module-level :func:`release`)."""
        self._ops.append(release(lock_id))
        return self

    def barrier(self, barrier_id: int) -> "ProgramBuilder":
        """BARRIER op (see module-level :func:`barrier`)."""
        self._ops.append(barrier(barrier_id))
        return self

    def extend(self, ops: Iterable[Op]) -> "ProgramBuilder":
        """Append a sequence of prebuilt ops."""
        self._ops.extend(ops)
        return self

    def ops(self) -> list[Op]:
        """The accumulated op list (a copy)."""
        return list(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)


def validate_program(ops: Iterable[Op]) -> list[str]:
    """Static well-formedness check: balanced CALL/RET, SETSLOT only
    inside a frame, ACQUIRE/RELEASE pairing per lock.  Returns a list of
    problem descriptions (empty = valid)."""
    problems: list[str] = []
    depth = 0
    held: set[int] = set()
    for i, op in enumerate(ops):
        code = op[0]
        if code == OP_CALL:
            depth += 1
        elif code == OP_RET:
            depth -= 1
            if depth < 0:
                problems.append(f"op {i}: RET with empty stack")
                depth = 0
        elif code == OP_SETSLOT:
            if depth == 0:
                problems.append(f"op {i}: SETSLOT outside any frame")
        elif code == OP_ACQUIRE:
            lock = op[1]
            if lock in held:
                problems.append(f"op {i}: ACQUIRE of lock {lock} already held")
            held.add(lock)
        elif code == OP_RELEASE:
            lock = op[1]
            if lock not in held:
                problems.append(f"op {i}: RELEASE of lock {lock} not held")
            held.discard(lock)
    if depth != 0:
        problems.append(f"program ends with {depth} unpopped frame(s)")
    if held:
        problems.append(f"program ends holding locks {sorted(held)}")
    return problems
