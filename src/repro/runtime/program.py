"""Thread programs: the op-stream format workloads compile to.

A thread program is an iterable of small tuples — the simulator's
"bytecode".  Access ops are *aggregated*: one READ op can stand for
``repeat`` accesses touching ``n_elems`` distinct elements of an object,
which keeps op streams tractable while preserving exactly what the
protocol and the profilers observe (object identity, access counts,
element coverage, interval structure, stack shape).

Opcodes
-------

========  =======================================================
READ      (OP_READ, obj_id, n_elems, repeat, elem_off)
WRITE     (OP_WRITE, obj_id, n_elems, repeat, elem_off)
COMPUTE   (OP_COMPUTE, ns) — pure CPU work
CALL      (OP_CALL, method, n_slots, ((slot, obj_id), ...))
RET       (OP_RET,)
SETSLOT   (OP_SETSLOT, slot, obj_id_or_None)
ACQUIRE   (OP_ACQUIRE, lock_id)
RELEASE   (OP_RELEASE, lock_id)
BARRIER   (OP_BARRIER, barrier_id)
========  =======================================================
"""

from __future__ import annotations

from typing import Iterable, Iterator

OP_READ = 0
OP_WRITE = 1
OP_COMPUTE = 2
OP_CALL = 3
OP_RET = 4
OP_SETSLOT = 5
OP_ACQUIRE = 6
OP_RELEASE = 7
OP_BARRIER = 8

OPCODE_NAMES = {
    OP_READ: "READ",
    OP_WRITE: "WRITE",
    OP_COMPUTE: "COMPUTE",
    OP_CALL: "CALL",
    OP_RET: "RET",
    OP_SETSLOT: "SETSLOT",
    OP_ACQUIRE: "ACQUIRE",
    OP_RELEASE: "RELEASE",
    OP_BARRIER: "BARRIER",
}

Op = tuple


class CompiledProgram:
    """A pre-decoded thread program: the dense form the interpreter runs.

    Workloads hand the interpreter arbitrary op iterables (usually
    generators).  Compiling materializes the stream once into a flat
    tuple of ops plus a parallel ``bytes`` opcode array, so the hot
    execution loop indexes dense arrays instead of resuming a generator
    per op, and segment resumption after a synchronization yield is a
    plain cursor (the thread's ``pc``) rather than iterator state.
    """

    __slots__ = ("ops", "codes", "n_ops")

    def __init__(self, ops: Iterable[Op]) -> None:
        decoded = tuple(ops) if not isinstance(ops, tuple) else ops
        # bytes() already rejects non-ints and codes outside 0..255; one
        # C-speed max() catches anything past the opcode range.
        codes = bytes(op[0] for op in decoded)
        if codes and max(codes) > OP_BARRIER:
            i = next(i for i, c in enumerate(codes) if c > OP_BARRIER)
            raise ValueError(f"op {i}: unknown opcode {codes[i]!r}")
        self.ops = decoded
        #: dense per-op opcode array (one byte per op).
        self.codes = codes
        self.n_ops = len(decoded)

    def __len__(self) -> int:
        return self.n_ops

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def opcode_counts(self) -> dict[int, int]:
        """Histogram {opcode: occurrences} (for reporting/tooling)."""
        counts: dict[int, int] = {}
        for code in self.codes:
            counts[code] = counts.get(code, 0) + 1
        return counts


def compile_program(ops: Iterable[Op]) -> CompiledProgram:
    """Pre-decode an op iterable (idempotent on compiled programs)."""
    if isinstance(ops, CompiledProgram):
        return ops
    return CompiledProgram(ops)


def read(obj_id: int, n_elems: int = 1, repeat: int = 1, elem_off: int = 0) -> Op:
    """READ op: ``repeat`` reads over ``n_elems`` elements from ``elem_off``."""
    return (OP_READ, obj_id, n_elems, repeat, elem_off)


def write(obj_id: int, n_elems: int = 1, repeat: int = 1, elem_off: int = 0) -> Op:
    """WRITE op: ``repeat`` writes over ``n_elems`` elements from ``elem_off``."""
    return (OP_WRITE, obj_id, n_elems, repeat, elem_off)


def compute(ns: int) -> Op:
    """COMPUTE op: ``ns`` nanoseconds of pure CPU work."""
    return (OP_COMPUTE, ns)


def call(method: str, n_slots: int = 4, refs: Iterable[tuple[int, int]] = ()) -> Op:
    """CALL op: push a frame with ``n_slots`` slots, reference slots preset."""
    return (OP_CALL, method, n_slots, tuple(refs))


def ret() -> Op:
    """RET op: pop the top frame."""
    return (OP_RET,)


def setslot(slot: int, obj_id: int | None) -> Op:
    """SETSLOT op: store ``obj_id`` (or None) into a top-frame slot."""
    return (OP_SETSLOT, slot, obj_id)


def acquire(lock_id: int) -> Op:
    """ACQUIRE op: distributed lock acquire (interval boundary)."""
    return (OP_ACQUIRE, lock_id)


def release(lock_id: int) -> Op:
    """RELEASE op: distributed lock release (interval boundary)."""
    return (OP_RELEASE, lock_id)


def barrier(barrier_id: int) -> Op:
    """BARRIER op: global barrier (interval boundary)."""
    return (OP_BARRIER, barrier_id)


class ProgramBuilder:
    """Convenience builder for op lists, used by workloads and tests.

    Methods mirror the op constructors and return ``self`` for chaining;
    :meth:`ops` yields the accumulated list.
    """

    def __init__(self) -> None:
        self._ops: list[Op] = []

    def read(self, obj_id: int, n_elems: int = 1, repeat: int = 1, elem_off: int = 0) -> "ProgramBuilder":
        """READ op (see module-level :func:`read`)."""
        self._ops.append(read(obj_id, n_elems, repeat, elem_off))
        return self

    def write(self, obj_id: int, n_elems: int = 1, repeat: int = 1, elem_off: int = 0) -> "ProgramBuilder":
        """WRITE op (see module-level :func:`write`)."""
        self._ops.append(write(obj_id, n_elems, repeat, elem_off))
        return self

    def compute(self, ns: int) -> "ProgramBuilder":
        """COMPUTE op (see module-level :func:`compute`)."""
        self._ops.append(compute(ns))
        return self

    def call(self, method: str, n_slots: int = 4, refs: Iterable[tuple[int, int]] = ()) -> "ProgramBuilder":
        """CALL op (see module-level :func:`call`)."""
        self._ops.append(call(method, n_slots, refs))
        return self

    def ret(self) -> "ProgramBuilder":
        """RET op (see module-level :func:`ret`)."""
        self._ops.append(ret())
        return self

    def setslot(self, slot: int, obj_id: int | None) -> "ProgramBuilder":
        """SETSLOT op (see module-level :func:`setslot`)."""
        self._ops.append(setslot(slot, obj_id))
        return self

    def acquire(self, lock_id: int) -> "ProgramBuilder":
        """ACQUIRE op (see module-level :func:`acquire`)."""
        self._ops.append(acquire(lock_id))
        return self

    def release(self, lock_id: int) -> "ProgramBuilder":
        """RELEASE op (see module-level :func:`release`)."""
        self._ops.append(release(lock_id))
        return self

    def barrier(self, barrier_id: int) -> "ProgramBuilder":
        """BARRIER op (see module-level :func:`barrier`)."""
        self._ops.append(barrier(barrier_id))
        return self

    def extend(self, ops: Iterable[Op]) -> "ProgramBuilder":
        """Append a sequence of prebuilt ops."""
        self._ops.extend(ops)
        return self

    def ops(self) -> list[Op]:
        """The accumulated op list (a copy)."""
        return list(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops)

    def __len__(self) -> int:
        return len(self._ops)


def validate_program(ops: Iterable[Op]) -> list[str]:
    """Static well-formedness check: balanced CALL/RET, SETSLOT only
    inside a frame, ACQUIRE/RELEASE pairing per lock.  Returns a list of
    problem descriptions (empty = valid)."""
    problems: list[str] = []
    depth = 0
    held: set[int] = set()
    for i, op in enumerate(ops):
        code = op[0]
        if code == OP_CALL:
            depth += 1
        elif code == OP_RET:
            depth -= 1
            if depth < 0:
                problems.append(f"op {i}: RET with empty stack")
                depth = 0
        elif code == OP_SETSLOT:
            if depth == 0:
                problems.append(f"op {i}: SETSLOT outside any frame")
        elif code == OP_ACQUIRE:
            lock = op[1]
            if lock in held:
                problems.append(f"op {i}: ACQUIRE of lock {lock} already held")
            held.add(lock)
        elif code == OP_RELEASE:
            lock = op[1]
            if lock not in held:
                problems.append(f"op {i}: RELEASE of lock {lock} not held")
            held.discard(lock)
    if depth != 0:
        problems.append(f"program ends with {depth} unpopped frame(s)")
    if held:
        problems.append(f"program ends holding locks {sorted(held)}")
    return problems
