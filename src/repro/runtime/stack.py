"""Simulated Java thread stacks.

The JVM is a stack machine: every bytecode reaches its operands through
the current frame, so all live object references a thread can use are
rooted in frame slots (the property Section III.A.2 exploits).  A
:class:`Frame` models one Java method activation: a method name, a flat
slot array (arguments + locals, reference slots holding object ids,
non-reference slots holding ``None``), and the ``visited`` flag the
paper's JIT hack clears in every method prologue for two-phase stack
scanning.

Frames carry a process-unique ``frame_uid`` so the stack sampler can
tell "the same activation sampled again" apart from "a fresh activation
of the same method at the same depth" — the distinction the visited flag
encodes in the real system.
"""

from __future__ import annotations

import itertools
from typing import Iterator

_frame_uids = itertools.count()


class Frame:
    """One Java method activation record."""

    __slots__ = ("method", "slots", "visited", "frame_uid")

    def __init__(self, method: str, n_slots: int, refs: dict[int, int] | None = None) -> None:
        if n_slots < 0:
            raise ValueError(f"frame cannot have {n_slots} slots")
        self.method = method
        #: slot i holds an object id (reference) or None (non-reference).
        self.slots: list[int | None] = [None] * n_slots
        if refs:
            for idx, obj_id in refs.items():  # simlint: disable=SIM003 (hot path; independent per-slot stores, order cannot leak)
                if not 0 <= idx < n_slots:
                    raise IndexError(f"ref slot {idx} out of range for {n_slots} slots")
                self.slots[idx] = obj_id
        #: cleared in the method prologue; set by the stack sampler.
        self.visited = False
        self.frame_uid = next(_frame_uids)

    def set_slot(self, idx: int, obj_id: int | None) -> None:
        """Store ``obj_id`` (or None) into slot ``idx``."""
        self.slots[idx] = obj_id

    def get_slot(self, idx: int) -> int | None:
        """Return slot ``idx``'s content."""
        return self.slots[idx]

    def ref_slots(self) -> list[tuple[int, int]]:
        """(slot index, object id) for every reference-holding slot."""
        return [(i, v) for i, v in enumerate(self.slots) if v is not None]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Frame({self.method!r}, uid={self.frame_uid}, slots={self.slots})"


class JavaStack:
    """A thread's Java stack; index 0 is the bottom (oldest) frame."""

    __slots__ = ("_frames",)

    def __init__(self) -> None:
        self._frames: list[Frame] = []

    def push(self, frame: Frame) -> None:
        """Push a frame onto the stack."""
        self._frames.append(frame)

    def pop(self) -> Frame:
        """Pop and return the top frame."""
        if not self._frames:
            raise IndexError("pop from empty Java stack")
        return self._frames.pop()

    @property
    def top(self) -> Frame | None:
        """The top (most recent) frame, or None when empty."""
        return self._frames[-1] if self._frames else None

    @property
    def bottom(self) -> Frame | None:
        """The bottom (oldest) frame, or None when empty."""
        return self._frames[0] if self._frames else None

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        """Bottom-up iteration."""
        return iter(self._frames)

    def frames_top_down(self) -> Iterator[Frame]:
        """Top-down iteration (the order the sampler's first phase walks)."""
        return reversed(self._frames)

    def frame_at(self, depth_from_top: int) -> Frame:
        """Frame ``depth_from_top`` levels below the top (0 = top)."""
        return self._frames[-(depth_from_top + 1)]

    def total_slots(self) -> int:
        """Total slot count across frames (migration payload size proxy)."""
        return sum(len(f.slots) for f in self._frames)

    def live_refs(self) -> set[int]:
        """All object ids currently reachable from any frame slot."""
        refs: set[int] = set()
        for frame in self._frames:
            for value in frame.slots:
                if value is not None:
                    refs.add(value)
        return refs
