"""Simulated Java threads."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterator

from repro.dsm.intervals import IntervalRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.program import CompiledProgram
from repro.runtime.stack import JavaStack
from repro.sim.clock import SimClock
from repro.sim.costs import CpuAccounting


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""
    RUNNABLE = "runnable"
    WAITING_BARRIER = "waiting_barrier"
    WAITING_LOCK = "waiting_lock"
    DONE = "done"


class SimThread:
    """One application thread of the distributed JVM.

    Owns its simulated clock (advanced by every op it executes), a CPU
    accounting record broken down by cost category, a Java stack, and
    the HLRC interval state the protocol engine maintains.
    """

    __slots__ = (
        "thread_id",
        "node_id",
        "clock",
        "cpu",
        "stack",
        "state",
        "pc",
        "interval_counter",
        "current_interval",
        "program",
        "waiting_barrier_id",
        "waiting_lock_id",
        "migrations",
        "vc",
    )

    def __init__(self, thread_id: int, node_id: int) -> None:
        self.thread_id = thread_id
        self.node_id = node_id
        self.clock = SimClock()
        self.cpu = CpuAccounting()
        self.stack = JavaStack()
        self.state = ThreadState.RUNNABLE
        #: current op index ("bytecode PC") within the program; doubles as
        #: the interpreter's resume cursor across scheduling points.
        self.pc = 0
        #: HLRC interval state, maintained by the protocol engine.
        self.interval_counter = 0
        self.current_interval: IntervalRecord = IntervalRecord(thread_id, 0)
        #: compiled program (or raw op iterable), attached by the interpreter.
        self.program: "CompiledProgram | Iterator | None" = None
        #: barrier the thread is parked on (when WAITING_BARRIER).
        self.waiting_barrier_id: int | None = None
        #: lock the thread is parked on (when WAITING_LOCK).
        self.waiting_lock_id: int | None = None
        #: number of completed migrations.
        self.migrations = 0
        #: happens-before vector clock ({thread_id: clock}), assigned by
        #: the race detector when ``DJVM(racecheck=...)`` is on; None in
        #: plain runs (the detector owns and mutates the mapping).
        self.vc: dict[int, int] | None = None

    @property
    def is_runnable(self) -> bool:
        """True when the thread can be scheduled."""
        return self.state is ThreadState.RUNNABLE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimThread(#{self.thread_id} on node {self.node_id}, "
            f"{self.state.value}, t={self.clock.now_ms:.3f} ms)"
        )
