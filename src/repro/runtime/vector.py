"""Vectorized access replay: bulk execution of pre-decoded access runs.

The scalar interpreter dispatches every READ/WRITE/COMPUTE op through
Python (one :meth:`~repro.dsm.hlrc.HomeBasedLRC.access` call per op).
For the dominant access streams of real workloads that is almost pure
overhead: inside one execution segment, copy state cannot change (write
notices apply only at synchronization), so after an object's *first*
access of a run every later access is a guaranteed hit, and after its
*first* write the twin already exists.  This engine exploits that:

* **Fast lanes** (precomputed per run by :class:`~repro.runtime.program.
  AccessRun`): per-object totals of reads, writes, written elements and
  the position of the last access — applied to the interval's access
  summaries in one pass at run end.
* **Slow lane**: the run's *checkpoints* (first access / first write per
  object) execute the scalar protocol logic verbatim — coherence probe,
  remote fault, twin creation, summary creation, profiler fast hook.
* **Cost arrays**: exclusive prefix sums of every op's base cost (access
  busy time, compute time) make "advance the clock across k ops" one
  subtraction, and deadline-timer fires a ``numpy.searchsorted``.

Byte-identity with the scalar loop is the contract, not an aspiration:
clock values, CPU accounting buckets, interval summaries (including
``first_ns``/``last_ns`` and dict insertion order), twin/dirty/writer
state, fault traffic, timer-fire points and the kernel trace all come
out bit-for-bit equal, which the equivalence tests assert over
randomized programs.  The engine is disengaged whenever an observer
needs the per-op stream (sanitizer, race detector, per-op polled timers,
hooks without the ``fast_on_access`` protocol).

Clock bookkeeping uses one invariant: at fast-lane position ``pos``,

    ``clock == clock0 + extra + base[pos]``

where ``base`` is the prefix-cost array and ``extra`` accumulates every
cost the prefix pass cannot see (faults, twins, hook and timer-fire
work).  Extras are journaled as ``(key, cumulative)`` pairs keyed by
``2*idx`` for in-op extras (fault/twin — part of that op's access
instant) and ``2*idx + 1`` for post-instant extras (hook/timer work that
happens *after* the op's summary timestamp), so the per-object
``last_ns`` can be reconstructed exactly for any op with one bisect.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.dsm.intervals import AccessSummary
from repro.dsm.states import CopyRecord, RealState
from repro.runtime.program import OP_COMPUTE, OP_WRITE, AccessRun
from repro.sim.events import EventKind

_HOME = RealState.HOME
_INVALID = RealState.INVALID
_TIMER_FIRE = EventKind.TIMER_FIRE


class _CostedRun:
    """Per-(run, cost model) prefix-cost arrays (exclusive; length n+1)."""

    __slots__ = ("base", "base_np", "abusy", "comp", "first_base", "last_base")

    def __init__(self, run: AccessRun, costs) -> None:
        ops = run.ops
        n = run.n_ops
        busy_ns = costs.state_check_ns + costs.access_ns
        scale_is_unity = costs.compute_scale == 1.0
        scaled_compute = costs.scaled_compute
        base = [0] * (n + 1)
        abusy = [0] * (n + 1)
        comp = [0] * (n + 1)
        a = c = 0
        for j, op in enumerate(ops):
            if op[0] == OP_COMPUTE:
                v = op[1]
                # Mirrors the scalar loop's unity-scale fast path so
                # rounding behaviour is identical.
                c += v if scale_is_unity and type(v) is int and v >= 0 else scaled_compute(v)
            else:
                a += busy_ns * op[3]
            j1 = j + 1
            abusy[j1] = a
            comp[j1] = c
            base[j1] = a + c
        #: combined base cost prefix (access busy + compute).
        self.base = base
        #: same array for searchsorted deadline lookups.
        self.base_np = np.asarray(base, dtype=np.int64)
        #: access-busy-only and compute-only prefixes (CPU buckets).
        self.abusy = abusy
        self.comp = comp
        #: per-uniq base-clock offsets of the first/last access instant
        #: (exact summary timestamps when the run pays no extras).
        self.first_base = [base[j + 1] for j in run.u_first]
        self.last_base = [base[j + 1] for j in run.u_last]


class VectorEngine:
    """Executes :class:`AccessRun` spans in bulk for one interpreter.

    Created by :meth:`Interpreter.run` when replay mode is ``"vector"``
    and no per-op observer (sanitizer / race detector) is attached; the
    segment loop additionally disengages it per segment when a timer
    hook needs legacy per-op polling or a profiler hook lacks the
    ``fast_on_access`` protocol.
    """

    __slots__ = (
        "interp",
        "hlrc",
        "_objects",
        "_copies_by_node",
        "costs",
        "demoted",
        "_strikes",
    )

    def __init__(self, interp) -> None:
        self.interp = interp
        hl = interp.hlrc
        self.hlrc = hl
        self._objects = hl._objects
        self._copies_by_node = hl._copies_by_node
        self.costs = hl.costs
        #: runs demoted to the scalar loop (see _maybe_demote): access
        #: streams where most distinct objects keep needing protocol
        #: work, so bulk replay is pure overhead on top of the scalar
        #: walk.  Both paths are byte-identical; this is purely adaptive
        #: performance routing, decided per engine (never cached on the
        #: shared compiled program).
        self.demoted: set[AccessRun] = set()
        #: run -> consecutive majority-slow executions.  One strike is
        #: expected (cold start: every first touch faults); a second
        #: consecutive strike means the working set is re-invalidated
        #: every epoch and the run will never go fast.
        self._strikes: dict[AccessRun, int] = {}

    def _maybe_demote(self, run: AccessRun, n_slow: int, n_uniq: int) -> None:
        """Track majority-slow executions; demote after two in a row."""
        if n_slow * 2 > n_uniq:
            strikes = self._strikes.get(run, 0) + 1
            if strikes >= 2:
                self.demoted.add(run)
            else:
                self._strikes[run] = strikes
        elif run in self._strikes:
            del self._strikes[run]

    def _costed(self, run: AccessRun) -> _CostedRun:
        costs = self.costs
        key = run._cost_key
        # Identity first (same engine re-executing), equality second so
        # cached arrays survive across DJVM instances sharing a cost
        # model by value (the bench harness reuses compiled programs).
        if key is not costs and key != costs:
            run._costed = _CostedRun(run, costs)
            run._cost_key = costs
        return run._costed

    # ------------------------------------------------------------------

    def execute(self, thread, run: AccessRun, deadline: int) -> tuple[int, int]:
        """Replay one access run for ``thread``; returns the next pc and
        the (possibly recomputed) timer deadline.

        ``deadline`` is the interpreter's current minimum timer deadline,
        or ``-1`` when deadline mode is off.  Normally the whole run
        executes and the returned pc is ``run.end``; a migration becoming
        pending mid-run (a timer fire or profiler hook submitted a plan)
        finalizes the executed prefix, evaluates the plan at exactly the
        op boundary the scalar loop would, and returns the mid-run pc so
        the scalar loop resumes there.
        """
        hl = self.hlrc
        if run.uniq is None:
            run.materialize()
        costed = self._costed(run)
        base = costed.base
        n = run.n_ops
        clock = thread.clock
        clock0 = clock._now_ns
        node_id = thread.node_id
        copies = self._copies_by_node[node_id]
        objects = self._objects
        uniq = run.uniq
        u_wops = run.u_wops
        records: list = [None] * len(uniq)

        hooks = hl.hooks
        interp = self.interp
        # Interval access summaries are observable only through the
        # profiler hooks, the tracer, kept interval history, or sampling
        # timers (which may inspect the live interval).  With none of
        # those attached the summaries are dead state: the protocol
        # consumes just the written set and per-copy dirty/writer state,
        # so the engine skips summary bookkeeping entirely.  Counters,
        # clocks and traffic are unaffected — the scalar oracle still
        # builds summaries, and equivalence tests enable history to
        # compare them.
        book = (
            hl.keep_interval_history
            or bool(hooks)
            or hl.tracer is not None
            or hl.objprof is not None
            or bool(interp.timers)
        )
        fast = None
        if not hooks:
            # ---- precheck: classify every distinct object once -------
            # Coherent objects (valid or home copy, twin already in
            # place for cache writes) pay no protocol cost inside the
            # run, so they need *no* checkpoint at all — their summary
            # bookkeeping is deferred to the finalize pass, which builds
            # summaries in first-touch order with exact timestamps.
            # Only objects that must fault or twin keep scalar
            # checkpoints (the precheck over-approximates: a prefetch
            # bundle may satisfy a later checkpoint, which then probes
            # fresh state and simply skips the fault).
            ops = run.ops
            slow: list = []
            lanes = zip(uniq, u_wops, run.u_first, run.u_firstw)
            for k, (oid, wo, jf, jw) in enumerate(lanes):
                record = copies.get(oid)
                if record is None:
                    obj = objects[oid]
                    if obj.home_node != node_id:
                        slow.append((jf, k, True, ops[jf][0] == OP_WRITE))
                        if jw >= 0 and jw != jf:
                            slow.append((jw, k, False, True))
                        continue
                    # Home copies materialize lazily at zero cost.
                    record = CopyRecord(oid, _HOME)
                    copies[oid] = record
                elif record.real_state is _INVALID:
                    slow.append((jf, k, True, ops[jf][0] == OP_WRITE))
                    if jw >= 0 and jw != jf:
                        slow.append((jw, k, False, True))
                    continue
                records[k] = record
                if wo and record.real_state is not _HOME and not record.has_twin:
                    slow.append((jw, k, False, True))

            if not slow and (deadline < 0 or clock0 + base[n] < deadline):
                if self._strikes:
                    self._strikes.pop(run, None)
                # ---- all-fast path -----------------------------------
                # Zero protocol work and no timer landing inside the
                # run: the clock advance is one prefix sum and the
                # interval bookkeeping one pass over distinct objects
                # with precomputed timestamps.
                cpu = thread.cpu
                cpu.access_ns += costed.abusy[n]
                cpu.compute_ns += costed.comp[n]
                clock._now_ns = clock0 + base[n]
                interval = thread.current_interval
                written = interval.written
                tid = thread.thread_id
                if not book:
                    # Summary-free bookkeeping: written set plus dirty
                    # state for cache copies, nothing else.
                    if run.w_ks:
                        written.update(run.w_oids)
                        for k in run.w_ks:
                            record = records[k]
                            if record.real_state is not _HOME:
                                oid = uniq[k]
                                obj = objects[oid]
                                if obj.is_array:
                                    wb = run.u_welems[k] * obj.jclass.element_size
                                else:
                                    wb = u_wops[k] * obj.jclass.instance_size
                                record.dirty_bytes = min(
                                    record.dirty_bytes + wb, obj.size_bytes
                                )
                                record.writers.add(tid)
                    return run.end, deadline
                accesses = interval.accesses
                fast_lanes = zip(
                    uniq,
                    run.u_reads,
                    run.u_writes,
                    run.u_welems,
                    u_wops,
                    costed.first_base,
                    costed.last_base,
                    records,
                )
                for oid, r, w, we, wo, fb, lb, record in fast_lanes:
                    summary = accesses.get(oid)
                    if summary is None:
                        accesses[oid] = AccessSummary(
                            oid, r, w, clock0 + fb, clock0 + lb
                        )
                    else:
                        summary.reads += r
                        summary.writes += w
                        summary.last_ns = clock0 + lb
                    if w:
                        written.add(oid)
                        if record.real_state is not _HOME:
                            obj = objects[oid]
                            if obj.is_array:
                                wb = we * obj.jclass.element_size
                            else:
                                wb = wo * obj.jclass.instance_size
                            record.dirty_bytes = min(
                                record.dirty_bytes + wb, obj.size_bytes
                            )
                            record.writers.add(tid)
                return run.end, deadline
            self._maybe_demote(run, len(slow), len(uniq))
            slow.sort()
            checkpoints = slow
            defer = True
        else:
            # Single-hook fast dispatch, resolved exactly like
            # hlrc.access.  The hook must observe every interval-first
            # touch at its exact access instant, so the full checkpoint
            # lane stays engaged and summaries are created in-walk.
            hook = hooks[0]
            if hook is hl._fast_src:
                fast = hl._fast_log
                prime = hl._fast_prime
            else:
                hl._fast_src = hook
                fast = hl._fast_log = getattr(hook, "fast_on_access", None)
                prime = hl._fast_prime = (
                    getattr(hook, "prime_batch", None)
                    if getattr(hook, "wants_batch_prime", False)
                    else None
                )
            if prime is not None:
                # decide_batch lane: stateless sampling backends batch
                # this run's distinct-object decisions up front (host-
                # side cache only; simulated costs are unchanged, so
                # vector and scalar replay stay byte-identical).
                prime([objects[oid] for oid in uniq])
            checkpoints = run.checkpoints
            defer = False

        # ---- checkpointed walk ---------------------------------------
        abusy = costed.abusy
        comp = costed.comp
        ops = run.ops
        start = run.start
        cpu = thread.cpu
        tid = thread.thread_id
        costs = self.costs
        accesses = thread.current_interval.accesses
        mig = interp.migration_engine
        mig_pending = mig._pending if mig is not None else None
        publish_pc = mig_pending is not None or deadline >= 0

        extra = 0
        ev_key: list[int] = []
        ev_cum: list[int] = []

        n_cps = len(checkpoints)
        ci = 0
        pos = 0
        dl = deadline
        while pos < n:
            nxt = checkpoints[ci][0] if ci < n_cps else n
            if pos < nxt:
                # Fast lane [pos, nxt): guaranteed hits / pure compute.
                fire_at = -1
                if dl >= 0:
                    target = dl - clock0 - extra
                    if base[nxt] >= target:
                        j = int(np.searchsorted(costed.base_np, target, side="left")) - 1
                        if j < pos:
                            j = pos
                        if j < nxt:
                            fire_at = j
                end = nxt if fire_at < 0 else fire_at + 1
                cpu.access_ns += abusy[end] - abusy[pos]
                cpu.compute_ns += comp[end] - comp[pos]
                clock._now_ns = clock0 + extra + base[end]
                pos = end
                if fire_at >= 0:
                    dl, extra = self._fire_timers(
                        thread, start + pos, dl, 2 * fire_at + 1, ev_key, ev_cum, extra
                    )
                    if mig_pending and tid in mig_pending:
                        self._finalize(thread, run, costed, records, pos, clock0, ev_key, ev_cum, book)
                        mig.maybe_migrate(thread)
                        return start + pos, dl
                continue

            # Slow lane: one checkpoint op, scalar protocol verbatim.
            c, k, first_access, check_write = checkpoints[ci]
            ci += 1
            cpu.access_ns += abusy[c + 1] - abusy[c]
            busy_clock = clock0 + extra + base[c + 1]
            clock._now_ns = busy_clock
            oid = ops[c][1]
            if publish_pc:
                # The scalar loop publishes pc per op in these modes;
                # hooks and plan triggers may read it.
                thread.pc = start + c
            obj = None
            if first_access:
                record = copies.get(oid)
                if record is not None and record.real_state is not _INVALID:
                    faulted = False
                else:
                    obj = objects[oid]
                    if obj.home_node == node_id:
                        if record is None:
                            record = CopyRecord(oid, _HOME)
                            copies[oid] = record
                        faulted = False
                    else:
                        record = hl._fault_remote(thread, obj, record)
                        faulted = True
                records[k] = record
            else:
                record = records[k]
                faulted = False
            if check_write and record.real_state is not _HOME:
                if obj is None:
                    obj = objects[oid]
                if not record.has_twin:
                    twin_ns = obj.size_bytes * costs.twin_ns_per_byte
                    record.has_twin = True
                    cpu.protocol_ns += twin_ns
                    clock._now_ns += twin_ns
            in_op = clock._now_ns - busy_clock
            if in_op:
                extra += in_op
                ev_key.append(2 * c)
                ev_cum.append(extra)
            if first_access and not defer:
                now = clock._now_ns
                if accesses.get(oid) is None:
                    accesses[oid] = AccessSummary(oid, 0, 0, now, now)
                    if fast is not None:
                        if obj is None:
                            obj = objects[oid]
                        fast(thread, obj, faulted)
                        delta = clock._now_ns - now
                        if delta:
                            extra += delta
                            ev_key.append(2 * c + 1)
                            ev_cum.append(extra)
            pos = c + 1
            # Post-op epilogue, mirroring the scalar loop's order:
            # deadline fire first, migration check second.
            if dl >= 0 and clock._now_ns >= dl:
                dl, extra = self._fire_timers(
                    thread, start + pos, dl, 2 * c + 1, ev_key, ev_cum, extra
                )
            if mig_pending and tid in mig_pending:
                self._finalize(thread, run, costed, records, pos, clock0, ev_key, ev_cum, book)
                mig.maybe_migrate(thread)
                return start + pos, dl

        self._finalize(thread, run, costed, records, n, clock0, ev_key, ev_cum, book)
        return run.end, dl

    # ------------------------------------------------------------------

    def _fire_timers(
        self,
        thread,
        pc: int,
        dl: int,
        key: int,
        ev_key: list[int],
        ev_cum: list[int],
        extra: int,
    ) -> tuple[int, int]:
        """Fire deadline timers at an op boundary (scalar post-op order:
        fires, trace record, deadline recompute); journals the fire cost
        as a post-instant extra."""
        interp = self.interp
        clock = thread.clock
        thread.pc = pc
        before = clock._now_ns
        for timer in interp.timers:
            timer.maybe_fire(thread)
        if dl > 0:
            interp.kernel.record(_TIMER_FIRE, clock._now_ns, thread.thread_id)
        dl = min(t.next_fire_ns(thread) for t in interp.timers)
        delta = clock._now_ns - before
        if delta:
            extra += delta
            ev_key.append(key)
            ev_cum.append(extra)
        return dl, extra

    def _finalize(
        self,
        thread,
        run: AccessRun,
        costed: _CostedRun,
        records: list,
        upto: int,
        clock0: int,
        ev_key: list[int],
        ev_cum: list[int],
        book: bool = True,
    ) -> None:
        """Apply the fast-lane aggregates for ops ``[0, upto)`` to the
        interval state — summary counts, written set, dirty bytes,
        writers, and the exact per-object ``first_ns``/``last_ns``.

        Summaries the walk did not create (every object in deferred
        mode, i.e. when no hook needed the first-touch instant) are
        created here, iterating uniq order so the access dict gains
        entries in exactly the scalar loop's first-touch order.  With
        ``book`` false (summaries unobservable) only the protocol state
        — written set, dirty bytes, writers — is maintained."""
        interval = thread.current_interval
        written = interval.written
        objects = self._objects
        base = costed.base
        tid = thread.thread_id
        uniq = run.uniq
        if not book and upto >= run.n_ops:
            if run.w_ks:
                written.update(run.w_oids)
                u_welems = run.u_welems
                u_wops = run.u_wops
                for k in run.w_ks:
                    record = records[k]
                    if record.real_state is not _HOME:
                        oid = uniq[k]
                        obj = objects[oid]
                        if obj.is_array:
                            wb = u_welems[k] * obj.jclass.element_size
                        else:
                            wb = u_wops[k] * obj.jclass.instance_size
                        record.dirty_bytes = min(
                            record.dirty_bytes + wb, obj.size_bytes
                        )
                        record.writers.add(tid)
            return
        accesses = interval.accesses
        if upto >= run.n_ops:
            # Full-run path: one zip pass over the precomputed lanes.
            # Extras are cumulative and keyed ascending, so ops before
            # the first journal entry see 0 and ops at/after the last
            # see the total — the bisect only runs for the band between.
            if ev_key:
                ev_lo = ev_key[0]
                ev_hi = ev_key[-1]
                ev_tot = ev_cum[-1]
            else:
                ev_lo = None
            lanes = zip(
                uniq,
                run.u_reads,
                run.u_writes,
                run.u_welems,
                run.u_wops,
                run.u_first,
                run.u_last,
                costed.first_base,
                costed.last_base,
                records,
            )
            for oid, r, w, we, wo, jf, li, fb, lb, record in lanes:
                k2 = 2 * li
                if ev_lo is None or k2 < ev_lo:
                    ex = 0
                elif k2 >= ev_hi:
                    ex = ev_tot
                else:
                    idx = bisect_right(ev_key, k2) - 1
                    ex = ev_cum[idx] if idx >= 0 else 0
                last_ns = clock0 + ex + lb
                summary = accesses.get(oid)
                if summary is None:
                    j2 = 2 * jf
                    if ev_lo is None or j2 < ev_lo:
                        exf = 0
                    elif j2 >= ev_hi:
                        exf = ev_tot
                    else:
                        idxf = bisect_right(ev_key, j2) - 1
                        exf = ev_cum[idxf] if idxf >= 0 else 0
                    accesses[oid] = AccessSummary(
                        oid, r, w, clock0 + exf + fb, last_ns
                    )
                else:
                    summary.reads += r
                    summary.writes += w
                    summary.last_ns = last_ns
                if w:
                    written.add(oid)
                    if record.real_state is not _HOME:
                        obj = objects[oid]
                        if obj.is_array:
                            wb = we * obj.jclass.element_size
                        else:
                            wb = wo * obj.jclass.instance_size
                        record.dirty_bytes = min(
                            record.dirty_bytes + wb, obj.size_bytes
                        )
                        record.writers.add(tid)
            return
        else:
            # Partial (migration bail-out): rescan the executed prefix.
            # First-occurrence order over a prefix is a prefix of the
            # run's uniq order, so ``records`` indexes stay aligned.
            index: dict[int, int] = {}
            u_reads, u_writes, u_welems, u_wops = [], [], [], []
            u_first, u_last = [], []
            for j in range(upto):
                op = run.ops[j]
                code = op[0]
                if code == OP_COMPUTE:
                    continue
                oid = op[1]
                k = index.get(oid)
                if k is None:
                    k = len(index)
                    index[oid] = k
                    u_reads.append(0)
                    u_writes.append(0)
                    u_welems.append(0)
                    u_wops.append(0)
                    u_first.append(j)
                    u_last.append(j)
                else:
                    u_last[k] = j
                if code == OP_WRITE:
                    u_writes[k] += op[3]
                    u_welems[k] += op[2]
                    u_wops[k] += 1
                else:
                    u_reads[k] += op[3]
            n_uniq = len(index)
        for k in range(n_uniq):
            oid = uniq[k]
            summary = accesses.get(oid)
            w = u_writes[k]
            li = u_last[k]
            idx = bisect_right(ev_key, 2 * li) - 1
            ex = ev_cum[idx] if idx >= 0 else 0
            last_ns = clock0 + ex + base[li + 1]
            if summary is None:
                jf = u_first[k]
                idxf = bisect_right(ev_key, 2 * jf) - 1
                exf = ev_cum[idxf] if idxf >= 0 else 0
                summary = AccessSummary(
                    oid, u_reads[k], w, clock0 + exf + base[jf + 1], last_ns
                )
                accesses[oid] = summary
            else:
                summary.reads += u_reads[k]
                summary.writes += w
                summary.last_ns = last_ns
            if w:
                written.add(oid)
                record = records[k]
                if record.real_state is not _HOME:
                    obj = objects[oid]
                    if obj.is_array:
                        wb = u_welems[k] * obj.jclass.element_size
                    else:
                        wb = u_wops[k] * obj.jclass.instance_size
                    record.dirty_bytes = min(record.dirty_bytes + wb, obj.size_bytes)
                    record.writers.add(tid)
