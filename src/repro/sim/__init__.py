"""Simulated-time substrate: per-node clocks, CPU cost model, and a
Fast-Ethernet-class network model with traffic accounting.

The paper's evaluation runs on the HKU Gideon 300 cluster (P4 2 GHz,
Fast Ethernet).  This package substitutes that hardware with a
deterministic cost model so that the *relative* overheads the paper
reports (profiling cost as a percentage of execution time, OAL traffic
as a percentage of GOS traffic) can be regenerated on a laptop.
"""

from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.events import Event, EventKind, EventLoop
from repro.sim.network import Message, MessageKind, Network, TrafficStats
from repro.sim.node import CoreSchedule, Node
from repro.sim.cluster import Cluster

__all__ = [
    "SimClock",
    "CostModel",
    "Event",
    "EventKind",
    "EventLoop",
    "Message",
    "MessageKind",
    "Network",
    "TrafficStats",
    "CoreSchedule",
    "Node",
    "Cluster",
]
