"""Simulated clocks.

All simulated time is kept in integer nanoseconds to avoid floating
point drift over long runs; conversion helpers expose milliseconds for
reporting (the paper's tables are in ms).
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class SimClock:
    """A monotonically advancing simulated clock (integer nanoseconds).

    Each simulated thread owns one; synchronization operations align
    clocks across threads (e.g. a barrier sets every participant to the
    maximum arrival time plus the barrier cost).
    """

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError(f"clock cannot start negative, got {start_ns}")
        self._now_ns = int(start_ns)

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ns / NS_PER_MS

    def advance(self, delta_ns: int) -> int:
        """Advance by ``delta_ns`` (must be >= 0); returns the new time."""
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by negative {delta_ns}")
        self._now_ns += int(delta_ns)
        return self._now_ns

    def advance_to(self, t_ns: int) -> int:
        """Jump forward to ``t_ns`` if it is in the future; never rewinds."""
        if t_ns > self._now_ns:
            self._now_ns = int(t_ns)
        return self._now_ns

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock({self._now_ns} ns = {self.now_ms:.3f} ms)"
