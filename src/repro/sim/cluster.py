"""Cluster: a set of nodes, an interconnect, and a master designation.

Mirrors the paper's Fig. 2 deployment: worker JVMs host application
threads; the master JVM additionally runs the correlation analyzer and
global load balancer.  Node 0 is the master by convention.
"""

from __future__ import annotations

from repro.sim.costs import CostModel
from repro.sim.network import Network
from repro.sim.node import Node


class Cluster:
    """A fixed-size cluster of simulated nodes."""

    def __init__(
        self,
        n_nodes: int,
        *,
        network: Network | None = None,
        costs: CostModel | None = None,
        master_id: int = 0,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"cluster needs at least one node, got {n_nodes}")
        if not 0 <= master_id < n_nodes:
            raise ValueError(f"master_id {master_id} out of range for {n_nodes} nodes")
        self.nodes = [Node(i) for i in range(n_nodes)]
        self.network = network if network is not None else Network()
        self.network.bind_cluster(n_nodes)
        self.costs = costs if costs is not None else CostModel.gideon300()
        self.master_id = master_id

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def master(self) -> Node:
        """The master node (runs the correlation analyzer daemon)."""
        return self.nodes[self.master_id]

    def node_of_thread(self, thread_id: int) -> Node:
        """Locate the node currently hosting ``thread_id``."""
        for node in self.nodes:
            if thread_id in node.thread_ids:
                return node
        raise KeyError(f"thread {thread_id} is not hosted on any node")
