"""CPU cost model for the simulated DJVM.

Costs are expressed in integer nanoseconds per primitive runtime event.
The defaults (:meth:`CostModel.gideon300`) are calibrated to the class
of machine in the paper's evaluation — a Pentium 4 at 2 GHz running a
JIT-compiled Kaffe JVM — so that the *ratios* between the fast path (an
inlined object state check), the slow path (GOS fault-handler entry for
logging a false-invalid access) and a remote fault (network round trip)
match the regime the paper measures.  Absolute times are not the
reproduction target; relative overheads are.

Key ratios preserved:

* state check (~a few cycles, inlined)  <<  log slow path (~100s ns)
* log slow path  <<  remote object fault (>= 100 us round trip)
* TCM construction cost per (object x thread-pair) entry ~ tens of ns
  on the master, which makes TCM computation the dominant tracking
  overhead at full sampling — exactly Table III's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Per-event CPU costs (nanoseconds) and structural constants."""

    # --- common-case execution -------------------------------------------
    #: inlined per-access object state check (JIT-injected, ~4 cycles).
    state_check_ns: int = 2
    #: base cost of one application-level object access (load/store plus
    #: address arithmetic) on top of any workload-declared compute.
    access_ns: int = 4
    #: cost of pushing/popping a Java frame (method prologue/epilogue).
    frame_push_ns: int = 40
    frame_pop_ns: int = 25

    # --- GOS protocol ------------------------------------------------------
    #: slow-path entry into the GOS service routine (register save, state
    #: decode, handler dispatch) paid whenever an access traps — real
    #: fault or false-invalid.  Microseconds on the paper's P4/Kaffe
    #: stack; calibrated so Table II's full-sampling overheads land near
    #: the published ~1% for Barnes-Hut.
    gos_trap_ns: int = 2_200
    #: appending one record (object id + size) to the per-interval OAL
    #: (hash lookup + allocation in the logging runtime).
    oal_log_ns: int = 800
    #: resetting one cached object to false-invalid at interval open.
    false_invalid_reset_ns: int = 350
    #: twin creation before first write to a cached object in an interval.
    twin_ns_per_byte: int = 1
    #: diff computation at release, per modified byte.
    diff_ns_per_byte: int = 2
    #: applying a write notice (invalidate one cached object) at acquire.
    invalidate_ns: int = 45
    #: fixed protocol bookkeeping at interval open/close.
    interval_open_ns: int = 350
    interval_close_ns: int = 500
    #: lock acquire/release local bookkeeping (on top of any messaging).
    lock_local_ns: int = 220
    #: barrier local bookkeeping per participant.
    barrier_local_ns: int = 400

    # --- profiling: correlation tracking ------------------------------------
    #: checking the sampling tag / sequence-number divisibility per object
    #: at interval open (resampling scans reuse this too).
    sample_check_ns: int = 8
    #: packing one OAL entry into the jumbo message at interval close.
    oal_pack_ns_per_entry: int = 300
    #: master-side: reorganizing one OAL entry into per-object lists
    #: (hash re-bucketing in the daemon; Table III shows this dominates).
    tcm_reorg_ns_per_entry: int = 3_000
    #: master-side: accruing one thread-pair cell for one object.
    tcm_accrue_ns_per_pair: int = 400

    # --- profiling: stack sampling / sticky sets ----------------------------
    #: walking one frame during the top-down/bottom-up scan (%EBP chain
    #: decode + method lookup by PC).
    frame_walk_ns: int = 4_000
    #: capturing one frame in raw (native) form, per slot (memcpy).
    raw_capture_ns_per_slot: int = 600
    #: extracting one slot (reflection lookup + layout decode + GC pointer
    #: check — the expensive step lazy extraction defers).
    extract_ns_per_slot: int = 9_000
    #: probing one old-sample slot against the live frame.
    probe_ns_per_slot: int = 1_500
    #: footprinting: logging one sampled object's phase-touch.
    footprint_track_ns: int = 2_800
    #: resolution: tracing one edge of the object graph.
    resolve_trace_ns: int = 500

    # --- thread migration ----------------------------------------------------
    #: fixed cost of freezing/thawing a thread context.
    migration_fixed_ns: int = 800_000
    #: serializing one stack slot into the portable frame format.
    migration_ns_per_slot: int = 150

    # --- structural constants -------------------------------------------------
    #: virtual memory page size; sampling rates are defined relative to it.
    page_size: int = 4096
    #: machine word size (the paper's smallest object grain, 4 bytes).
    word_size: int = 4

    #: multiplier applied to workload-declared compute costs (lets tests
    #: shrink pure compute without touching protocol cost ratios).
    compute_scale: float = 1.0

    def scaled_compute(self, ns: int) -> int:
        """Apply :attr:`compute_scale` to a workload compute cost."""
        if ns < 0:
            raise ValueError(f"compute cost cannot be negative: {ns}")
        return int(ns * self.compute_scale)

    def with_overrides(self, **kwargs: object) -> "CostModel":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def gideon300(cls) -> "CostModel":
        """Calibration preset matching the paper's evaluation platform."""
        return cls()

    @classmethod
    def fast_test(cls) -> "CostModel":
        """Preset for unit tests: identical ratios, tiny compute scale."""
        return cls(compute_scale=0.01)


@dataclass(slots=True)
class CpuAccounting:
    """Mutable per-thread CPU time breakdown, in nanoseconds.

    Buckets mirror the paper's overhead decomposition: baseline execution
    vs. each profiling component, so a run can report "profiling added
    X% on top of the baseline" directly.
    """

    compute_ns: int = 0
    access_ns: int = 0
    protocol_ns: int = 0
    oal_logging_ns: int = 0
    oal_packing_ns: int = 0
    resampling_ns: int = 0
    stack_sampling_ns: int = 0
    footprinting_ns: int = 0
    resolution_ns: int = 0
    migration_ns: int = 0
    network_wait_ns: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    @property
    def total_ns(self) -> int:
        """Sum over every bucket."""
        return (
            self.compute_ns
            + self.access_ns
            + self.protocol_ns
            + self.oal_logging_ns
            + self.oal_packing_ns
            + self.resampling_ns
            + self.stack_sampling_ns
            + self.footprinting_ns
            + self.resolution_ns
            + self.migration_ns
            + self.network_wait_ns
            + sum(self.extra.values())
        )

    @property
    def profiling_ns(self) -> int:
        """Time attributable to the profiling subsystems alone."""
        return (
            self.oal_logging_ns
            + self.oal_packing_ns
            + self.resampling_ns
            + self.stack_sampling_ns
            + self.footprinting_ns
            + self.resolution_ns
        )

    def merge(self, other: "CpuAccounting") -> None:
        """Accumulate another accounting record into this one."""
        self.compute_ns += other.compute_ns
        self.access_ns += other.access_ns
        self.protocol_ns += other.protocol_ns
        self.oal_logging_ns += other.oal_logging_ns
        self.oal_packing_ns += other.oal_packing_ns
        self.resampling_ns += other.resampling_ns
        self.stack_sampling_ns += other.stack_sampling_ns
        self.footprinting_ns += other.footprinting_ns
        self.resolution_ns += other.resolution_ns
        self.migration_ns += other.migration_ns
        self.network_wait_ns += other.network_wait_ns
        for key, val in sorted(other.extra.items()):
            self.extra[key] = self.extra.get(key, 0) + val
