"""Deterministic discrete-event kernel.

Before this module existed, the simulator's notion of time was smeared
across three private mechanisms: the interpreter's run-to-sync loop
(pick the runnable thread with the smallest clock), per-op polling of
every :class:`~repro.runtime.interpreter.TimerHook`, and
``MigrationEngine`` piggybacking on pending-flag checks — while
``Network.send`` charged cost instantly with no queueing at all.  The
:class:`EventLoop` collapses them into one auditable kernel: every
scheduling decision is a typed event popped from a single heap, totally
ordered by ``(time_ns, seq)``.

Event types
-----------

``SEGMENT_END``
    A thread's execution segment concluded at ``time_ns``; dispatching
    the event resumes the thread (the interpreter computes the next
    segment and schedules its end).
``TIMER_FIRE``
    A timer-driven profiler component (stack sampler, footprint phase
    timer) reached an absolute deadline.  Deadline timers that resolve
    synchronously inside a segment *record* their fires into the trace
    at the simulated instant they happened, so the trace is complete
    even when no heap scheduling was needed.
``MESSAGE_DELIVER``
    A queued network message finished serializing on its link and
    arrives at the destination (scheduled by :class:`~repro.sim.network.
    Network` when queueing is enabled).
``BARRIER_RELEASE``
    The last participant arrived at a barrier; dispatching the event
    performs the release (clock alignment, write-notice distribution)
    and wakes the waiters.
``MIGRATION_CHECK``
    A thread with a pending migration plan reached a scheduling point;
    dispatching the event evaluates the plan's trigger and fires the
    migration.

Ordering guarantees
-------------------

* Events pop in nondecreasing ``time_ns`` order.
* Ties on ``time_ns`` break by ``seq`` — the order the events were
  scheduled.  Producers that wake several threads at one instant (e.g.
  a barrier release) schedule them in thread-table order, so the
  tie-break reproduces the legacy scheduler's "first thread in the
  list" rule and two runs of the same workload produce byte-identical
  event traces.
* ``record()`` inserts an already-dispatched event directly into the
  trace (no heap traffic) for components that resolve their timing
  synchronously; recorded events share the same ``seq`` counter so the
  trace remains totally ordered by construction order within a time.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from typing import Any, Callable, Iterator


class EventKind(enum.IntEnum):
    """Typed events the kernel understands (see module docstring)."""

    SEGMENT_END = 0
    TIMER_FIRE = 1
    MESSAGE_DELIVER = 2
    BARRIER_RELEASE = 3
    MIGRATION_CHECK = 4


class Event:
    """One scheduled (or recorded) simulation event.

    ``actor`` identifies the subject — a thread id for ``SEGMENT_END`` /
    ``TIMER_FIRE`` / ``MIGRATION_CHECK``, a barrier id for
    ``BARRIER_RELEASE``, a destination node id for ``MESSAGE_DELIVER``.
    ``data`` carries an event-specific payload (the kernel never
    inspects it).  ``callback``, when set, is invoked by
    :meth:`EventLoop.dispatch` with the event.
    """

    __slots__ = ("time_ns", "seq", "kind", "actor", "data", "callback", "cancelled")

    def __init__(
        self,
        time_ns: int,
        seq: int,
        kind: EventKind,
        actor: int,
        data: Any = None,
        callback: "Callable[[Event], None] | None" = None,
    ) -> None:
        self.time_ns = time_ns
        self.seq = seq
        self.kind = kind
        self.actor = actor
        self.data = data
        self.callback = callback
        self.cancelled = False

    def trace_entry(self) -> tuple[int, str, int]:
        """The event's canonical trace form: ``(time_ns, kind, actor)``."""
        return (self.time_ns, self.kind.name, self.actor)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event({self.kind.name} t={self.time_ns} actor={self.actor}{flag})"


class EventLoop:
    """A deterministic discrete-event scheduler.

    One heap, one sequence counter; every pop advances :attr:`now_ns`
    monotonically over scheduled events.  The loop does not own a
    dispatch table — the driver (the interpreter) pops events and
    dispatches on ``kind``, or attaches per-event callbacks for
    subsystems that manage their own delivery (network queueing).

    Set ``keep_trace=True`` to accumulate the ``(time_ns, kind, actor)``
    trace of every dispatched *and* recorded event — the audit log the
    determinism tests compare across runs.

    Besides the event trace proper, the kernel hosts an **auxiliary
    audit channel** (:attr:`aux_trace`): subsystems that want their
    domain operations recorded alongside the kernel's notion of time —
    without paying heap traffic or polluting the typed event trace —
    append self-describing tuples via :meth:`record_aux` (gated by
    :attr:`keep_aux`).  The race detector's offline replay consumes this
    channel: a recorded run can be re-analyzed without re-execution.
    The channel is a bounded ring: ``aux_capacity`` caps retained
    entries (oldest dropped first, counted in :attr:`aux_dropped`);
    ``None`` keeps everything, for consumers that replay full traces.
    """

    __slots__ = (
        "_heap",
        "_seq",
        "now_ns",
        "keep_trace",
        "trace",
        "scheduled",
        "popped",
        "keep_aux",
        "_aux",
        "aux_dropped",
    )

    def __init__(self, *, keep_trace: bool = False, aux_capacity: int | None = None) -> None:
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        #: time of the most recently popped event (monotone over pops).
        self.now_ns = 0
        self.keep_trace = keep_trace
        #: dispatched/recorded events as ``(time_ns, kind, actor)`` tuples.
        self.trace: list[tuple[int, str, int]] = []
        self.scheduled = 0
        self.popped = 0
        #: gate for the auxiliary audit channel (set by its producer).
        self.keep_aux = False
        if aux_capacity is not None and aux_capacity < 0:
            raise ValueError(f"aux_capacity must be >= 0 or None, got {aux_capacity}")
        #: auxiliary audit channel: producer-defined tuples whose first
        #: field is a simulated time in ns (ordering is producer order).
        self._aux: deque[tuple] = deque(maxlen=aux_capacity)
        #: entries evicted from the aux channel because it was full.
        self.aux_dropped = 0

    @property
    def aux_capacity(self) -> int | None:
        """Retention cap of the aux channel (None = unbounded)."""
        return self._aux.maxlen

    @property
    def aux_trace(self) -> list[tuple]:
        """The retained aux entries, oldest first (a list copy — the
        ring itself is private so the bound cannot be bypassed)."""
        return list(self._aux)

    # ------------------------------------------------------------------

    def schedule(
        self,
        kind: EventKind,
        time_ns: int,
        actor: int = -1,
        data: Any = None,
        callback: "Callable[[Event], None] | None" = None,
    ) -> Event:
        """Queue an event; returns it (keep the handle to :meth:`cancel`)."""
        if time_ns < 0:
            raise ValueError(f"cannot schedule an event at negative time {time_ns}")
        event = Event(int(time_ns), self._seq, kind, actor, data, callback)
        self._seq += 1
        self.scheduled += 1
        heapq.heappush(self._heap, (event.time_ns, event.seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled event (skipped at pop time)."""
        event.cancelled = True

    def record(self, kind: EventKind, time_ns: int, actor: int = -1) -> None:
        """Append an already-dispatched event straight to the trace.

        Used by components that resolve their timing synchronously
        inside a segment (in-segment timer fires, instantaneous message
        delivery) so the audit trail stays complete without paying heap
        traffic on the hot path.  No-op unless ``keep_trace`` is set.
        """
        if self.keep_trace:
            self.trace.append((int(time_ns), kind.name, actor))

    def record_aux(self, entry: tuple) -> None:
        """Append one producer-defined tuple to the auxiliary audit
        channel (no-op unless :attr:`keep_aux` is set).  The kernel
        never inspects entries; by convention ``entry[0]`` is a
        simulated time in ns so mixed audit streams stay mergeable.
        When the ring is at capacity the oldest entry is evicted and
        :attr:`aux_dropped` incremented."""
        if self.keep_aux:
            aux = self._aux
            if aux.maxlen is not None and len(aux) == aux.maxlen:
                self.aux_dropped += 1
            aux.append(entry)

    def pop(self) -> Event | None:
        """Remove and return the next event, or None when idle.

        Cancelled events are dropped silently.  ``now_ns`` snaps to the
        popped event's time; scheduling an event earlier than ``now_ns``
        is legal (per-thread clocks are only loosely coupled) — it
        simply pops next.
        """
        heap = self._heap
        while heap:
            _, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            if event.time_ns > self.now_ns:
                self.now_ns = event.time_ns
            self.popped += 1
            if self.keep_trace:
                self.trace.append(event.trace_entry())
            return event
        return None

    def dispatch(self, event: Event) -> None:
        """Run an event's callback, if any (drivers call this for event
        kinds they do not handle themselves)."""
        if event.callback is not None:
            event.callback(event)

    def run_until_idle(self) -> int:
        """Pop and dispatch callback events until the heap drains;
        returns the number of events processed.  Only suitable for
        self-contained loops where every event carries a callback
        (e.g. draining queued message deliveries)."""
        n = 0
        while True:
            event = self.pop()
            if event is None:
                return n
            self.dispatch(event)
            n += 1

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return any(not e.cancelled for _, _, e in self._heap)

    def peek_time_ns(self) -> int | None:
        """Time of the next live event, or None when idle."""
        heap = self._heap
        while heap:
            if heap[0][2].cancelled:
                heapq.heappop(heap)
                continue
            return heap[0][0]
        return None

    def pending(self) -> Iterator[Event]:
        """Iterate live scheduled events in heap (not sorted) order."""
        return (e for _, _, e in self._heap if not e.cancelled)
