"""A cluster node: identity plus CPU-time accounting.

Threads are the unit of execution in the simulator; a node aggregates
the CPU accounting of the threads it hosts and owns a local heap (the
heap object is attached by the DJVM at boot, keeping this module free of
upward dependencies).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.costs import CpuAccounting

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.heap.heap import LocalHeap


class Node:
    """One machine in the simulated cluster."""

    def __init__(self, node_id: int) -> None:
        if node_id < 0:
            raise ValueError(f"node id must be >= 0, got {node_id}")
        self.node_id = node_id
        self.cpu = CpuAccounting()
        #: attached by the DJVM at boot.
        self.heap: "LocalHeap | None" = None
        #: thread ids currently hosted here (maintained by the DJVM).
        self.thread_ids: set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.node_id}, threads={sorted(self.thread_ids)})"
