"""A cluster node: identity, CPU-time accounting, and core occupancy.

Threads are the unit of execution in the simulator; a node aggregates
the CPU accounting of the threads it hosts, owns a local heap (the heap
object is attached by the DJVM at boot, keeping this module free of
upward dependencies), and owns the :class:`CoreSchedule` that serializes
co-located threads on its single core — the timesharing state the
interpreter and the migration engine previously tracked in parallel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.costs import CpuAccounting

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.heap.heap import LocalHeap


class CoreSchedule:
    """Busy-cursor schedule of one node's single core.

    The paper's Gideon 300 nodes are single-core P4s running Kaffe's
    non-preemptive user-level threads: execution segments of co-located
    threads serialize on the one core.  The schedule is a single busy
    cursor — a segment may start no earlier than ``busy_until_ns`` and,
    once run, pushes the cursor to its finish time.  A thread that
    migrates mid-segment charges the remainder to the *destination*
    node's schedule (the interpreter consults the thread's node at
    segment end, not start).
    """

    __slots__ = ("busy_until_ns", "segments")

    def __init__(self) -> None:
        #: simulated time until which the core is occupied.
        self.busy_until_ns = 0
        #: number of execution segments charged to this core.
        self.segments = 0

    def earliest_start_ns(self, ready_ns: int) -> int:
        """Earliest time a segment ready at ``ready_ns`` can begin."""
        busy = self.busy_until_ns
        return busy if busy > ready_ns else ready_ns

    def occupy_until(self, end_ns: int) -> None:
        """Charge a completed segment: the core is busy through ``end_ns``."""
        if end_ns > self.busy_until_ns:
            self.busy_until_ns = end_ns
        self.segments += 1

    def reset(self) -> None:
        """Clear the schedule (a fresh run)."""
        self.busy_until_ns = 0
        self.segments = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CoreSchedule(busy_until={self.busy_until_ns} ns, segments={self.segments})"


class Node:
    """One machine in the simulated cluster."""

    def __init__(self, node_id: int) -> None:
        if node_id < 0:
            raise ValueError(f"node id must be >= 0, got {node_id}")
        self.node_id = node_id
        self.cpu = CpuAccounting()
        #: single-core occupancy schedule (used when timesharing is on).
        self.core = CoreSchedule()
        #: attached by the DJVM at boot.
        self.heap: "LocalHeap | None" = None
        #: thread ids currently hosted here (maintained by the DJVM).
        self.thread_ids: set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.node_id}, threads={sorted(self.thread_ids)})"
