"""Conservative parallel (PDES) partitioning of the event kernel.

The :class:`PartitionedEventLoop` shards the serial
:class:`~repro.sim.events.EventLoop` into per-node-group partitions,
each with its own event heap, merged through a *frontier* heap of
partition heads.  Pops still occur in exactly the serial kernel's global
``(time_ns, seq)`` order — byte-identity with the serial oracle holds by
construction — while the kernel tracks the conservative-PDES quantities
that bound how far each partition could safely run ahead:

LBTS / lookahead protocol
-------------------------

* A partition's **LBTS** (lower bound on timestamp) is the time of its
  earliest pending event; the global *floor* is the minimum LBTS over
  all partitions — exactly the frontier head.
* The network's minimum one-way latency is the **lookahead**: an event
  executing at time ``t`` cannot cause another partition to receive a
  message before ``t + lookahead``.  Each pop therefore opens (or
  extends) a **safe window** ``[floor, floor + lookahead]`` — every
  event inside it is causally independent across partitions and could
  execute concurrently.
* Cross-partition ``MESSAGE_DELIVER`` events are counted at schedule
  time; deliveries that land *under* the lookahead bound (zero-payload
  piggybacked messages ride a carrier with no latency of their own) are
  counted as ``lookahead_violations`` — the carrier-coupled deliveries a
  stage-2 distributed kernel must exchange at window boundaries rather
  than assume covered by lookahead.

Event execution is delegated to the sanctioned worker harness
(:class:`~repro.sim.workerpool.InlineWorkerPool`); this module itself
never touches wall clocks or process APIs (simlint SIM010).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.events import Event, EventKind, EventLoop
from repro.sim.workerpool import InlineWorkerPool


class WorkerEffectsError(RuntimeError):
    """A worker-dispatched callable the effect analysis refused to
    certify (see ``python -m repro.checks effects``)."""


class NodeGroupPartitioner:
    """Maps events to partitions by contiguous node blocks.

    Thread-actor events (``SEGMENT_END`` / ``TIMER_FIRE`` /
    ``MIGRATION_CHECK``) follow the thread's *current* node — a migrated
    thread's later events route to its new partition.  ``MESSAGE_DELIVER``
    follows the destination node; ``BARRIER_RELEASE`` executes at the
    master node's partition.
    """

    __slots__ = ("n_nodes", "n_partitions", "master_node", "_node_of_thread")

    def __init__(
        self,
        n_nodes: int,
        n_partitions: int,
        *,
        node_of_thread: Callable[[int], int],
        master_node: int = 0,
    ) -> None:
        if not 1 <= n_partitions <= n_nodes:
            raise ValueError(
                f"need 1 <= partitions <= nodes, got {n_partitions} over {n_nodes}"
            )
        self.n_nodes = n_nodes
        self.n_partitions = n_partitions
        self.master_node = master_node
        self._node_of_thread = node_of_thread

    def of_node(self, node_id: int) -> int:
        """Partition owning ``node_id`` (contiguous blocks, same split as
        the DJVM's "block" thread placement)."""
        pid = node_id * self.n_partitions // self.n_nodes
        last = self.n_partitions - 1
        return pid if pid < last else last

    def of_event(self, kind: EventKind, actor: int) -> int:
        """Partition an event with the given kind/actor executes in."""
        if kind is EventKind.MESSAGE_DELIVER:
            return self.of_node(actor)
        if kind is EventKind.BARRIER_RELEASE:
            return self.of_node(self.master_node)
        # SEGMENT_END / TIMER_FIRE / MIGRATION_CHECK carry a thread actor.
        if actor >= 0:
            return self.of_node(self._node_of_thread(actor))
        return 0


class PartitionedEventLoop(EventLoop):
    """Per-partition heaps merged by a frontier heap (see module doc).

    Drop-in replacement for :class:`EventLoop`: same scheduling API,
    identical global pop order.  The extra state is the partition
    routing, the safe-window accounting, and the worker pool that
    executes dispatched events.
    """

    __slots__ = (
        "partitioner",
        "n_partitions",
        "lookahead_ns",
        "pool",
        "_pheaps",
        "_frontier",
        "_last_partition",
        "_origin_pid",
        "_window_end_ns",
        "_window_events",
        "windows",
        "max_window_events",
        "null_window_slots",
        "cross_messages",
        "intra_messages",
        "lookahead_violations",
        "frontier_syncs",
        "max_skew_ns",
        "_effects",
        "_effects_memo",
    )

    def __init__(
        self,
        partitioner: NodeGroupPartitioner,
        *,
        lookahead_ns: int = 0,
        keep_trace: bool = False,
        aux_capacity: int | None = None,
        pool: InlineWorkerPool | None = None,
        validate_effects: "bool | object" = True,
    ) -> None:
        super().__init__(keep_trace=keep_trace, aux_capacity=aux_capacity)
        if lookahead_ns < 0:
            raise ValueError(f"lookahead must be >= 0, got {lookahead_ns}")
        self.partitioner = partitioner
        self.n_partitions = partitioner.n_partitions
        #: conservative lookahead bound (the fabric's fastest hop, ns).
        self.lookahead_ns = int(lookahead_ns)
        #: sanctioned worker harness executing dispatched events.
        self.pool = pool if pool is not None else InlineWorkerPool(self.n_partitions)
        #: one event heap per partition.
        self._pheaps: list[list[tuple[int, int, Event]]] = [
            [] for _ in range(self.n_partitions)
        ]
        #: heap of (time_ns, seq, partition) partition-head keys; entries
        #: go stale lazily when a head is popped or superseded.
        self._frontier: list[tuple[int, int, int]] = []
        self._last_partition = 0
        #: partition whose event callback is currently executing (None
        #: outside drain) — the origin for cross-partition accounting.
        self._origin_pid: int | None = None
        # --- safe-window accounting -----------------------------------
        self._window_end_ns = -1
        self._window_events = 0
        #: safe windows opened (LBTS advances past the previous bound).
        self.windows = 0
        #: most events any single window executed.
        self.max_window_events = 0
        #: (window x idle partition) slots: partitions with nothing to do
        #: inside a window — the null-message overhead a distributed
        #: kernel would pay to keep them synchronized.
        self.null_window_slots = 0
        #: events scheduled across a partition boundary (messages a
        #: distributed kernel would exchange between partitions).
        self.cross_messages = 0
        #: events scheduled within their origin partition.
        self.intra_messages = 0
        #: cross-partition deliveries landing under the lookahead bound
        #: (zero-latency piggybacked payloads riding a carrier).
        self.lookahead_violations = 0
        #: frontier maintenance operations (the same-process analogue of
        #: null-message/sync traffic between partitions).
        self.frontier_syncs = 0
        #: largest spread between the global floor and a partition's
        #: LBTS observed at a window open (how far ahead the busiest
        #: partition could run).
        self.max_skew_ns = 0
        # --- static worker certification --------------------------------
        #: the committed ``effects.json`` view (None: validation off or
        #: no summary available — the static gate, not this check, is
        #: the enforcement point).
        self._effects = None
        #: underlying-function -> certification verdict memo; schedule()
        #: pays one dict hit per distinct worker callable, not a string
        #: build per event.
        self._effects_memo: dict[object, bool] = {}
        if validate_effects:
            if validate_effects is True:
                from repro.checks.effects.summary import EffectsSummary

                summary = EffectsSummary.load()
            else:
                summary = validate_effects
            if summary is not None:
                bad = summary.violations()
                if bad:
                    raise WorkerEffectsError(
                        "effects.json refuses to certify worker callable(s): "
                        + ", ".join(bad)
                        + " — rerun `python -m repro.checks effects`"
                    )
                self._effects = summary

    # ------------------------------------------------------------------

    def schedule(
        self,
        kind: EventKind,
        time_ns: int,
        actor: int = -1,
        data: Any = None,
        callback: "Callable[[Event], None] | None" = None,
    ) -> Event:
        """Queue an event into its partition's heap; publishes the key to
        the frontier when it becomes the partition's new head."""
        if time_ns < 0:
            raise ValueError(f"cannot schedule an event at negative time {time_ns}")
        if callback is not None and self._effects is not None:
            self._check_callback(callback)
        event = Event(int(time_ns), self._seq, kind, actor, data, callback)
        self._seq += 1
        self.scheduled += 1
        pid = self.partitioner.of_event(kind, actor)
        # Origin partition: a MESSAGE_DELIVER carries its source node;
        # any other event scheduled from inside a drain callback
        # originates in the partition that callback executes in.  Both
        # are the messages a distributed (stage-2) kernel would put on
        # the wire when origin and target partitions differ.
        if kind is EventKind.MESSAGE_DELIVER:
            src = getattr(data, "src", None)
            origin = self.partitioner.of_node(src) if src is not None else self._origin_pid
        else:
            origin = self._origin_pid
        if origin is not None:
            if origin != pid:
                self.cross_messages += 1
                if (
                    kind is EventKind.MESSAGE_DELIVER
                    and event.time_ns < self.now_ns + self.lookahead_ns
                ):
                    self.lookahead_violations += 1
            else:
                self.intra_messages += 1
        heap = self._pheaps[pid]
        heapq.heappush(heap, (event.time_ns, event.seq, event))
        if heap[0][2] is event:
            heapq.heappush(self._frontier, (event.time_ns, event.seq, pid))
            self.frontier_syncs += 1
        return event

    def _check_callback(self, callback: "Callable[[Event], None]") -> None:
        """Refuse a worker callable the effect analysis marked as a
        partition-safety violation.  Callables the analysis never saw
        (test doubles, ad-hoc lambdas) are allowed — the static gate
        covers the shipped source; this check covers stale summaries.
        """
        fn = getattr(callback, "__func__", callback)
        ok = self._effects_memo.get(fn)
        if ok is None:
            qualname = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', '?')}"
            ok = self._effects.worker_status(qualname) != "violation"
            self._effects_memo[fn] = ok
        if not ok:
            raise WorkerEffectsError(
                f"worker callable {callback!r} is marked as a partition-safety "
                "violation in effects.json — fix it or rerun "
                "`python -m repro.checks effects --write`"
            )

    def pop(self) -> Event | None:
        """Remove and return the globally earliest live event.

        Identical order to the serial kernel: the frontier's minimum key
        is the minimum over partition heads, and every partition heap
        preserves ``(time_ns, seq)`` order internally.
        """
        frontier = self._frontier
        pheaps = self._pheaps
        while frontier:
            time_ns, seq, pid = heapq.heappop(frontier)
            heap = pheaps[pid]
            while heap and heap[0][2].cancelled:
                heapq.heappop(heap)
            if not heap:
                continue
            head = heap[0]
            if head[0] != time_ns or head[1] != seq:
                # Stale key (head popped/cancelled since published);
                # re-publish the partition's true head and retry.
                heapq.heappush(frontier, (head[0], head[1], pid))
                self.frontier_syncs += 1
                continue
            heapq.heappop(heap)
            event = head[2]
            if heap:
                nxt = heap[0]
                heapq.heappush(frontier, (nxt[0], nxt[1], pid))
                self.frontier_syncs += 1
            self._last_partition = pid
            if event.time_ns > self.now_ns:
                self.now_ns = event.time_ns
            self.popped += 1
            self._account_window(event.time_ns)
            if self.keep_trace:
                self.trace.append(event.trace_entry())
            return event
        return None

    def _account_window(self, time_ns: int) -> None:
        """Fold one pop into the safe-window statistics."""
        if time_ns > self._window_end_ns:
            # LBTS advanced past the bound: close the window, open a new
            # one at the new floor.
            if self.windows and self._window_events > self.max_window_events:
                self.max_window_events = self._window_events
            self.windows += 1
            self._window_events = 0
            self._window_end_ns = time_ns + self.lookahead_ns
            bound = self._window_end_ns
            skew_floor = time_ns
            max_head = skew_floor
            idle = 0
            for heap in self._pheaps:
                if heap:
                    head_ns = heap[0][0]
                    if head_ns > max_head:
                        max_head = head_ns
                    if head_ns > bound:
                        idle += 1
                else:
                    idle += 1
            self.null_window_slots += idle
            skew = max_head - skew_floor
            if skew > self.max_skew_ns:
                self.max_skew_ns = skew
        self._window_events += 1

    def drain(self, sanitizer=None) -> int:
        """Pop every event in global order and execute callbacks through
        the worker pool; returns the number of events processed.  The
        interpreter's run loop delegates here when this kernel is
        attached, so execution is attributable per partition."""
        pool = self.pool
        n = 0
        while True:
            event = self.pop()
            if event is None:
                if self._window_events > self.max_window_events:
                    self.max_window_events = self._window_events
                return n
            if sanitizer is not None:
                sanitizer.on_event_pop(self.now_ns, event)
            callback = event.callback
            if callback is not None:
                self._origin_pid = self._last_partition
                try:
                    pool.run(self._last_partition, callback, event)
                finally:
                    self._origin_pid = None
            n += 1

    def stats(self) -> dict[str, int]:
        """Window/partition statistics snapshot (telemetry collector)."""
        return {
            "partitions": self.n_partitions,
            "lookahead_ns": self.lookahead_ns,
            "windows": self.windows,
            "max_window_events": max(self.max_window_events, self._window_events),
            "null_window_slots": self.null_window_slots,
            "cross_messages": self.cross_messages,
            "intra_messages": self.intra_messages,
            "lookahead_violations": self.lookahead_violations,
            "frontier_syncs": self.frontier_syncs,
            "max_skew_ns": self.max_skew_ns,
        }

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(
            1 for heap in self._pheaps for _, _, e in heap if not e.cancelled
        )

    def __bool__(self) -> bool:
        return any(
            not e.cancelled for heap in self._pheaps for _, _, e in heap
        )

    def peek_time_ns(self) -> int | None:
        """Time of the next live event, or None when idle."""
        best: int | None = None
        for heap in self._pheaps:
            while heap and heap[0][2].cancelled:
                heapq.heappop(heap)
            if heap and (best is None or heap[0][0] < best):
                best = heap[0][0]
        return best

    def pending(self):
        """Iterate live scheduled events (partition, then heap order)."""
        return (
            e for heap in self._pheaps for _, _, e in heap if not e.cancelled
        )
