"""Sanctioned worker harness for the partitioned event kernel.

The conservative-PDES kernel (:mod:`repro.sim.partition`) never executes
an event itself — it hands each dispatch to a *worker pool* through the
narrow contract below.  This module is the **only** place in the
simulator's partition-worker layer allowed to touch wall clocks or
OS-level process machinery (processes, signals, host threads); simlint
rule SIM010 enforces that boundary, so the kernel stays deterministic by
construction no matter which pool backs it.

Stage 1 (this module): :class:`InlineWorkerPool` executes events
synchronously in the exact global ``(time_ns, seq)`` order the kernel
pops them — byte-identical to the serial kernel — while accounting
per-partition execution so window skew is observable.

Stage 2 (the seam this contract reserves): a process-backed pool may run
one worker per partition and execute a safe window's per-partition
batches concurrently.  That is sound only once all shared protocol state
(the global notice log, home-version bumps, lock grants) is exchanged as
messages at window boundaries; until then any such pool must replay
results in submission order to preserve the determinism contract.  The
partitioned kernel already counts the events that would violate a true
distributed lookahead (zero-latency piggybacked cross-partition
deliveries) so the migration cost of stage 2 is measurable today.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.events import Event


class InlineWorkerPool:
    """Same-process pool: runs each event inline, in submission order.

    The pool's observable contract — and what any future backend must
    preserve — is that ``run`` completes the event's callback before
    returning, and that completion order equals submission order.
    """

    __slots__ = ("n_partitions", "executed_by_partition")

    def __init__(self, n_partitions: int) -> None:
        if n_partitions < 1:
            raise ValueError(f"need at least one partition, got {n_partitions}")
        self.n_partitions = n_partitions
        #: events executed per partition (window-skew accounting).
        self.executed_by_partition = [0] * n_partitions

    def run(self, partition: int, callback: Callable[[Event], None], event: Event) -> None:
        """Execute one event's callback on behalf of ``partition``."""
        self.executed_by_partition[partition] += 1
        callback(event)

    @property
    def executed_total(self) -> int:
        """Events executed across all partitions."""
        return sum(self.executed_by_partition)

    @property
    def max_partition_load(self) -> int:
        """Largest per-partition execution count (load imbalance probe)."""
        return max(self.executed_by_partition)
