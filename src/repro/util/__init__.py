"""Small utilities shared across the reproduction: prime search for
sampling gaps, deterministic RNG streams, and argument validation."""

from repro.util.primes import is_prime, nearest_prime, prime_gap_for_nominal
from repro.util.rng import seeded_rng, split_rng
from repro.util.validation import check_positive, check_non_negative, check_in_range

__all__ = [
    "is_prime",
    "nearest_prime",
    "prime_gap_for_nominal",
    "seeded_rng",
    "split_rng",
    "check_positive",
    "check_non_negative",
    "check_in_range",
]
