"""Prime selection for sampling gaps.

The paper (Section II.B.1) chooses the prime nearest to a nominal
power-of-two sampling gap (e.g. 31 for 32, 67 for 64, 127 for 128) so
that cyclic allocation patterns cannot systematically dodge the sampled
sequence numbers.  A composite gap ``g`` interacts badly with an
allocation cycle of length ``c`` when ``gcd(g, c) > 1``: whole residue
classes of objects are then never sampled.  A prime gap only degenerates
when the cycle is an exact multiple of the gap itself, which is far
rarer in practice.
"""

from __future__ import annotations

from functools import lru_cache


def is_prime(n: int) -> bool:
    """Deterministic primality test for the small gaps used in sampling.

    Uses trial division; sampling gaps are bounded by the page size
    (4096) so this is never hot.
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


@lru_cache(maxsize=None)
def nearest_prime(n: int) -> int:
    """Return the prime nearest to ``n`` (ties broken towards the
    smaller prime, so nominal gap 4 maps to 3 rather than 5 and the
    effective sampling rate never silently drops below the request).

    ``n <= 2`` maps to 2, the smallest prime.
    """
    if n <= 2:
        return 2
    if is_prime(n):
        return n
    lo, hi = n - 1, n + 1
    while True:
        if is_prime(lo):
            # ``lo`` is at least as close as any prime above ``n`` found
            # later, because we move both cursors in lockstep.
            return lo
        if is_prime(hi):
            return hi
        lo -= 1
        hi += 1


def prime_gap_for_nominal(nominal: int) -> int:
    """Map a nominal (usually power-of-two) sampling gap to the real,
    prime sampling gap used by the profiler.

    A nominal gap of 1 means full sampling and is preserved exactly —
    every object must be sampled, so primality is irrelevant.

    >>> prime_gap_for_nominal(32)
    31
    >>> prime_gap_for_nominal(64)
    67
    >>> prime_gap_for_nominal(128)
    127
    """
    if nominal < 1:
        raise ValueError(f"sampling gap must be >= 1, got {nominal}")
    if nominal == 1:
        return 1
    # The paper quotes 67 for nominal 64 even though 61 is equidistant;
    # it rounds away from 64's neighbouring powers. We reproduce the
    # published choices by preferring the *upper* prime on exact ties.
    if is_prime(nominal):
        return nominal
    lo, hi = nominal - 1, nominal + 1
    while True:
        lo_p, hi_p = is_prime(lo), is_prime(hi)
        if lo_p and hi_p:
            return hi
        if hi_p:
            return hi
        if lo_p:
            return lo
        lo -= 1
        hi += 1
