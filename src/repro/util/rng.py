"""Deterministic random-number streams.

Every stochastic component of the simulator (workload generation, galaxy
placement, molecule velocities, ...) draws from a named, seeded stream so
that runs are exactly reproducible and independent components do not
perturb each other's sequences when one of them changes how many numbers
it consumes.
"""

from __future__ import annotations

import hashlib

import numpy as np


def seeded_rng(seed: int | None, *names: str) -> np.random.Generator:
    """Return a ``numpy`` Generator derived from ``seed`` and a label path.

    The label path (e.g. ``seeded_rng(7, "barnes_hut", "positions")``)
    is hashed into the seed so distinct components get decorrelated
    streams from one user-facing seed.
    """
    if seed is None:
        seed = 0
    h = hashlib.sha256()
    h.update(str(int(seed)).encode())
    for name in names:
        h.update(b"/")
        h.update(name.encode())
    derived = int.from_bytes(h.digest()[:8], "little")
    return np.random.default_rng(derived)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split an existing generator into ``n`` independent child streams."""
    if n < 0:
        raise ValueError(f"cannot split into {n} streams")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
