"""Argument validation helpers.

The simulator's public entry points validate eagerly so configuration
mistakes fail at construction time with a clear message instead of
surfacing as nonsense statistics after a long run.
"""

from __future__ import annotations


def check_positive(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(value: float, name: str) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(value: float, lo: float, hi: float, name: str) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
