"""Benchmark workloads, ported (as access-faithful simulations) from the
paper's SPLASH-2-derived Java programs:

* :class:`~repro.workloads.sor.SORWorkload` — red-black successive
  over-relaxation; coarse granularity (multi-KB row arrays),
  near-neighbour sharing.
* :class:`~repro.workloads.barnes_hut.BarnesHutWorkload` — hierarchical
  N-body with a real octree over two galaxies; fine granularity
  (sub-100-byte bodies), irregular sharing with intra-galaxy locality.
* :class:`~repro.workloads.water_spatial.WaterSpatialWorkload` —
  molecular dynamics over a 3D cell decomposition; medium granularity,
  near-neighbour 3D-box sharing with evolving load.
* :mod:`~repro.workloads.synthetic` — configurable sharing patterns with
  known ground truth, used by tests.
"""

from repro.workloads.base import Workload, WorkloadSpec
from repro.workloads.sor import SORWorkload
from repro.workloads.barnes_hut import BarnesHutWorkload
from repro.workloads.water_spatial import WaterSpatialWorkload
from repro.workloads.fft import FFTWorkload
from repro.workloads.synthetic import (
    GroupSharingWorkload,
    RacyCounterWorkload,
    UniformSharingWorkload,
)

__all__ = [
    "Workload",
    "WorkloadSpec",
    "SORWorkload",
    "BarnesHutWorkload",
    "WaterSpatialWorkload",
    "FFTWorkload",
    "GroupSharingWorkload",
    "RacyCounterWorkload",
    "UniformSharingWorkload",
]
