"""Barnes-Hut hierarchical N-body (paper benchmark 2).

The paper's configuration: 4K bodies forming **two galaxies** separated
by ``distance`` (7.0) galaxy radii; each thread simulates a contiguous
chunk of bodies, so threads of the same galaxy share heavily (bodies and
their galaxy's octree cells) while cross-galaxy threads share only the
top of the tree — the block-structured inherent correlation map of
Fig. 1(a) that page-grain tracking destroys.

The simulation is real: Plummer-like galaxies are generated, a bounding
octree is rebuilt every round, per-body force traversals use the
standard opening criterion ``cell_size / dist < theta``, and positions
integrate forward between rounds.  What reaches the DJVM is the object
access stream of those traversals, aggregated per (thread, phase,
object) with repeat counts so op streams stay tractable at paper scale.

Object model (the classes of the paper's Table IV):

* ``Body`` (96 B) — one particle; refs its three ``Vect3`` vectors.
* ``Vect3`` (40 B) — position / velocity / acceleration vector.
* ``Cell`` (144 B) — internal octree node; refs its children.
* ``Leaf`` (56 B) — terminal node; refs a ``Body[]`` with its bodies.
* ``Body[]`` — reference arrays (the global body list and leaf lists).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.util.rng import seeded_rng
from repro.workloads.base import Workload, WorkloadSpec

#: simulated cost of one body-body or body-cell interaction (force terms
#: plus traversal bookkeeping on a P4-era JVM), ns.  Calibrated against
#: the paper's Table II/V single-thread baselines (53-94 s for 4K x 5).
INTERACTION_NS = 3_000
#: temp-frame churn: a fresh walk frame every this many emitted reads.
FRAME_CHURN_READS = 64


@dataclass
class _TreeNode:
    """One node of the build-side octree (pre-allocation)."""

    center: np.ndarray
    half: float
    bodies: list[int] = field(default_factory=list)
    children: list["_TreeNode"] = field(default_factory=list)
    is_leaf: bool = True
    #: filled at allocation: heap object ids.
    obj_id: int = -1
    arr_id: int = -1  # leaf body-array object
    #: aggregate mass position (approximated by centroid for traversal);
    #: kept as a plain tuple so the traversal hot loop avoids numpy calls.
    centroid: tuple[float, float, float] = (0.0, 0.0, 0.0)
    count: int = 0


class BarnesHutWorkload(Workload):
    """Two-galaxy Barnes-Hut N-body simulation."""

    def __init__(
        self,
        n_bodies: int = 4096,
        rounds: int = 5,
        n_threads: int = 16,
        *,
        theta: float = 0.7,
        leaf_capacity: int = 8,
        galaxy_distance: float = 7.0,
        dt: float = 0.025,
        seed: int = 0,
    ) -> None:
        super().__init__(n_threads=n_threads, seed=seed)
        if n_bodies < n_threads:
            raise ValueError(f"{n_bodies} bodies cannot feed {n_threads} threads")
        if not 0 < theta < 2:
            raise ValueError(f"theta must be in (0, 2), got {theta}")
        if leaf_capacity < 1:
            raise ValueError(f"leaf capacity must be >= 1, got {leaf_capacity}")
        self.n_bodies = n_bodies
        self.rounds = rounds
        self.theta = theta
        self.leaf_capacity = leaf_capacity
        self.galaxy_distance = galaxy_distance
        self.dt = dt
        # Filled by build():
        self.body_ids: list[int] = []
        self.vect_ids: list[tuple[int, int, int]] = []  # (pos, vel, acc) per body
        self.bodies_arr_id: int = -1
        self.galaxy_of: np.ndarray | None = None
        #: per-round: (root_obj_id, per-thread read Counters, tree node count)
        self._round_plans: list[tuple[int, list[Counter], int]] = []

    def spec(self) -> WorkloadSpec:
        """Descriptive characteristics (Table I row)."""
        return WorkloadSpec(
            name="Barnes-Hut",
            data_set=f"{self.n_bodies} bodies",
            rounds=self.rounds,
            granularity="Fine",
            object_size="each body less than 100 bytes",
        )

    # ------------------------------------------------------------------
    # galaxy generation & body ordering
    # ------------------------------------------------------------------

    def _generate_galaxies(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Positions, velocities and galaxy labels for all bodies.

        Two Plummer-like clusters of equal population, centres separated
        by ``galaxy_distance`` cluster radii along x; each cluster gets a
        bulk drift plus internal rotation so the tree changes per round.
        """
        rng = seeded_rng(self.seed, "barnes_hut", "galaxies")
        n = self.n_bodies
        n0 = n // 2
        labels = np.zeros(n, dtype=np.int64)
        labels[n0:] = 1
        pos = np.empty((n, 3))
        vel = np.empty((n, 3))
        radius = 1.0
        centers = np.array(
            [[0.0, 0.0, 0.0], [self.galaxy_distance * radius, 0.0, 0.0]]
        )
        drift = np.array([[0.05, 0.02, 0.0], [-0.05, -0.02, 0.0]])
        for g, (lo, hi) in enumerate(((0, n0), (n0, n))):
            m = hi - lo
            r = radius * rng.standard_normal((m, 3)) * 0.35
            pos[lo:hi] = centers[g] + r
            # Solid-body-ish rotation about z plus bulk drift.
            omega = 0.6 if g == 0 else -0.6
            vel[lo:hi, 0] = -omega * r[:, 1] + drift[g, 0]
            vel[lo:hi, 1] = omega * r[:, 0] + drift[g, 1]
            vel[lo:hi, 2] = drift[g, 2] + 0.01 * rng.standard_normal(m)
        return pos, vel, labels

    @staticmethod
    def _morton_order(pos: np.ndarray) -> np.ndarray:
        """Spatial (Morton/Z-curve) ordering of points, the costzone-like
        ordering that makes contiguous chunks spatially compact."""
        mins = pos.min(axis=0)
        span = np.maximum(pos.max(axis=0) - mins, 1e-9)
        q = ((pos - mins) / span * 1023).astype(np.int64)  # 10 bits/axis

        def spread(v: np.ndarray) -> np.ndarray:
            v = v & 0x3FF
            v = (v | (v << 16)) & 0x030000FF
            v = (v | (v << 8)) & 0x0300F00F
            v = (v | (v << 4)) & 0x030C30C3
            v = (v | (v << 2)) & 0x09249249
            return v

        code = spread(q[:, 0]) | (spread(q[:, 1]) << 1) | (spread(q[:, 2]) << 2)
        return np.argsort(code, kind="stable")

    # ------------------------------------------------------------------
    # octree
    # ------------------------------------------------------------------

    def _build_tree(self, pos: np.ndarray) -> _TreeNode:
        center = (pos.min(axis=0) + pos.max(axis=0)) / 2
        half = float(np.max(pos.max(axis=0) - pos.min(axis=0)) / 2) + 1e-9
        root = _TreeNode(center=center, half=half, bodies=list(range(len(pos))))
        stack = [root]
        while stack:
            node = stack.pop()
            if len(node.bodies) <= self.leaf_capacity:
                node.is_leaf = True
                node.count = len(node.bodies)
                c = pos[node.bodies].mean(axis=0) if node.bodies else node.center
                node.centroid = (float(c[0]), float(c[1]), float(c[2]))
                continue
            node.is_leaf = False
            node.count = len(node.bodies)
            c = pos[node.bodies].mean(axis=0)
            node.centroid = (float(c[0]), float(c[1]), float(c[2]))
            buckets: dict[int, list[int]] = {}
            for b in node.bodies:
                octant = (
                    (pos[b, 0] > node.center[0])
                    | ((pos[b, 1] > node.center[1]) << 1)
                    | ((pos[b, 2] > node.center[2]) << 2)
                )
                buckets.setdefault(int(octant), []).append(b)
            node.bodies = []
            h = node.half / 2
            for octant, members in sorted(buckets.items()):
                offset = np.array(
                    [
                        h if octant & 1 else -h,
                        h if octant & 2 else -h,
                        h if octant & 4 else -h,
                    ]
                )
                child = _TreeNode(center=node.center + offset, half=h, bodies=members)
                node.children.append(child)
                stack.append(child)
        return root

    def _traverse(self, root: _TreeNode, pos: np.ndarray, b: int) -> tuple[list[_TreeNode], list[int]]:
        """Force traversal for body ``b``: returns (visited nodes,
        interacting body indices)."""
        visited: list[_TreeNode] = []
        partners: list[int] = []
        px, py, pz = float(pos[b, 0]), float(pos[b, 1]), float(pos[b, 2])
        theta = self.theta
        stack = [root]
        while stack:
            node = stack.pop()
            visited.append(node)
            if node.is_leaf:
                partners.extend(i for i in node.bodies if i != b)
                continue
            cx, cy, cz = node.centroid
            d = math.sqrt((cx - px) ** 2 + (cy - py) ** 2 + (cz - pz) ** 2) + 1e-12
            if (2 * node.half) / d < theta:
                continue  # far enough: the cell's aggregate suffices
            stack.extend(node.children)
        return visited, partners

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self, djvm: DJVM, *, placement: str = "block") -> None:
        """Define classes, allocate the object graph, spawn threads."""
        self._spawn(djvm, placement)
        reg = djvm.registry
        body_cls = reg.define("Body", 96)
        vect_cls = reg.define("Vect3", 40)
        cell_cls = reg.define("Cell", 144)
        leaf_cls = reg.define("Leaf", 56)
        arr_cls = reg.define("Body[]", is_array=True, element_size=4)

        pos, vel, labels = self._generate_galaxies()
        # Costzone-like assignment: bodies ordered by (galaxy, Morton) so
        # each thread's contiguous chunk is one spatially compact region
        # of one galaxy (threads split per galaxy when counts allow).
        order = np.lexsort((self._morton_order(pos).argsort(), labels))
        pos, vel, labels = pos[order], vel[order], labels[order]
        self.galaxy_of = labels

        self._owner = np.zeros(self.n_bodies, dtype=np.int64)
        for t in range(self.n_threads):
            self._owner[self.block_range(self.n_bodies, t, self.n_threads)] = t

        # Allocate bodies in index order (vectors interleaved with the
        # body, as a Java constructor would), homed at the owner's node.
        # Real BH code also allocates short-lived Vect3 temporaries in its
        # vector math; a jittered count per body reproduces that, which
        # keeps the Vect3 sequence-number stream from being an exact
        # 3-cycle (an exact cycle would defeat even a prime sampling gap
        # of 3: every sampled vector would be a position vector).
        alloc_rng = seeded_rng(self.seed, "barnes_hut", "transient_allocs")
        for i in range(self.n_bodies):
            node = self.node_of(int(self._owner[i]))
            pv = djvm.allocate(vect_cls, node, site="bh.vect").obj_id
            vv = djvm.allocate(vect_cls, node, site="bh.vect").obj_id
            av = djvm.allocate(vect_cls, node, site="bh.vect").obj_id
            body = djvm.allocate(body_cls, node, refs=[pv, vv, av], site="bh.body")
            self.body_ids.append(body.obj_id)
            self.vect_ids.append((pv, vv, av))
            for _ in range(int(alloc_rng.integers(0, 3))):
                djvm.allocate(vect_cls, node, site="bh.transient")  # transient, never accessed
        bodies_arr = djvm.allocate(
            arr_cls, self.node_of(0), length=self.n_bodies, refs=self.body_ids,
            site="bh.bodies",
        )
        self.bodies_arr_id = bodies_arr.obj_id

        # Precompute every round: integrate, rebuild the tree, allocate
        # its nodes, and aggregate each thread's traversal accesses.
        self._round_plans = []
        for _round in range(self.rounds):
            root = self._build_tree(pos)
            root_id, n_nodes = self._allocate_tree(djvm, root, cell_cls, leaf_cls, arr_cls)
            per_thread = self._plan_round(root, pos)
            self._round_plans.append((root_id, per_thread, n_nodes))
            pos = pos + vel * self.dt

    # ------------------------------------------------------------------
    # round planning (traversal aggregation)
    # ------------------------------------------------------------------

    def _plan_round_reference(self, root: _TreeNode, pos: np.ndarray) -> list[Counter]:
        """Reference planner: one :meth:`_traverse` per body, accumulated
        into per-thread access Counters.  Kept as the specification that
        the vectorized :meth:`_plan_round` must reproduce exactly
        (including Counter insertion order, which fixes the op-stream
        order :meth:`_generate` emits)."""
        per_thread = [Counter() for _ in range(self.n_threads)]
        for b in range(self.n_bodies):
            t = int(self._owner[b])
            visited, partners = self._traverse(root, pos, b)
            counter = per_thread[t]
            for node in visited:
                counter[node.obj_id] += 1
                if node.is_leaf and node.arr_id >= 0:
                    counter[node.arr_id] += 1
            for i in partners:
                counter[self.body_ids[i]] += 1
                # The interaction reads the partner's position vector.
                counter[self.vect_ids[i][0]] += 1
        return per_thread

    def _plan_round(self, root: _TreeNode, pos: np.ndarray) -> list[Counter]:
        """Vectorized planner: one tree walk for *all* bodies at once.

        Instead of one pruned traversal per body, each node carries the
        sorted array of bodies whose traversals visit it; a child
        inherits the parent's visitors that pass the opening criterion.
        Because pruning only removes whole subtrees, every body's visit
        sequence is the global stack-DFS order filtered to the nodes it
        visits — so sorting each thread's (first visiting body, emission
        position) pairs reconstructs the reference planner's Counter
        insertion order exactly, and the per-key counts are the visitor
        multiplicities.  The opening criterion is evaluated with the
        same IEEE double operations as :meth:`_traverse`, so the visit
        sets are bit-identical.
        """
        n = self.n_bodies
        n_threads = self.n_threads
        theta = self.theta
        owner = self._owner
        body_ids = self.body_ids
        vect_ids = self.vect_ids
        px, py, pz = pos[:, 0], pos[:, 1], pos[:, 2]
        # Thread block boundaries over body indices (owner is block-wise
        # non-decreasing, so visitor arrays split by searchsorted).
        bounds = np.empty(n_threads + 1, dtype=np.int64)
        for t in range(n_threads):
            bounds[t] = self.block_range(n, t, n_threads).start
        bounds[n_threads] = n

        #: per-thread (first_body, phase, position, key, count) tuples.
        entries_of: list[list[tuple[int, int, int, int, int]]] = [
            [] for _ in range(n_threads)
        ]
        dfs_idx = 0
        member_offset = 0
        stack: list[tuple[_TreeNode, np.ndarray]] = [
            (root, np.arange(n, dtype=np.int64))
        ]
        while stack:
            node, v = stack.pop()
            j = dfs_idx
            dfs_idx += 1
            seg = np.searchsorted(v, bounds)
            is_leaf = node.is_leaf
            arr_key = node.arr_id if is_leaf else -1
            obj_key = node.obj_id
            for t in range(n_threads):
                s, e = int(seg[t]), int(seg[t + 1])
                if s == e:
                    continue
                first = int(v[s])
                cnt = e - s
                entries = entries_of[t]
                entries.append((first, 0, 2 * j, obj_key, cnt))
                if arr_key >= 0:
                    entries.append((first, 0, 2 * j + 1, arr_key, cnt))
            if is_leaf:
                for mi, m in enumerate(node.bodies):
                    mpos = 2 * (member_offset + mi)
                    mt = int(owner[m])
                    k = int(np.searchsorted(v, m))
                    m_visits = k < v.size and int(v[k]) == m
                    for t in range(n_threads):
                        s, e = int(seg[t]), int(seg[t + 1])
                        cnt = e - s
                        if cnt == 0:
                            continue
                        first = int(v[s])
                        if t == mt and m_visits:
                            # The member's own traversal skips itself.
                            cnt -= 1
                            if cnt == 0:
                                continue
                            if first == m:
                                first = int(v[s + 1])
                        entries = entries_of[t]
                        entries.append((first, 1, mpos, body_ids[m], cnt))
                        entries.append((first, 1, mpos + 1, vect_ids[m][0], cnt))
                member_offset += len(node.bodies)
                continue
            cx, cy, cz = node.centroid
            dx = px[v] - cx
            dy = py[v] - cy
            dz = pz[v] - cz
            d = np.sqrt(dx * dx + dy * dy + dz * dz) + 1e-12
            kept = v[(2 * node.half) / d >= theta]
            if kept.size:
                for child in node.children:
                    stack.append((child, kept))

        per_thread = []
        for entries in entries_of:
            entries.sort()
            counter: Counter = Counter()
            for _first, _phase, _pos, key, cnt in entries:
                # Keys are unique across entry slots (each object has one
                # emission position), so assignment equals accumulation.
                counter[key] = cnt
            per_thread.append(counter)
        return per_thread

    def _allocate_tree(self, djvm: DJVM, root: _TreeNode, cell_cls, leaf_cls, arr_cls) -> tuple[int, int]:
        """Allocate heap objects for one round's tree.  Each node is homed
        at the node of the thread owning the majority of bodies beneath it
        (the steady state home migration converges to); allocation happens
        in depth-first build order so the page map interleaves subtrees."""
        count = 0

        def dominant_thread(node: _TreeNode) -> int:
            if node.is_leaf:
                owners = [int(self._owner[b]) for b in node.bodies]
            else:
                owners = []
                stack = [node]
                while stack and len(owners) < 64:
                    cur = stack.pop()
                    if cur.is_leaf:
                        owners.extend(int(self._owner[b]) for b in cur.bodies)
                    else:
                        stack.extend(cur.children)
            if not owners:
                return 0
            return Counter(owners).most_common(1)[0][0]

        def alloc(node: _TreeNode) -> int:
            nonlocal count
            count += 1
            home = self.node_of(dominant_thread(node))
            if node.is_leaf:
                refs = [self.body_ids[b] for b in node.bodies]
                if refs:
                    arr = djvm.allocate(arr_cls, home, length=max(len(refs), 1), refs=refs, site="bh.tree")
                    node.arr_id = arr.obj_id
                    leaf = djvm.allocate(leaf_cls, home, refs=[arr.obj_id], site="bh.tree")
                else:
                    leaf = djvm.allocate(leaf_cls, home, site="bh.tree")
                node.obj_id = leaf.obj_id
                return leaf.obj_id
            child_ids = [alloc(c) for c in node.children]
            cell = djvm.allocate(cell_cls, home, refs=child_ids, site="bh.tree")
            node.obj_id = cell.obj_id
            return cell.obj_id

        root_id = alloc(root)
        return root_id, count

    # ------------------------------------------------------------------
    # programs
    # ------------------------------------------------------------------

    def bodies_of(self, thread_id: int) -> range:
        """Body indices owned by one thread."""
        return self.block_range(self.n_bodies, thread_id, self.n_threads)

    def program(self, thread_id: int):
        """The thread's op list (pre-built; op tuples are emitted inline
        so repeated builds avoid per-op constructor calls)."""
        return self._generate(thread_id)

    def _generate(self, thread_id: int):
        own = list(self.bodies_of(thread_id))
        n_own = len(own)
        body_ids = self.body_ids
        vect_ids = self.vect_ids
        barrier_seq = 0
        tree_lock = 0
        ops: list[tuple] = []
        add = ops.append
        add((P.OP_CALL, "BarnesHut.run", 6, ((0, self.bodies_arr_id),)))
        add((P.OP_READ, self.bodies_arr_id, n_own, 1, own[0]))
        for rnd in range(self.rounds):
            root_id, per_thread, _n_nodes = self._round_plans[rnd]
            # --- phase A: tree build (lock-serialized insertions) --------
            add((P.OP_CALL, "BarnesHut.maketree", 4, ((0, root_id),)))
            for b in own:
                add((P.OP_READ, body_ids[b], 1, 1, 0))
            add((P.OP_ACQUIRE, tree_lock))
            # Insertion path writes: the cells along each own body's path;
            # approximated by the nodes this thread's traversals meet
            # (paths share the tree's upper levels).
            add((P.OP_WRITE, root_id, 1, n_own, 0))
            add((P.OP_COMPUTE, n_own * INTERACTION_NS))
            add((P.OP_RELEASE, tree_lock))
            add((P.OP_RET,))
            add((P.OP_BARRIER, barrier_seq))
            barrier_seq += 1

            # --- phase B: force computation ------------------------------
            add((
                P.OP_CALL,
                "BarnesHut.computeForces",
                6,
                ((0, root_id), (1, self.bodies_arr_id)),
            ))
            # Emit each object's accesses in two interleaved passes so an
            # object visited by many traversals is seen both early and
            # late in the interval — the temporal spread real traversals
            # have, which sticky-set footprinting depends on.  Objects
            # visited once appear in the first pass only.
            reads = per_thread[thread_id]
            emitted = 0
            frame_open = False
            pending_compute = 0
            for pass_no in (0, 1):
                for obj_id, cnt in reads.items():
                    if pass_no == 0:
                        rep = (cnt + 1) // 2
                    else:
                        rep = cnt // 2
                        if rep == 0:
                            continue
                    if emitted % FRAME_CHURN_READS == 0:
                        if frame_open:
                            add((P.OP_RET,))
                        add((P.OP_CALL, "BarnesHut.walkSub", 3, ((0, obj_id),)))
                        frame_open = True
                    add((P.OP_READ, obj_id, 1, rep, 0))
                    # Interleave the force arithmetic with the accesses, as
                    # the real traversal does (chunked to bound op count).
                    pending_compute += rep * INTERACTION_NS
                    emitted += 1
                    if emitted % 16 == 0:
                        add((P.OP_COMPUTE, pending_compute))
                        pending_compute = 0
            if pending_compute:
                add((P.OP_COMPUTE, pending_compute))
            if frame_open:
                add((P.OP_RET,))
            # Acceleration writes to own bodies' acc vectors.
            for b in own:
                add((P.OP_WRITE, vect_ids[b][2], 1, 1, 0))
            add((P.OP_RET,))
            add((P.OP_BARRIER, barrier_seq))
            barrier_seq += 1

            # --- phase C: position integration ---------------------------
            add((P.OP_CALL, "BarnesHut.advance", 4, ((0, self.bodies_arr_id),)))
            for b in own:
                pv, vv, av = vect_ids[b]
                add((P.OP_READ, body_ids[b], 1, 1, 0))
                add((P.OP_READ, av, 1, 1, 0))
                add((P.OP_WRITE, vv, 1, 1, 0))
                add((P.OP_WRITE, pv, 1, 1, 0))
            add((P.OP_COMPUTE, n_own * INTERACTION_NS))
            add((P.OP_RET,))
            add((P.OP_BARRIER, barrier_seq))
            barrier_seq += 1
        add((P.OP_RET,))
        return ops
