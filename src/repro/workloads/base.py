"""Workload interface.

A workload owns three responsibilities:

1. :meth:`Workload.build` — define classes and allocate the shared
   object graph on a DJVM (homes reflect the steady state after
   JESSICA2's home-migration optimization: data lives with its dominant
   writer, matching the paper's experimental configuration where home
   migration is enabled), and spawn the threads.
2. :meth:`Workload.program` — produce each thread's op stream.
3. Describe itself (:class:`WorkloadSpec`) for Table I-style reporting.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.runtime.djvm import DJVM


@dataclass(frozen=True)
class WorkloadSpec:
    """Table I-style characterization of a workload."""

    name: str
    data_set: str
    rounds: int
    granularity: str
    object_size: str


class Workload(abc.ABC):
    """Base class for benchmark workloads."""

    def __init__(self, n_threads: int, seed: int = 0) -> None:
        if n_threads < 1:
            raise ValueError(f"need >= 1 thread, got {n_threads}")
        self.n_threads = n_threads
        self.seed = seed
        self._djvm: DJVM | None = None

    @property
    def djvm(self) -> DJVM:
        """The DJVM this workload was built on (after build())."""
        if self._djvm is None:
            raise RuntimeError("call build() before using the workload")
        return self._djvm

    @abc.abstractmethod
    def spec(self) -> WorkloadSpec:
        """Descriptive characteristics (Table I row)."""

    @abc.abstractmethod
    def build(self, djvm: DJVM, *, placement: str | list[int] = "block") -> None:
        """Define classes, allocate the object graph, spawn threads.

        ``placement`` is "block", "round_robin", or an explicit
        thread->node list (e.g. from the TCM partitioner)."""

    @abc.abstractmethod
    def program(self, thread_id: int):
        """The op stream for one thread (an iterable of ops)."""

    def programs(self) -> dict[int, object]:
        """Op streams for every thread."""
        return {t: self.program(t) for t in range(self.n_threads)}

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------

    def _spawn(self, djvm: DJVM, placement: str | list[int]) -> None:
        self._djvm = djvm
        djvm.spawn_threads(self.n_threads, placement=placement)

    def node_of(self, thread_id: int) -> int:
        """Node hosting a thread at build time (homes follow owners)."""
        return self.djvm.threads[thread_id].node_id

    @staticmethod
    def block_range(total: int, part: int, n_parts: int) -> range:
        """The ``part``-th of ``n_parts`` contiguous blocks of ``total``
        items (SPLASH-2's standard block decomposition)."""
        if not 0 <= part < n_parts:
            raise ValueError(f"part {part} out of range 0..{n_parts - 1}")
        lo = part * total // n_parts
        hi = (part + 1) * total // n_parts
        return range(lo, hi)
