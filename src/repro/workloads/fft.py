"""FFT: the SPLASH-2 six-step FFT's sharing skeleton (extension workload).

Not in the paper's evaluation, but the classic *all-to-all* counterpoint
to its three benchmarks: ``n`` complex points held as a ``sqrt(n) x
sqrt(n)`` matrix of row arrays, threads owning contiguous row blocks.
Each iteration: (1) 1-D FFTs over own rows, (2) a global **transpose**
in which every thread reads a column slice of *every other thread's*
rows, (3) FFTs over own rows again — barriers between phases.

The transpose makes every thread pair exchange the same volume, so the
ground-truth TCM is *flat*: correlation-aware placement can gain nothing
(every partition is equally good), which makes FFT the negative control
for the placement pipeline — a correct balancer proposes no migrations.

Classes: ``complex[]`` row arrays (16 B elements) plus the row-pointer
spine, coarse-grained like SOR but with the opposite sharing topology.
"""

from __future__ import annotations

import math

import numpy as np

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.workloads.base import Workload, WorkloadSpec

#: simulated cost of one butterfly (complex multiply-add + twiddle), ns.
BUTTERFLY_NS = 160


class FFTWorkload(Workload):
    """Six-step FFT over ``n_points`` complex points."""

    def __init__(
        self,
        n_points: int = 65536,
        rounds: int = 4,
        n_threads: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(n_threads=n_threads, seed=seed)
        side = math.isqrt(n_points)
        if side * side != n_points:
            raise ValueError(f"n_points must be a perfect square, got {n_points}")
        if side < n_threads:
            raise ValueError(f"{side} rows cannot feed {n_threads} threads")
        self.n_points = n_points
        self.side = side
        self.rounds = rounds
        self.row_ids: list[int] = []
        self.trans_ids: list[int] = []
        self.matrix_id: int | None = None

    def spec(self) -> WorkloadSpec:
        """Descriptive characteristics (Table I-style row)."""
        return WorkloadSpec(
            name="FFT",
            data_set=f"{self.n_points} points ({self.side} x {self.side})",
            rounds=self.rounds,
            granularity="Coarse / all-to-all",
            object_size=f"each row {16 * self.side} bytes",
        )

    # ------------------------------------------------------------------

    def build(self, djvm: DJVM, *, placement: str | list[int] = "block") -> None:
        """Define classes, allocate both matrices, spawn threads."""
        self._spawn(djvm, placement)
        reg = djvm.registry
        row_cls = reg.define("complex[]", is_array=True, element_size=16)
        spine_cls = reg.define("complex[][]", is_array=True, element_size=4)

        owner_of_row = [0] * self.side
        for t in range(self.n_threads):
            for r in self.block_range(self.side, t, self.n_threads):
                owner_of_row[r] = self.node_of(t)
        # Source and transpose-destination matrices, rows homed with their
        # owning thread.
        self.row_ids = [
            djvm.allocate(row_cls, owner_of_row[r], length=self.side).obj_id
            for r in range(self.side)
        ]
        self.trans_ids = [
            djvm.allocate(row_cls, owner_of_row[r], length=self.side).obj_id
            for r in range(self.side)
        ]
        spine = djvm.allocate(
            spine_cls, self.node_of(0), length=self.side, refs=self.row_ids
        )
        self.matrix_id = spine.obj_id

    def rows_of(self, thread_id: int) -> range:
        """Row indices owned by one thread."""
        return self.block_range(self.side, thread_id, self.n_threads)

    def true_tcm(self) -> np.ndarray:
        """Ground truth: every pair exchanges the same transpose volume.

        During the transpose, thread ``i`` reads a ``rows_i x rows_j``
        sub-block of each thread ``j``'s rows — for the balanced block
        partition that is the same byte count for every ordered pair.
        """
        n = self.n_threads
        block = self.side // n
        shared = block * block * 16  # bytes of j's data read by i per row pair
        tcm = np.full((n, n), float(shared * n))  # per round; relative shape
        np.fill_diagonal(tcm, 0.0)
        return tcm

    # ------------------------------------------------------------------

    def program(self, thread_id: int):
        """The op stream for one thread."""
        return self._generate(thread_id)

    def _generate(self, thread_id: int):
        assert self.matrix_id is not None, "build() must run first"
        own = list(self.rows_of(thread_id))
        side = self.side
        log_side = max(1, side.bit_length() - 1)
        fft_cost = side * log_side * BUTTERFLY_NS  # one row's 1-D FFT
        block = len(own)
        barrier_seq = 0
        yield P.call("FFT.run", n_slots=6, refs=[(0, self.matrix_id)])
        yield P.read(self.matrix_id, n_elems=block)
        for _round in range(self.rounds):
            # --- step 1: 1-D FFTs over own rows -------------------------
            yield P.call("FFT.ffts", n_slots=4, refs=[(0, self.matrix_id)])
            for r in own:
                yield P.read(self.row_ids[r], n_elems=side)
                yield P.compute(fft_cost)
                yield P.write(self.row_ids[r], n_elems=side)
            yield P.ret()
            yield P.barrier(barrier_seq)
            barrier_seq += 1

            # --- step 2: global transpose (the all-to-all) ---------------
            yield P.call("FFT.transpose", n_slots=4, refs=[(0, self.matrix_id)])
            for src in range(side):
                # Each source row contributes a `block`-wide column slice
                # to this thread's destination rows.
                yield P.read(
                    self.row_ids[src], n_elems=block, elem_off=own[0]
                )
            for r in own:
                yield P.write(self.trans_ids[r], n_elems=side)
            yield P.compute(block * side * 40)  # scatter/gather copies
            yield P.ret()
            yield P.barrier(barrier_seq)
            barrier_seq += 1

            # --- step 3: FFTs over the transposed rows -------------------
            yield P.call("FFT.ffts2", n_slots=4, refs=[(0, self.matrix_id)])
            for r in own:
                yield P.read(self.trans_ids[r], n_elems=side)
                yield P.compute(fft_cost)
                yield P.write(self.trans_ids[r], n_elems=side)
            yield P.ret()
            yield P.barrier(barrier_seq)
            barrier_seq += 1
        yield P.ret()
