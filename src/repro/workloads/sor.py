"""SOR: red-black successive over-relaxation (paper benchmark 1).

An ``n x n`` double matrix stored as ``n`` row objects (``double[]`` of
length ``n``, i.e. ``8n`` bytes — "each row at least several KB" for the
paper's 2K columns).  Threads own contiguous row blocks; every round has
a red and a black phase, each phase sweeping the thread's rows reading
the rows above and below (the near-neighbour sharing pattern) and
writing its own, with a global barrier after each phase.

This is the *row-coloured* red-black variant: a phase updates alternate
whole rows (half the cells each) rather than a checkerboard within every
row.  At object (row) granularity the two variants generate identical
sharing — each updated row reads its two neighbours — which is the level
this reproduction observes.

Sharing profile ground truth: thread t shares exactly its block-boundary
rows with threads t-1 and t+1 — a tridiagonal TCM.
"""

from __future__ import annotations

from repro.runtime import program as P
from repro.runtime.djvm import DJVM
from repro.workloads.base import Workload, WorkloadSpec

#: simulated cost of relaxing one matrix cell (flops + loads + inlined
#: bounds/state checks on a JIT-compiled P4-era JVM), ns.  Calibrated so
#: a single-threaded 2K x 2K x 10-round run lands near the paper's
#: Table II baseline (~24 s).
CELL_COMPUTE_NS = 1150


class SORWorkload(Workload):
    """Red-black SOR over an ``n x n`` matrix of doubles."""

    def __init__(
        self,
        n: int = 2048,
        rounds: int = 10,
        n_threads: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(n_threads=n_threads, seed=seed)
        if n < n_threads:
            raise ValueError(f"matrix of {n} rows cannot feed {n_threads} threads")
        self.n = n
        self.rounds = rounds
        self.row_ids: list[int] = []
        self.matrix_id: int | None = None

    def spec(self) -> WorkloadSpec:
        """Descriptive characteristics (Table I row)."""
        return WorkloadSpec(
            name="SOR",
            data_set=f"{self.n} x {self.n}",
            rounds=self.rounds,
            granularity="Coarse",
            object_size=f"each row {8 * self.n} bytes",
        )

    # ------------------------------------------------------------------

    def build(self, djvm: DJVM, *, placement: str = "block") -> None:
        """Define classes, allocate the object graph, spawn threads."""
        self._spawn(djvm, placement)
        reg = djvm.registry
        row_cls = reg.define("double[]", is_array=True, element_size=8)
        matrix_cls = reg.define("double[][]", is_array=True, element_size=4)

        # Rows are homed with their owning thread's node (the steady state
        # home migration reaches: each row has one dominant writer).
        owner_of_row = [0] * self.n
        for t in range(self.n_threads):
            for r in self.block_range(self.n, t, self.n_threads):
                owner_of_row[r] = self.node_of(t)
        self.row_ids = [
            djvm.allocate(row_cls, owner_of_row[r], length=self.n, site="sor.rows").obj_id
            for r in range(self.n)
        ]
        matrix = djvm.allocate(
            matrix_cls, self.node_of(0), length=self.n, refs=self.row_ids, site="sor.matrix"
        )
        self.matrix_id = matrix.obj_id

    # ------------------------------------------------------------------

    def rows_of(self, thread_id: int) -> range:
        """Row indices owned by one thread."""
        return self.block_range(self.n, thread_id, self.n_threads)

    def program(self, thread_id: int):
        """The thread's op list (pre-built; op tuples are emitted inline
        so repeated builds avoid per-op constructor calls)."""
        return self._generate(thread_id)

    def _generate(self, thread_id: int):
        assert self.matrix_id is not None, "build() must run first"
        rows = self.rows_of(thread_id)
        n = self.n
        half = n // 2
        row_ids = self.row_ids
        compute_ns = half * CELL_COMPUTE_NS
        barrier_seq = 0
        ops: list[tuple] = []
        add = ops.append
        # run() frame: the matrix reference lives here for the whole run —
        # the canonical stack invariant.
        add((P.OP_CALL, "SOR.run", 6, ((0, self.matrix_id),)))
        add((P.OP_READ, self.matrix_id, len(rows), 1, 0))
        # Each round replays the same red/black sweep (op tuples are
        # immutable, so one prototype body per color is shared across
        # rounds); only the trailing barrier sequence number changes.
        bodies: list[list[tuple]] = []
        for color in (0, 1):  # red, black
            body: list[tuple] = [(P.OP_CALL, "SOR.phase", 4, ((0, self.matrix_id),))]
            badd = body.append
            for r in rows:
                if r % 2 != color:
                    continue
                # Near-neighbour stencil: rows r-1 and r+1 are read.
                if r > 0:
                    badd((P.OP_READ, row_ids[r - 1], half, 1, 0))
                badd((P.OP_READ, row_ids[r], half, 1, 0))
                if r < n - 1:
                    badd((P.OP_READ, row_ids[r + 1], half, 1, 0))
                badd((P.OP_COMPUTE, compute_ns))
                badd((P.OP_WRITE, row_ids[r], half, 1, 0))
            badd((P.OP_RET,))
            bodies.append(body)
        for _round in range(self.rounds):
            for body in bodies:
                ops += body
                add((P.OP_BARRIER, barrier_seq))
                barrier_seq += 1
        add((P.OP_RET,))
        return ops
